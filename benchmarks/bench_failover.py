"""Experiment E7 — §3/§4.3: failure detection and call redirection.

Workload: a client calls ``nav.compute`` at 10 Hz against two redundant
providers; the primary crashes hard (no BYE) mid-run. Swept over the
liveness timeout. Metrics: detection delay (crash → directory marks dead),
service gap (last answer before the crash → first answer from the backup),
and calls lost despite redirection.

Expected shape: both delays track the liveness timeout (plus one
housekeeping tick); a clean shutdown (BYE) is detected immediately.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import Service, SimRuntime
from repro.encoding.types import STRING
from repro.faults import FaultInjector

LIVENESS_TIMEOUTS = [0.5, 1.0, 2.0]
CALL_RATE_HZ = 10.0
CRASH_AT = 6.0


class Nav(Service):
    def __init__(self, name, tag):
        super().__init__(name)
        self.tag = tag

    def on_start(self):
        self.ctx.provide_function("nav.compute", lambda: self.tag, params=[], result=STRING)


class Caller(Service):
    def __init__(self):
        super().__init__("caller")
        self.answers = []  # (issued_t, completed_t, tag)
        self.failures = []  # (issued_t, error)

    def on_start(self):
        self.ctx.every(1.0 / CALL_RATE_HZ, self._tick)

    def _tick(self):
        t = self.ctx.now()
        self.ctx.call(
            "nav.compute",
            on_result=lambda tag: self.answers.append((t, self.ctx.now(), tag)),
            on_error=lambda exc: self.failures.append((t, exc)),
        )


def run_one(liveness: float, clean: bool = False, seed: int = 8):
    runtime = SimRuntime(seed=seed)
    kw = dict(liveness_timeout=liveness, heartbeat_interval=min(0.25, liveness / 3))
    primary = runtime.add_container("primary", **kw)
    backup = runtime.add_container("backup", **kw)
    client_node = runtime.add_container("client", **kw)
    primary.install_service(Nav("nav-a", "primary"))
    backup.install_service(Nav("nav-b", "backup"))
    caller = Caller()
    client_node.install_service(caller)

    detection = {}
    client_node.directory.on_container_down(
        lambda record: detection.setdefault(record.container, runtime.sim.now())
    )
    injector = FaultInjector(runtime)
    if clean:
        injector.stop_container(CRASH_AT, "primary")
    else:
        injector.crash_container(CRASH_AT, "primary")
    runtime.start()
    runtime.run_for(CRASH_AT + 10.0)

    crash_t = injector.log[0].time
    detect_delay = detection.get("primary", float("inf")) - crash_t
    # Service gap: the longest stretch without a completed call around the
    # failure — the window the mission flies blind.
    completions = sorted(done for _, done, _ in caller.answers)
    window = [t for t in completions if crash_t - 1.0 <= t <= crash_t + 8.0]
    gap = max(
        (b - a for a, b in zip(window, window[1:])), default=float("inf")
    )
    lost = [t for t, _ in caller.failures if t >= crash_t]
    return {
        "detect_delay": detect_delay,
        "gap": gap,
        "lost_calls": len(lost),
        "total_answers": len(caller.answers),
    }


def run_experiment():
    rows = []
    results = {}
    for liveness in LIVENESS_TIMEOUTS:
        crash = run_one(liveness, clean=False)
        results[liveness] = crash
        rows.append(
            [
                f"{liveness:.1f}",
                "hard crash",
                f"{crash['detect_delay']:.2f}",
                f"{crash['gap']:.2f}",
                crash["lost_calls"],
            ]
        )
    clean = run_one(1.0, clean=True)
    results["clean"] = clean
    rows.append(
        ["1.0", "clean (BYE)", f"{clean['detect_delay']:.2f}", f"{clean['gap']:.2f}",
         clean["lost_calls"]]
    )
    print_table(
        "E7: failover of nav.compute (10 Hz calls, crash at t=6 s)",
        ["liveness s", "failure", "detect s", "service gap s", "calls lost"],
        rows,
    )
    return results


def test_failover(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    for liveness in LIVENESS_TIMEOUTS:
        r = results[liveness]
        # Detection bounded by liveness timeout + housekeeping tick + slack.
        assert r["detect_delay"] <= liveness + 0.5 + 0.2
        # The mission continues: the backup answers shortly after detection.
        assert r["gap"] <= liveness + 1.0
        # Degraded mode, not collapse: only calls in the detection window die.
        assert r["lost_calls"] <= (liveness + 1.0) * CALL_RATE_HZ
    # Clean shutdown is detected (near-)immediately.
    assert results["clean"]["detect_delay"] < 0.1
    assert results["clean"]["lost_calls"] <= 1
    benchmark.extra_info["detect_delay_s"] = {
        str(k): v["detect_delay"] for k, v in results.items() if k != "clean"
    }


if __name__ == "__main__":
    run_experiment()
