"""Experiment E2 — §4.3: "events seem faster than their function equivalent".

Workload: a controller triggers an action on a remote node, either by
raising an event or by invoking the equivalent remote function, across
payload sizes. Metrics: latency from trigger to the remote handler running
(action latency), latency until the initiator may proceed (completion:
event = fire-and-forget, RPC = response received), and wire bytes per
operation.

Expected shape (the paper gives no numbers): events beat invocations on
both latencies and bytes — no response leg, no call bookkeeping, higher
scheduler priority.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import fmt_us, latencies_of, print_table, run_benchmark, summarize

from repro import Service, SimRuntime
from repro.encoding.types import BYTES, StructType
from repro.util.rng import SeededRng

PAYLOAD_SIZES = [16, 64, 256, 1024, 4096]
OPERATIONS = 200
SCHEMA = StructType("Blob", [("data", BYTES)])


class ActionServer(Service):
    """Remote side: handles both the event and the equivalent function."""

    def __init__(self):
        super().__init__("server")
        self.event_action_times = []
        self.rpc_action_times = []

    def on_start(self):
        self.ctx.subscribe_event(
            "act.event", lambda v, t: self.event_action_times.append((self.ctx.now(), t))
        )
        self.ctx.provide_function(
            "act.function", self._act, params=[SCHEMA], result=None
        )
        self._pending_rpc_sent = []

    def _act(self, blob):
        # The sender stamps the send time into the payload's first 8 bytes.
        import struct

        (sent,) = struct.unpack("<d", blob["data"][:8])
        self.rpc_action_times.append((self.ctx.now(), sent))


class Trigger(Service):
    def __init__(self):
        super().__init__("trigger")
        self.completions = []  # (now, sent) for RPC completions

    def on_start(self):
        self.event = self.ctx.provide_event("act.event", SCHEMA)

    def fire_event(self, payload: bytes):
        import struct

        self.event.raise_event({"data": struct.pack("<d", self.ctx.now()) + payload})

    def fire_rpc(self, payload: bytes):
        import struct

        sent = self.ctx.now()
        self.ctx.call(
            "act.function",
            ({"data": struct.pack("<d", sent) + payload},),
            on_result=lambda _:
                self.completions.append((self.ctx.now(), sent)),
        )


def run_one(mechanism: str, payload_size: int, seed: int = 17):
    runtime = SimRuntime(seed=seed)
    a = runtime.add_container("ctl")
    b = runtime.add_container("srv")
    trigger = Trigger()
    server = ActionServer()
    a.install_service(trigger)
    b.install_service(server)
    runtime.start()
    runtime.run_for(3.0)
    payload = SeededRng(seed).bytes(payload_size - 8)
    bytes_before = runtime.network.stats.emissions.bytes

    for _ in range(OPERATIONS):
        if mechanism == "event":
            trigger.fire_event(payload)
        else:
            trigger.fire_rpc(payload)
        runtime.run_for(0.01)
    runtime.run_for(2.0)

    wire_bytes = runtime.network.stats.emissions.bytes - bytes_before
    if mechanism == "event":
        action = latencies_of(server.event_action_times)
        completion = action  # fire-and-forget: sender proceeds immediately
    else:
        action = latencies_of(server.rpc_action_times)
        completion = latencies_of(trigger.completions)
    return {
        "action": summarize(action),
        "completion": summarize(completion),
        "bytes_per_op": wire_bytes / OPERATIONS,
        "delivered": len(action),
    }


def run_loaded(mechanism: str, seed: int = 19):
    """The same duel on a *loaded* server node: background invocations cost
    real CPU, so the scheduler's per-primitive priorities matter. Events
    (priority 1) overtake queued invocation work; the RPC action (priority
    3) waits behind it."""
    from repro.sched.model import CpuModel

    runtime = SimRuntime(seed=seed)
    a = runtime.add_container("ctl")
    b = runtime.add_container(
        "srv",
        cpu_model=CpuModel(costs={"invocation": 0.004, "event": 0.0002}),
    )
    trigger = Trigger()
    server = ActionServer()
    a.install_service(trigger)
    b.install_service(server)

    class Load(Service):
        """Hammers a background function on the server at 150 Hz."""

        def __init__(self):
            super().__init__("load")

        def on_start(self):
            self.ctx.provide_function("bg.spin", lambda: None)
            self.ctx.every(1.0 / 150.0, lambda: self.ctx.call("bg.spin"))

    b.install_service(Load())
    runtime.start()
    runtime.run_for(3.0)
    payload = SeededRng(seed).bytes(56)
    for _ in range(OPERATIONS):
        if mechanism == "event":
            trigger.fire_event(payload)
        else:
            trigger.fire_rpc(payload)
        runtime.run_for(0.02)
    runtime.run_for(3.0)
    if mechanism == "event":
        action = latencies_of(server.event_action_times)
    else:
        action = latencies_of(server.rpc_action_times)
    return {"action": summarize(action), "delivered": len(action)}


def run_experiment():
    rows = []
    results = {}
    for size in PAYLOAD_SIZES:
        event = run_one("event", size)
        rpc = run_one("rpc", size)
        results[size] = (event, rpc)
        rows.append(
            [
                size,
                fmt_us(event["action"]["mean"]),
                fmt_us(rpc["action"]["mean"]),
                f"{rpc['action']['mean'] / max(event['action']['mean'], 1e-12):.2f}x",
                fmt_us(rpc["completion"]["mean"]),
                f"{event['bytes_per_op']:.0f}",
                f"{rpc['bytes_per_op']:.0f}",
            ]
        )
    print_table(
        "E2: event vs remote invocation (means over 200 ops)",
        [
            "payload B",
            "event act us",
            "rpc act us",
            "rpc/event",
            "rpc complete us",
            "event B/op",
            "rpc B/op",
        ],
        rows,
    )
    loaded_event = run_loaded("event")
    loaded_rpc = run_loaded("rpc")
    print_table(
        "E2b: the same action on a CPU-loaded server (scheduler priorities)",
        ["mechanism", "action p50 us", "action p99 us"],
        [
            ["event", fmt_us(loaded_event["action"]["p50"]),
             fmt_us(loaded_event["action"]["p99"])],
            ["rpc", fmt_us(loaded_rpc["action"]["p50"]),
             fmt_us(loaded_rpc["action"]["p99"])],
        ],
    )
    results["loaded"] = (loaded_event, loaded_rpc)
    return results


def test_event_vs_rpc(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    loaded_event, loaded_rpc = results.pop("loaded")
    # Under server load the paper's claim holds even for action latency:
    # the event's scheduler priority beats the queued invocation.
    assert loaded_event["delivered"] == OPERATIONS
    assert loaded_rpc["delivered"] == OPERATIONS
    assert loaded_event["action"]["p50"] < loaded_rpc["action"]["p50"]
    for size, (event, rpc) in results.items():
        # Every operation arrived.
        assert event["delivered"] == OPERATIONS
        assert rpc["delivered"] == OPERATIONS
        # The paper's claim: the event is faster than its function
        # equivalent, for action and (clearly) for completion.
        assert event["action"]["mean"] <= rpc["action"]["mean"] * 1.05
        assert event["action"]["mean"] < rpc["completion"]["mean"]
        # And cheaper on the wire (no response leg).
        assert event["bytes_per_op"] < rpc["bytes_per_op"]
    benchmark.extra_info["sizes"] = {
        str(size): {
            "event_action_us": event["action"]["mean"] * 1e6,
            "rpc_action_us": rpc["action"]["mean"] * 1e6,
            "rpc_completion_us": rpc["completion"]["mean"] * 1e6,
        }
        for size, (event, rpc) in results.items()
    }


if __name__ == "__main__":
    run_experiment()
