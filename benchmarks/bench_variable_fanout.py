"""Experiment E3 — §4.1: multicast "allows optimizing the bandwidth use
because one packet sent can arrive to multiple nodes".

Workload: one publisher sends a 20 Hz position-sized variable for 10
virtual seconds to N subscribers, on a network with multicast (the
middleware's mapping) and without it (the unicast fan-out the container
falls back to conceptually — modelled by the network charging one emission
per member).

Expected shape: emissions and publisher bytes stay flat in N with
multicast, grow linearly without; deliveries are identical.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark, spread

from repro import SimRuntime
from repro.encoding.schema import POSITION_SCHEMA
from repro.services import Service

SUBSCRIBER_COUNTS = [1, 2, 4, 8, 16, 32]
RATE_HZ = 20.0
DURATION = 10.0


class PositionPublisher(Service):
    def __init__(self):
        super().__init__("pub")
        self.count = 0

    def on_start(self):
        self.handle = self.ctx.provide_variable(
            "bench.position", POSITION_SCHEMA, validity=1.0, period=1.0 / RATE_HZ
        )
        self.ctx.every(1.0 / RATE_HZ, self.tick)

    def tick(self):
        self.count += 1
        self.handle.publish(
            {
                "lat": 41.0,
                "lon": 2.0,
                "alt": 300.0,
                "ground_speed": 25.0,
                "heading": 90.0,
                "timestamp": self.ctx.now(),
            }
        )


class PositionSubscriber(Service):
    def __init__(self, name):
        super().__init__(name)
        self.count = 0

    def on_start(self):
        self.ctx.subscribe_variable(
            "bench.position", on_sample=lambda v, t: self._bump()
        )

    def _bump(self):
        self.count += 1


def run_one(subscribers: int, multicast: bool, seed: int = 23):
    runtime = SimRuntime(seed=seed, supports_multicast=multicast)
    pub_container = runtime.add_container("pub-node")
    publisher = PositionPublisher()
    pub_container.install_service(publisher)
    subs = []
    for i in range(subscribers):
        container = runtime.add_container(f"sub-{i}")
        sub = PositionSubscriber(f"subscriber-{i}")
        container.install_service(sub)
        subs.append(sub)
    runtime.start()
    runtime.run_for(3.0)  # discovery settles
    counter = runtime.network.stats.emissions_by_node["pub-node"]
    before = counter.packets
    before_bytes = counter.bytes
    before_overhead = counter.overhead_bytes
    start_counts = [s.count for s in subs]
    published_before = publisher.count
    runtime.run_for(DURATION)
    emissions = counter.packets - before
    emitted = counter.bytes - before_bytes
    overhead = counter.overhead_bytes - before_overhead
    published = publisher.count - published_before
    received = [s.count - c0 for s, c0 in zip(subs, start_counts)]
    return {
        "published": published,
        "emissions": emissions,
        "emitted_bytes": emitted,
        "emitted_overhead_bytes": overhead,
        "min_received": spread(received)["min"],
        "mean_received": spread(received)["mean"],
    }


def run_experiment():
    rows = []
    results = {}
    for n in SUBSCRIBER_COUNTS:
        with_mcast = run_one(n, multicast=True)
        without = run_one(n, multicast=False)
        results[n] = (with_mcast, without)
        rows.append(
            [
                n,
                with_mcast["published"],
                with_mcast["emissions"],
                without["emissions"],
                f"{without['emissions'] / max(with_mcast['emissions'], 1):.1f}x",
                with_mcast["emitted_bytes"],
                without["emitted_bytes"],
                without["emitted_overhead_bytes"] - with_mcast["emitted_overhead_bytes"],
            ]
        )
    print_table(
        "E3: variable fan-out, 20 Hz for 10 s (publisher wire cost)",
        [
            "subs",
            "samples",
            "mcast emissions",
            "ucast emissions",
            "ucast/mcast",
            "mcast bytes",
            "ucast bytes",
            "overhead B saved",
        ],
        rows,
    )
    return results


def test_variable_fanout(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    mcast_emissions = [results[n][0]["emissions"] for n in SUBSCRIBER_COUNTS]
    ucast_emissions = [results[n][1]["emissions"] for n in SUBSCRIBER_COUNTS]
    # Multicast cost is flat in N (within control-traffic noise).
    assert max(mcast_emissions) <= min(mcast_emissions) * 1.5
    # Unicast cost grows roughly linearly: 32 subscribers cost >= 10x 1.
    assert ucast_emissions[-1] >= ucast_emissions[0] * 10
    # Everyone still hears everything (no loss configured).
    for n in SUBSCRIBER_COUNTS:
        for r in results[n]:
            assert r["min_received"] >= r["published"] * 0.95
    benchmark.extra_info["emissions"] = {
        str(n): {"multicast": results[n][0]["emissions"], "unicast": results[n][1]["emissions"]}
        for n in SUBSCRIBER_COUNTS
    }


if __name__ == "__main__":
    run_experiment()
