"""Experiment E5 — §4.2: events "guarantee the reception of the sent
information to all the subscribed services", and the application-layer
UDP+ack mechanism "is more efficient for event messages than the generic
case provided by the TCP stack".

Workload: 200 events (64 B payload) from one publisher to one subscriber
over a link with increasing loss, once per mapping (``udp_ack`` vs the
modelled ``tcp``). Metrics: delivery ratio (must be 100% for both), wire
bytes, retransmitted payload bytes, mean delivery latency.

Expected shape: both mappings deliver everything; the UDP+ack mapping moves
fewer bytes (selective vs go-back-N retransmission, no handshake, smaller
headers) and has lower latency tails.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import fmt_ms, print_table, run_benchmark, summarize_latencies

from repro import Service, SimRuntime
from repro.encoding.types import BYTES, StructType
from repro.protocol.reliability import RetransmitPolicy
from repro.simnet.models import LinkModel
from repro.util.rng import SeededRng

EVENTS = 200
PAYLOAD = 64
LOSS_RATES = [0.0, 0.01, 0.05, 0.10, 0.20]
SCHEMA = StructType("Evt", [("data", BYTES)])


class EventSource(Service):
    def __init__(self):
        super().__init__("source")

    def on_start(self):
        self.handle = self.ctx.provide_event("bench.evt", SCHEMA)


class EventSink(Service):
    def __init__(self):
        super().__init__("sink")
        self.deliveries = []  # (recv_now, publish_timestamp)

    def on_start(self):
        self.ctx.subscribe_event(
            "bench.evt", lambda v, t: self.deliveries.append((self.ctx.now(), t))
        )


def run_one(loss: float, mapping: str, seed: int = 37):
    link = LinkModel(latency=0.001, jitter=0.0002, loss=loss, bandwidth_bps=0.0)
    runtime = SimRuntime(seed=seed, default_link=link)
    common = dict(
        event_mapping=mapping,
        liveness_timeout=8.0,
        heartbeat_interval=0.5,
        retransmit=RetransmitPolicy(initial_rto=0.02, max_retries=30),
    )
    a = runtime.add_container("pub-node", **common)
    b = runtime.add_container("sub-node", **common)
    source = EventSource()
    sink = EventSink()
    a.install_service(source)
    b.install_service(sink)
    runtime.start()
    runtime.run_for(6.0)
    payload = SeededRng(seed).bytes(PAYLOAD)
    bytes_before = runtime.network.stats.emissions.bytes
    for _ in range(EVENTS):
        source.handle.raise_event({"data": payload})
        runtime.run_for(0.02)
    runtime.run_for(30.0)  # drain retransmissions
    wire_bytes = runtime.network.stats.emissions.bytes - bytes_before
    if mapping == "udp_ack":
        sender = a.links._senders.get("sub-node")
        retx = sender.retransmitted_bytes if sender else 0
    else:
        sender = a.tcp_links._senders.get("sub-node")
        retx = sender.retransmitted_bytes if sender else 0
    return {
        "delivered": len(sink.deliveries),
        "wire_bytes": wire_bytes,
        "retx_bytes": retx,
        "latency": summarize_latencies(sink.deliveries),
    }


def run_experiment():
    rows = []
    results = {}
    for loss in LOSS_RATES:
        udp = run_one(loss, "udp_ack")
        tcp = run_one(loss, "tcp")
        results[loss] = (udp, tcp)
        rows.append(
            [
                f"{loss * 100:.0f}%",
                f"{udp['delivered']}/{EVENTS}",
                f"{tcp['delivered']}/{EVENTS}",
                udp["wire_bytes"],
                tcp["wire_bytes"],
                udp["retx_bytes"],
                tcp["retx_bytes"],
                fmt_ms(udp["latency"]["p99"]),
                fmt_ms(tcp["latency"]["p99"]),
            ]
        )
    print_table(
        "E5: 200 events under loss — UDP+ack vs TCP-like mapping",
        [
            "loss",
            "udp delivered",
            "tcp delivered",
            "udp wire B",
            "tcp wire B",
            "udp retx B",
            "tcp retx B",
            "udp p99 ms",
            "tcp p99 ms",
        ],
        rows,
    )
    return results


def test_event_reliability(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    for loss, (udp, tcp) in results.items():
        # The §4.2 guarantee holds for both mappings at every loss rate.
        assert udp["delivered"] == EVENTS
        assert tcp["delivered"] == EVENTS
        # The efficiency claim: fewer bytes on the wire with the
        # application-layer mechanism.
        assert udp["wire_bytes"] < tcp["wire_bytes"]
        if loss >= 0.05:
            # Selective retransmission beats go-back-N where it matters.
            assert udp["retx_bytes"] <= tcp["retx_bytes"]
    benchmark.extra_info["wire_bytes"] = {
        str(loss): {"udp_ack": udp["wire_bytes"], "tcp": tcp["wire_bytes"]}
        for loss, (udp, tcp) in results.items()
    }


if __name__ == "__main__":
    run_experiment()
