"""Micro-benchmarks: implementation throughput (wall-clock CPU costs).

Not a paper experiment — these measure whether this implementation is fast
enough to be usable as a library: frame codec throughput, simulation-kernel
event rate, and end-to-end simulated event throughput per wall second.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.protocol.frames import Frame, MessageKind
from repro.protocol.reliability import ReliableReceiver, ReliableSender
from repro.sim import Simulator
from repro.util import ManualClock

FRAME = Frame(
    kind=MessageKind.EVENT, source="container-1", payload=b"z" * 128,
    channel=1, seq=12345,
)
ENCODED = FRAME.encode()


def test_frame_encode(benchmark):
    result = benchmark(FRAME.encode)
    assert result == ENCODED


def test_frame_decode(benchmark):
    result = benchmark(Frame.decode, ENCODED)
    assert result.seq == 12345


def test_kernel_event_throughput(benchmark):
    """Schedule+run 10k no-op events; reports time per batch."""

    def run_batch():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run_batch) == 10_000


def test_reliable_channel_throughput(benchmark):
    """Send 1k messages through a lossless sender/receiver pair."""

    def run_batch():
        clock = ManualClock()
        delivered = []
        receiver = ReliableReceiver(
            "tx", 1,
            emit_ack=lambda f: sender.on_ack_frame(f),
            deliver=lambda f: delivered.append(f),
            ack_source="rx",
        )
        sender = ReliableSender(
            clock=clock, source="tx", channel=1,
            emit=receiver.on_frame,
        )
        for _ in range(1_000):
            sender.send(MessageKind.EVENT, b"payload")
        return len(delivered)

    assert benchmark(run_batch) == 1_000


def test_simulated_event_rate(benchmark):
    """Full-stack: how many middleware events cross the simulated network
    per wall second (discovery + reliable delivery included)."""
    from repro import SimRuntime, Service
    from repro.encoding.types import STRING

    class Pub(Service):
        def __init__(self):
            super().__init__("pub")

        def on_start(self):
            self.handle = self.ctx.provide_event("micro.evt", STRING)

    class Sub(Service):
        def __init__(self):
            super().__init__("sub")
            self.count = 0

        def on_start(self):
            self.ctx.subscribe_event("micro.evt", lambda v, t: self._bump())

        def _bump(self):
            self.count += 1

    def run_batch():
        runtime = SimRuntime(seed=1)
        a = runtime.add_container("a")
        b = runtime.add_container("b")
        pub, sub = Pub(), Sub()
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        runtime.run_for(3.0)
        for _ in range(500):
            pub.handle.raise_event("x")
        runtime.run_for(5.0)
        return sub.count

    assert benchmark.pedantic(run_batch, rounds=1, iterations=1) == 500
