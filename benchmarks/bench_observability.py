"""Observability overhead: what tracing costs when it is off (and on).

Two claims are checked bench_micro-style:

1. **Disabled tracing is (nearly) free on the wire path.** ``wire.encode``
   with ``trace=None`` produces byte-identical output to the raw codec and
   must stay within 10% of its cost — the wrapper adds one call and one
   branch, nothing per-byte.
2. **Enabled tracing keeps the stack usable.** The full simulated event
   pipeline (discovery + reliable delivery, as in bench_micro's
   ``test_simulated_event_rate``) still moves every event with tracing on,
   recording two spans per event (publish + deliver); the slowdown is
   reported for the record.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import Service, SimRuntime
from repro.encoding.binary import BinaryCodec
from repro.encoding.types import STRING
from repro.observability.trace import TraceContext
from repro.primitives import wire

CODEC = BinaryCodec()
DOC = {"name": "bench.var", "timestamp": 12.5, "value": b"z" * 128}
SCHEMA = wire.VAR_SAMPLE_SCHEMA
TRACE = TraceContext(trace_id="c1-t1", span_id="c1-s1")
EVENTS = 500


def _best_of(fn, n=20_000, repeats=7):
    """Min-of-repeats wall time for n calls — minima are stable against
    scheduler noise where means are not."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def encode_overhead():
    raw = _best_of(lambda: CODEC.encode(SCHEMA, DOC))
    untraced = _best_of(lambda: wire.encode(SCHEMA, DOC))
    traced = _best_of(lambda: wire.encode(SCHEMA, DOC, trace=TRACE))
    return {
        "raw_s": raw,
        "untraced_s": untraced,
        "traced_s": traced,
        "untraced_ratio": untraced / raw,
        "traced_ratio": traced / raw,
    }


class _Pub(Service):
    def __init__(self):
        super().__init__("pub")

    def on_start(self):
        self.handle = self.ctx.provide_event("obs.evt", STRING)


class _Sub(Service):
    def __init__(self):
        super().__init__("sub")
        self.count = 0

    def on_start(self):
        self.ctx.subscribe_event("obs.evt", lambda v, t: self._bump())

    def _bump(self):
        self.count += 1


def event_run(tracing: bool):
    """One full-stack event flight; returns (wall seconds, spans, delivered)."""
    t0 = time.perf_counter()
    runtime = SimRuntime(seed=1)
    a = runtime.add_container("a", tracing_enabled=tracing)
    b = runtime.add_container("b", tracing_enabled=tracing)
    pub, sub = _Pub(), _Sub()
    a.install_service(pub)
    b.install_service(sub)
    runtime.start()
    runtime.run_for(3.0)
    for _ in range(EVENTS):
        pub.handle.raise_event("x")
    runtime.run_for(5.0)
    return time.perf_counter() - t0, len(runtime.trace_spans()), sub.count


def event_rate_overhead(repeats=3):
    off = min(event_run(False)[0] for _ in range(repeats))
    on_time, spans, delivered = min(
        (event_run(True) for _ in range(repeats)), key=lambda r: r[0]
    )
    return {
        "untraced_s": off,
        "traced_s": on_time,
        "ratio": on_time / off,
        "spans": spans,
        "delivered": delivered,
    }


# -- pytest entry points --------------------------------------------------------

def test_untraced_encode_within_ten_percent(benchmark):
    result = run_benchmark(benchmark, encode_overhead)
    benchmark.extra_info.update(result)
    # The acceptance bar: tracing disabled costs < 10% on the wire path
    # (and the bytes are identical, so nothing downstream changes either).
    assert wire.encode(SCHEMA, DOC) == CODEC.encode(SCHEMA, DOC)
    assert result["untraced_ratio"] < 1.10


def test_traced_event_pipeline_still_delivers(benchmark):
    result = run_benchmark(benchmark, lambda: event_rate_overhead(repeats=2))
    benchmark.extra_info.update(result)
    assert result["delivered"] == EVENTS
    # Two spans per event: publish at the provider, deliver at the peer.
    assert result["spans"] == 2 * EVENTS


def run_experiment():
    enc = encode_overhead()
    e2e = event_rate_overhead()
    print_table(
        "Observability overhead (min-of-runs wall time)",
        ["path", "baseline s", "untraced s", "traced s", "untraced x", "traced x"],
        [
            [
                "wire.encode (20k ops)",
                f"{enc['raw_s']:.4f}",
                f"{enc['untraced_s']:.4f}",
                f"{enc['traced_s']:.4f}",
                f"{enc['untraced_ratio']:.3f}",
                f"{enc['traced_ratio']:.3f}",
            ],
            [
                f"event pipeline ({EVENTS} events)",
                f"{e2e['untraced_s']:.4f}",
                f"{e2e['untraced_s']:.4f}",
                f"{e2e['traced_s']:.4f}",
                "1.000",
                f"{e2e['ratio']:.3f}",
            ],
        ],
    )
    return {"encode": enc, "event_rate": e2e}


if __name__ == "__main__":
    run_experiment()
