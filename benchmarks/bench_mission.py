"""Experiment E1 — Fig. 3 / §5: the image-processing mission, measured.

Runs the full six-service scenario on three nodes and reports the rows a
systems evaluation of the scenario would show: mission duration, photo
pipeline latencies (request -> photo-taken event; photo published -> stored;
photo published -> detection event) and the wire budget per primitive.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import SimRuntime
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.services import (
    CameraService,
    GpsService,
    GroundStationService,
    MissionControlService,
    StorageService,
    VideoProcessingService,
)


def run_mission(seed: int = 7):
    runtime = SimRuntime(seed=seed)
    plan = survey_plan(
        GeoPoint(41.275, 1.985), rows=2, row_length_m=700, photos_per_row=2
    )
    fcs = runtime.add_container("fcs")
    payload = runtime.add_container("payload")
    ground = runtime.add_container("ground")

    mc = MissionControlService(plan)
    camera = CameraService(default_features=3)
    storage = StorageService()
    video = VideoProcessingService()
    station = GroundStationService()

    fcs.install_service(GpsService(KinematicUav(plan)))
    fcs.install_service(mc)
    payload.install_service(camera)
    payload.install_service(storage)
    payload.install_service(video)
    ground.install_service(station)

    runtime.start()
    completed = runtime.run_until(lambda: mc.complete, timeout=900.0)
    runtime.run_for(5.0)
    mission_time = runtime.sim.now()
    stats = runtime.network.stats.snapshot()
    return {
        "completed": completed,
        "mission_time_s": mission_time,
        "photos": camera.photos_taken,
        "stored": len(storage.stored_names()),
        "frames": video.frames_processed,
        "detections": video.detections,
        "gs_positions": station.positions_received,
        "gs_detections": len(station.detection_notifications),
        "wire": stats,
        "plan_photos": len(plan.photo_waypoints),
    }


def run_experiment():
    result = run_mission()
    print_table(
        "E1: image-processing mission (2 rows, 4 photo waypoints, 3 nodes)",
        ["metric", "value"],
        [
            ["mission completed", result["completed"]],
            ["mission time (virtual s)", f"{result['mission_time_s']:.1f}"],
            ["photos commanded/taken", f"{result['plan_photos']}/{result['photos']}"],
            ["photos stored", result["stored"]],
            ["frames processed (FPGA sim)", result["frames"]],
            ["detections raised", result["detections"]],
            ["GS position samples", result["gs_positions"]],
            ["wire emissions", result["wire"]["emissions"]],
            ["wire bytes emitted", result["wire"]["emitted_bytes"]],
        ],
    )
    return result


def test_image_mission(benchmark):
    result = run_benchmark(benchmark, run_experiment)
    assert result["completed"]
    assert result["photos"] == result["plan_photos"]
    assert result["stored"] == result["plan_photos"]
    assert result["frames"] == result["plan_photos"]
    assert result["detections"] == result["plan_photos"]  # 3 features everywhere
    assert result["gs_positions"] > 100
    benchmark.extra_info.update(
        mission_time_s=result["mission_time_s"],
        wire_bytes=result["wire"]["emitted_bytes"],
    )


if __name__ == "__main__":
    run_experiment()
