"""Experiment E11 — Fig. 1/2: "Data can come from services in the same
physical node or from a physically Ethernet connected node. The middleware
makes transparent the physical distribution."

Workload: the same event / invocation / variable / file interactions with
the counterpart service (a) in the same container and (b) on another node.
Metrics: latency and wire emissions. Transparency means the *code* is
identical; the table shows what the placement costs.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import fmt_us, print_table, run_benchmark, summarize, summarize_latencies

from repro import Service, SimRuntime
from repro.encoding.types import BYTES, INT32, StructType
from repro.util.rng import SeededRng

OPERATIONS = 100
SCHEMA = StructType("Msg", [("data", BYTES)])


class Responder(Service):
    def __init__(self):
        super().__init__("responder")
        self.event_arrivals = []

    def on_start(self):
        self.ctx.subscribe_event(
            "lr.evt", lambda v, t: self.event_arrivals.append((self.ctx.now(), t))
        )
        self.ctx.provide_function("lr.fn", lambda x: x + 1, params=[INT32], result=INT32)
        self.ctx.provide_variable("lr.var", SCHEMA)


class Initiator(Service):
    def __init__(self):
        super().__init__("initiator")
        self.rpc_latencies = []
        self.file_latencies = []

    def on_start(self):
        self.event = self.ctx.provide_event("lr.evt", SCHEMA)


def run_one(colocated: bool, seed: int = 6):
    runtime = SimRuntime(seed=seed)
    a = runtime.add_container("a")
    responder = Responder()
    initiator = Initiator()
    a.install_service(initiator)
    if colocated:
        a.install_service(responder)
        target = a
    else:
        b = runtime.add_container("b")
        b.install_service(responder)
        target = b
    runtime.start()
    runtime.run_for(3.0)
    payload = SeededRng(seed).bytes(64)

    # Events.
    for _ in range(OPERATIONS):
        initiator.event.raise_event({"data": payload})
        runtime.run_for(0.005)
    event_latency = summarize_latencies(responder.event_arrivals)

    # Invocations.
    for i in range(OPERATIONS):
        sent = runtime.sim.now()
        initiator.ctx.call(
            "lr.fn", (i,),
            on_result=lambda _, s=sent: initiator.rpc_latencies.append(
                runtime.sim.now() - s
            ),
        )
        runtime.run_for(0.005)
    runtime.run_for(1.0)
    rpc_latency = summarize(initiator.rpc_latencies)

    # Files (one 64 KiB resource): subscribe on the initiator's container,
    # publish from wherever the responder lives.
    data = SeededRng(seed).bytes(65536)
    sent = runtime.sim.now()
    done = {}
    a.files.subscribe(
        "lr.file",
        on_complete=lambda d, r: done.setdefault("t", runtime.sim.now()),
        service="initiator",
    )
    target.files.publish("lr.file", data, service="responder")
    runtime.run_until(lambda: "t" in done, timeout=60.0)
    file_latency = done.get("t", float("inf")) - sent

    emissions = runtime.network.stats.emissions.packets
    return {
        "event": event_latency,
        "rpc": rpc_latency,
        "file_s": file_latency,
        "emissions": emissions,
        "events_delivered": len(responder.event_arrivals),
    }


def run_experiment():
    local = run_one(colocated=True)
    remote = run_one(colocated=False)
    print_table(
        "E11: same container vs across the network (identical service code)",
        ["interaction", "local", "remote"],
        [
            ["event mean (us)", fmt_us(local["event"]["mean"]), fmt_us(remote["event"]["mean"])],
            ["invocation mean (us)", fmt_us(local["rpc"]["mean"]), fmt_us(remote["rpc"]["mean"])],
            ["64 KiB file (ms)", f"{local['file_s'] * 1e3:.3f}", f"{remote['file_s'] * 1e3:.3f}"],
            ["total wire emissions", local["emissions"], remote["emissions"]],
        ],
    )
    return local, remote


def test_local_vs_remote(benchmark):
    local, remote = run_benchmark(benchmark, run_experiment)
    # Both placements deliver everything.
    assert local["events_delivered"] == OPERATIONS
    assert remote["events_delivered"] == OPERATIONS
    # Local interactions skip the wire entirely.
    assert local["event"]["mean"] == 0.0
    assert local["rpc"]["mean"] == 0.0
    assert remote["event"]["mean"] > 0.0
    assert remote["rpc"]["mean"] > local["rpc"]["mean"]
    # File bypass: local delivery is immediate; remote pays the transfer.
    assert local["file_s"] < remote["file_s"] / 10
    benchmark.extra_info.update(
        remote_event_us=remote["event"]["mean"] * 1e6,
        remote_rpc_us=remote["rpc"]["mean"] * 1e6,
    )


if __name__ == "__main__":
    run_experiment()
