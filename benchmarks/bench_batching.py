"""Datagram batching and ACK coalescing — packets and overhead saved.

The simulated medium charges a fixed 42-byte header per datagram
(``WIRE_OVERHEAD_BYTES``), so a high-rate telemetry variable that emits one
small datagram per sample pays that cost linearly, and every reliable event
costs a second full datagram for its ACK. This benchmark quantifies what
the data-plane batching stage buys back on two workloads:

- **fanout**: one 500 Hz float variable multicast to 8 subscribers, batching
  off vs on (flush window 10 ms → ~5 samples per datagram). Delivered
  sample counts must be *identical* — batching trades only latency within
  the flush window, never delivery.
- **acks**: a 2000 ev/s reliable event stream to one subscriber, ACK
  coalescing off vs on (5 ms delay-and-merge window, piggybacked on
  outbound batches when one is leaving anyway).

Writes ``BENCH_batching.json``; ``--no-json`` for CI smoke runs.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark, write_bench_json

from repro import Service, SimRuntime
from repro.encoding.types import FLOAT64

RATE_HZ = 500.0
FANOUT_SUBSCRIBERS = 8
FANOUT_DURATION = 4.0
EVENT_BURST = 10
EVENT_TICK = 0.005
EVENT_DURATION = 2.0


class HighRatePublisher(Service):
    """One variable at 500 Hz — the small-datagram firehose."""

    def __init__(self):
        super().__init__("pub")
        self.count = 0

    def on_start(self):
        self.handle = self.ctx.provide_variable(
            "bench.hf", FLOAT64, validity=1.0, period=1.0 / RATE_HZ
        )
        self.ctx.every(1.0 / RATE_HZ, self.tick)

    def tick(self):
        self.count += 1
        self.handle.publish(float(self.count))


class CountingSubscriber(Service):
    def __init__(self, name):
        super().__init__(name)
        self.count = 0

    def on_start(self):
        self.ctx.subscribe_variable("bench.hf", on_sample=lambda v, t: self._bump())

    def _bump(self):
        self.count += 1


class EventBurster(Service):
    """Bursts of reliable events — every one must be individually acked."""

    def __init__(self):
        super().__init__("burster")
        self.count = 0

    def on_start(self):
        self.handle = self.ctx.provide_event("bench.burst", FLOAT64)
        self.ctx.every(EVENT_TICK, self.tick)

    def tick(self):
        for _ in range(EVENT_BURST):
            self.count += 1
            self.handle.raise_event(float(self.count))


class EventCounter(Service):
    def __init__(self):
        super().__init__("counter")
        self.count = 0

    def on_start(self):
        self.ctx.subscribe_event("bench.burst", lambda v, t: self._bump())

    def _bump(self):
        self.count += 1


def _batching_overrides(enabled: bool):
    if not enabled:
        return {}
    return {
        "batching_enabled": True,
        "batch_flush_interval": 0.010,
        "ack_coalesce_delay": 0.005,
    }


def _node_delta(stats, node, before):
    counter = stats.emissions_by_node[node]
    return {
        "packets": counter.packets - before["packets"],
        "bytes": counter.bytes - before["bytes"],
        "overhead_bytes": counter.overhead_bytes - before["overhead_bytes"],
    }


def _mark(stats, node):
    counter = stats.emissions_by_node[node]
    return {
        "packets": counter.packets,
        "bytes": counter.bytes,
        "overhead_bytes": counter.overhead_bytes,
    }


def run_fanout(batching: bool, seed: int = 31):
    runtime = SimRuntime(seed=seed)
    overrides = _batching_overrides(batching)
    pub_container = runtime.add_container("pub", **overrides)
    publisher = HighRatePublisher()
    pub_container.install_service(publisher)
    subs = []
    for i in range(FANOUT_SUBSCRIBERS):
        container = runtime.add_container(f"sub-{i}", **overrides)
        sub = CountingSubscriber(f"subscriber-{i}")
        container.install_service(sub)
        subs.append(sub)
    runtime.start()
    runtime.run_for(3.0)  # discovery settles
    before = _mark(runtime.network.stats, "pub")
    published_before = publisher.count
    received_before = [s.count for s in subs]
    runtime.run_for(FANOUT_DURATION)
    runtime.run_for(0.5)  # drain flush windows so both modes deliver all
    delta = _node_delta(runtime.network.stats, "pub", before)
    delta["published"] = publisher.count - published_before
    delta["delivered"] = sum(s.count - c0 for s, c0 in zip(subs, received_before))
    return delta


def run_ack_workload(coalesce: bool, seed: int = 37):
    runtime = SimRuntime(seed=seed)
    overrides = _batching_overrides(coalesce)
    pub_container = runtime.add_container("pub", **overrides)
    sub_container = runtime.add_container("sub", **overrides)
    burster = EventBurster()
    counter = EventCounter()
    pub_container.install_service(burster)
    sub_container.install_service(counter)
    runtime.start()
    runtime.run_for(3.0)
    before = _mark(runtime.network.stats, "sub")
    sent_before = burster.count
    got_before = counter.count
    runtime.run_for(EVENT_DURATION)
    runtime.run_for(0.5)
    delta = _node_delta(runtime.network.stats, "sub", before)
    delta["events_sent"] = burster.count - sent_before
    delta["events_delivered"] = counter.count - got_before
    return delta


def run_experiment(write_json=True):
    unbatched = run_fanout(batching=False)
    batched = run_fanout(batching=True)
    acks_plain = run_ack_workload(coalesce=False)
    acks_merged = run_ack_workload(coalesce=True)

    packet_reduction = unbatched["packets"] / max(batched["packets"], 1)
    overhead_saved = unbatched["overhead_bytes"] - batched["overhead_bytes"]
    ack_reduction = acks_plain["packets"] / max(acks_merged["packets"], 1)
    ack_overhead_saved = acks_plain["overhead_bytes"] - acks_merged["overhead_bytes"]

    print_table(
        f"Variable fan-out, {RATE_HZ:.0f} Hz x {FANOUT_DURATION:.0f} s to "
        f"{FANOUT_SUBSCRIBERS} subscribers (publisher wire cost)",
        ["mode", "samples", "delivered", "packets", "bytes", "overhead B"],
        [
            ["unbatched", unbatched["published"], unbatched["delivered"],
             unbatched["packets"], unbatched["bytes"], unbatched["overhead_bytes"]],
            ["batched", batched["published"], batched["delivered"],
             batched["packets"], batched["bytes"], batched["overhead_bytes"]],
            ["reduction", "-", "-", f"{packet_reduction:.1f}x",
             f"{unbatched['bytes'] / max(batched['bytes'], 1):.2f}x",
             f"saved {overhead_saved}"],
        ],
    )
    print_table(
        f"Reliable event stream, {EVENT_BURST / EVENT_TICK:.0f} ev/s x "
        f"{EVENT_DURATION:.0f} s (subscriber/ACK wire cost)",
        ["mode", "events", "delivered", "packets", "bytes", "overhead B"],
        [
            ["per-frame acks", acks_plain["events_sent"], acks_plain["events_delivered"],
             acks_plain["packets"], acks_plain["bytes"], acks_plain["overhead_bytes"]],
            ["coalesced", acks_merged["events_sent"], acks_merged["events_delivered"],
             acks_merged["packets"], acks_merged["bytes"], acks_merged["overhead_bytes"]],
            ["reduction", "-", "-", f"{ack_reduction:.1f}x", "-",
             f"saved {ack_overhead_saved}"],
        ],
    )
    payload = {
        "experiment": "batching",
        "fanout": {
            "unbatched": unbatched,
            "batched": batched,
            "packet_reduction": packet_reduction,
            "overhead_bytes_saved": overhead_saved,
        },
        "acks": {
            "per_frame": acks_plain,
            "coalesced": acks_merged,
            "packet_reduction": ack_reduction,
            "overhead_bytes_saved": ack_overhead_saved,
        },
    }
    if write_json:
        path = write_bench_json("batching", payload)
        print(f"\nwrote {path}")
    return payload


# -- pytest entry points --------------------------------------------------------


def test_batching_equivalence_and_reduction(benchmark):
    result = run_benchmark(benchmark, lambda: run_experiment(write_json=False))
    fanout = result["fanout"]
    # Equivalence: batching changes packetization, never what is delivered.
    assert fanout["batched"]["delivered"] == fanout["unbatched"]["delivered"]
    assert fanout["batched"]["published"] == fanout["unbatched"]["published"]
    assert (
        fanout["batched"]["delivered"]
        == fanout["batched"]["published"] * FANOUT_SUBSCRIBERS
    )
    # The acceptance bar: >= 2x fewer packets on the wire at equal delivery.
    assert fanout["packet_reduction"] >= 2.0
    # Coalescing strictly reduces the ACK-side packet count too.
    acks = result["acks"]
    assert acks["coalesced"]["events_delivered"] == acks["per_frame"]["events_delivered"]
    assert acks["packet_reduction"] >= 2.0
    benchmark.extra_info["packet_reduction"] = fanout["packet_reduction"]
    benchmark.extra_info["ack_packet_reduction"] = acks["packet_reduction"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-json",
        action="store_true",
        help="skip writing BENCH_batching.json (smoke runs)",
    )
    args = parser.parse_args()
    run_experiment(write_json=not args.no_json)
