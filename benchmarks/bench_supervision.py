"""Experiment E8 — supervised restart: time-to-recovery vs. backoff.

Workload: a provider of ``nav.compute`` crashes repeatedly (Poisson-ish
schedule drawn from the seed) while a client calls at 10 Hz; a redundant
backup covers the gaps. Swept over the initial backoff. Metrics: mean and
p99 time-to-recovery (failure → service RUNNING again, from the
supervisor's own counters), restart attempts, and the client-visible
failed calls. A second scenario exhausts the restart budget and measures
the failover: escalation delay and the share of calls the backup absorbs.

Expected shape: recovery time tracks the backoff schedule (it *is* the
backoff for a first failure, doubling under repeated ones); client-visible
loss stays near zero because the backup serves the directory gap.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import RestartPolicy, Service, SimRuntime
from repro.encoding.types import STRING
from repro.faults import FaultInjector

BACKOFFS = [0.1, 0.4, 1.6]
CRASH_TIMES = [4.0, 9.0, 14.0, 19.0]
CALL_RATE_HZ = 10.0
RUN_FOR = 30.0


class Nav(Service):
    def __init__(self, name, tag, poisoned=False):
        super().__init__(name)
        self.tag = tag
        self.poisoned = poisoned

    def on_start(self):
        if self.poisoned:
            raise RuntimeError("refuses to start")
        self.ctx.provide_function(
            "nav.compute", lambda: self.tag, params=[], result=STRING
        )


class Caller(Service):
    def __init__(self):
        super().__init__("caller")
        self.answers = []  # (completed_t, tag)
        self.failures = []

    def on_start(self):
        self.ctx.every(1.0 / CALL_RATE_HZ, self._tick)

    def _tick(self):
        self.ctx.call(
            "nav.compute",
            on_result=lambda tag: self.answers.append((self.ctx.now(), tag)),
            on_error=self.failures.append,
            timeout=1.0,
        )


def run_recovery(backoff_initial: float, seed: int = 8):
    """Primary crashes on a schedule; the supervisor heals it each time."""
    policy = RestartPolicy(
        mode="on-failure", backoff_initial=backoff_initial,
        backoff_factor=2.0, backoff_max=10.0, jitter=0.1,
        max_restarts=10, restart_window=60.0,
    )
    runtime = SimRuntime(seed=seed)
    primary = runtime.add_container("primary", restart_policy=policy)
    backup = runtime.add_container("backup")
    client_node = runtime.add_container("client")
    primary.install_service(Nav("nav-a", "primary"))
    backup.install_service(Nav("nav-b", "backup"))
    caller = Caller()
    client_node.install_service(caller)
    injector = FaultInjector(runtime)
    for at in CRASH_TIMES:
        injector.crash_service(at, "primary", "nav-a")
    runtime.start()
    runtime.run_for(RUN_FOR)

    stats = primary.supervisor.stats
    recovery = stats.summary("recovery_time")
    return {
        "recovery_mean": recovery.get("mean", float("inf")),
        "recovery_p99": recovery.get("p99", float("inf")),
        "attempts": primary.supervisor.restarts_attempted,
        "succeeded": stats.count("restarts_succeeded"),
        "failed_calls": len(caller.failures),
        "answers": len(caller.answers),
    }


def run_escalation(seed: int = 8):
    """Primary crash-loops past its budget; the backup takes over."""
    policy = RestartPolicy(
        mode="on-failure", backoff_initial=0.2, backoff_factor=1.5,
        jitter=0.0, max_restarts=3, restart_window=60.0,
    )
    runtime = SimRuntime(seed=seed)
    primary = runtime.add_container("primary", restart_policy=policy)
    backup = runtime.add_container("backup")
    client_node = runtime.add_container("client")
    nav = Nav("nav-a", "primary")
    primary.install_service(nav)
    backup.install_service(Nav("nav-b", "backup"))
    caller = Caller()
    client_node.install_service(caller)

    def poison_and_crash():
        nav.poisoned = True
        primary.service_failed("nav-a", "injected")

    runtime.sim.schedule(6.0, poison_and_crash)
    runtime.start()
    runtime.run_for(RUN_FOR)

    stats = primary.supervisor.stats
    after_escalation = [
        tag for t, tag in caller.answers
        if t >= 6.0 + stats.summary("escalation_after").get("max", 0.0)
    ]
    return {
        "attempts": primary.supervisor.restarts_attempted,
        "escalations": primary.supervisor.escalations,
        "escalation_after": stats.summary("escalation_after").get("max", float("inf")),
        "backup_share": (
            after_escalation.count("backup") / len(after_escalation)
            if after_escalation else 0.0
        ),
        "failed_calls": len(caller.failures),
    }


def run_experiment():
    rows = []
    results = {}
    for backoff in BACKOFFS:
        r = run_recovery(backoff)
        results[backoff] = r
        rows.append(
            [
                f"{backoff:.1f}",
                f"{r['recovery_mean']:.2f}",
                f"{r['recovery_p99']:.2f}",
                f"{r['succeeded']}/{r['attempts']}",
                r["failed_calls"],
            ]
        )
    print_table(
        "E8a: supervised restart (4 crashes, 10 Hz calls, redundant backup)",
        ["backoff s", "recovery mean s", "recovery p99 s", "healed/attempts",
         "calls failed"],
        rows,
    )
    esc = run_escalation()
    results["escalation"] = esc
    print_table(
        "E8b: budget exhaustion and failover (max_restarts=3)",
        ["attempts", "escalations", "escalated after s", "backup share",
         "calls failed"],
        [[esc["attempts"], esc["escalations"], f"{esc['escalation_after']:.2f}",
          f"{esc['backup_share']:.2f}", esc["failed_calls"]]],
    )
    return results


def test_supervision(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    for backoff in BACKOFFS:
        r = results[backoff]
        # Every restart the schedule fit into the run healed the service
        # (the largest backoff pushes the last restart past the horizon).
        assert r["succeeded"] == r["attempts"]
        assert r["succeeded"] >= len(CRASH_TIMES) - 1
        # Recovery is the backoff schedule: bounded below by the initial
        # backoff and above by the worst doubled+jittered delay.
        assert r["recovery_mean"] >= backoff * 0.9
        assert r["recovery_p99"] <= backoff * 2 ** len(CRASH_TIMES)
        # The backup covered the gaps: the mission kept its answers coming.
        assert r["answers"] > (RUN_FOR - 5) * CALL_RATE_HZ
    esc = results["escalation"]
    assert esc["escalations"] == 1
    assert esc["attempts"] == 3
    # After escalation every answer comes from the backup.
    assert esc["backup_share"] == 1.0
    benchmark.extra_info["recovery_mean_s"] = {
        str(k): v["recovery_mean"] for k, v in results.items() if k != "escalation"
    }


if __name__ == "__main__":
    run_experiment()
