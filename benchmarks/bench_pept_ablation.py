"""Experiment E10 — Fig. 4 / §6: the PEPt layering "allows us to test and
evaluate different algorithms and implementations for the same layer very
easily".

Two plug-in swaps, everything else identical:

  (a) Encoding: binary vs JSON codec — wire bytes per position sample and
      raw encode/decode CPU cost (this is where pytest-benchmark's timing
      is the metric);
  (b) Transport: simulated network vs in-process hub for the same
      request/response exchange — identical application behaviour.

Expected shape: binary smaller and faster than JSON; both transports carry
the identical frame stream.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import SimRuntime, Service
from repro.encoding import BinaryCodec, JsonCodec
from repro.encoding.schema import POSITION_SCHEMA

SAMPLE = {
    "lat": 41.27512345,
    "lon": 1.98567891,
    "alt": 300.25,
    "ground_speed": 25.5,
    "heading": 184.75,
    "timestamp": 1234.5678,
}

CODECS = {"binary": BinaryCodec(), "json": JsonCodec()}


class Publisher(Service):
    def __init__(self):
        super().__init__("pub")

    def on_start(self):
        self.handle = self.ctx.provide_variable("abl.position", POSITION_SCHEMA)


class Subscriber(Service):
    def __init__(self):
        super().__init__("sub")
        self.received = []

    def on_start(self):
        self.ctx.subscribe_variable("abl.position", lambda v, t: self.received.append(v))


def run_codec_stack(codec_name: str, samples: int = 100, seed: int = 3):
    runtime = SimRuntime(seed=seed)
    a = runtime.add_container("a", codec=codec_name)
    b = runtime.add_container("b", codec=codec_name)
    pub = Publisher()
    sub = Subscriber()
    a.install_service(pub)
    b.install_service(sub)
    runtime.start()
    runtime.run_for(3.0)
    before = runtime.network.stats.emissions.bytes
    for _ in range(samples):
        pub.handle.publish(SAMPLE)
        runtime.run_for(0.01)
    runtime.run_for(1.0)
    return {
        "received": len(sub.received),
        "bytes_per_sample": (runtime.network.stats.emissions.bytes - before) / samples,
        "round_trip_exact": sub.received[-1] == SAMPLE if sub.received else False,
    }


def run_experiment():
    rows = []
    results = {}
    for name, codec in CODECS.items():
        encoded = codec.encode(POSITION_SCHEMA, SAMPLE)
        stack = run_codec_stack(name)
        results[name] = {"encoded_size": len(encoded), **stack}
        rows.append(
            [name, len(encoded), f"{stack['bytes_per_sample']:.0f}",
             stack["received"], stack["round_trip_exact"]]
        )
    print_table(
        "E10a: Encoding plug-in swap (identical stack, same samples)",
        ["codec", "payload B", "wire B/sample", "delivered", "exact round trip"],
        rows,
    )
    return results


def test_codec_swap_end_to_end(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    assert results["binary"]["received"] == 100
    assert results["json"]["received"] == 100
    # JSON works identically but costs more bytes.
    assert results["binary"]["encoded_size"] < results["json"]["encoded_size"]
    assert results["binary"]["bytes_per_sample"] < results["json"]["bytes_per_sample"]
    assert results["binary"]["round_trip_exact"]
    assert results["json"]["round_trip_exact"]
    benchmark.extra_info["encoded_size"] = {
        name: results[name]["encoded_size"] for name in CODECS
    }


def test_binary_encode_cpu(benchmark):
    codec = CODECS["binary"]
    result = benchmark(lambda: codec.encode(POSITION_SCHEMA, SAMPLE))
    assert codec.decode(POSITION_SCHEMA, result) == SAMPLE


def test_json_encode_cpu(benchmark):
    codec = CODECS["json"]
    result = benchmark(lambda: codec.encode(POSITION_SCHEMA, SAMPLE))
    assert codec.decode(POSITION_SCHEMA, result) == SAMPLE


def test_binary_decode_cpu(benchmark):
    codec = CODECS["binary"]
    encoded = codec.encode(POSITION_SCHEMA, SAMPLE)
    assert benchmark(lambda: codec.decode(POSITION_SCHEMA, encoded)) == SAMPLE


def test_json_decode_cpu(benchmark):
    codec = CODECS["json"]
    encoded = codec.encode(POSITION_SCHEMA, SAMPLE)
    assert benchmark(lambda: codec.decode(POSITION_SCHEMA, encoded)) == SAMPLE


if __name__ == "__main__":
    run_experiment()
