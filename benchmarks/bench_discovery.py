"""Ablation — §3 name management at scale.

The paper's discovery protocol (periodic multicast announce + heartbeat) is
O(N) control traffic on one group. This ablation measures, as the node
count grows: time for a fresh node's offers to reach every peer
(convergence), and the steady-state control-plane bandwidth — the cost of
"the containers are able to clear and update their caches".

Expected shape: convergence stays flat (one announce interval, independent
of N); control bandwidth grows linearly in N — each container emits a
constant rate and multicast keeps that flat per sender.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import SimRuntime
from repro.encoding.types import STRING
from repro.services import Service

NODE_COUNTS = [2, 4, 8, 16, 32]
STEADY_WINDOW = 10.0


class Offerer(Service):
    def __init__(self, name):
        super().__init__(name)

    def on_start(self):
        self.ctx.provide_event(f"{self.name}.evt", STRING)


def run_one(nodes: int, seed: int = 12):
    runtime = SimRuntime(seed=seed)
    containers = []
    for i in range(nodes):
        container = runtime.add_container(f"c{i}")
        container.install_service(Offerer(f"svc{i}"))
        containers.append(container)
    runtime.start()
    runtime.run_for(3.0)

    # Steady-state control bandwidth.
    before = runtime.network.stats.emissions.bytes
    runtime.run_for(STEADY_WINDOW)
    control_bps = (runtime.network.stats.emissions.bytes - before) * 8 / STEADY_WINDOW

    # Convergence: add one more container offering a new event; measure the
    # time until every existing peer can resolve it.
    newcomer = runtime.add_container("newcomer")
    newcomer.install_service(Offerer("newsvc"))
    joined_at = runtime.sim.now()
    converged = runtime.run_until(
        lambda: all(
            c.directory.providers_of_event("newsvc.evt") for c in containers
        ),
        timeout=30.0,
        poll=0.01,
    )
    convergence = runtime.sim.now() - joined_at if converged else float("inf")
    return {
        "control_bps": control_bps,
        "convergence_s": convergence,
        "converged": converged,
    }


def run_experiment():
    rows = []
    results = {}
    for n in NODE_COUNTS:
        result = run_one(n)
        results[n] = result
        rows.append(
            [
                n,
                f"{result['control_bps'] / 1000:.1f}",
                f"{result['control_bps'] / 1000 / n:.2f}",
                f"{result['convergence_s']:.3f}",
            ]
        )
    print_table(
        "Discovery scalability: control-plane cost and join convergence",
        ["nodes", "control kbit/s", "per-node kbit/s", "join convergence s"],
        rows,
    )
    return results


def test_discovery_scalability(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    per_node = [results[n]["control_bps"] / n for n in NODE_COUNTS]
    # Per-node control cost is flat (multicast): within 2x across 2..32 nodes.
    assert max(per_node) <= min(per_node) * 2.0
    # Convergence is bounded by roughly one announce interval regardless of N.
    for n in NODE_COUNTS:
        assert results[n]["converged"]
        assert results[n]["convergence_s"] <= 1.5
    benchmark.extra_info["control_kbps"] = {
        str(n): results[n]["control_bps"] / 1000 for n in NODE_COUNTS
    }


if __name__ == "__main__":
    run_experiment()
