"""Experiment E6 — §6: the pluggable scheduler ("a simple thread pool with
fixed priorities for each named primitive") keeps event latency low under
load; soft real time, not hard.

Workload: one node whose CPU model charges real costs per primitive
(events 0.2 ms, invocations 5 ms, file chunks 2 ms). A flood of background
invocations and file work competes with 50 Hz events. We compare the
paper's fixed-priority policy against FIFO (the ablation baseline) and the
EDF-style deadline policy (the paper's future-work direction).

Expected shape: under fixed priorities the event queueing delay stays near
zero while FIFO drags events behind multi-millisecond invocations; deadline
behaves like fixed priorities for this mix. The max (not bounded) shows why
the paper calls this *soft* real time.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import fmt_ms, print_table, run_benchmark, summarize

from repro.sched import CpuModel, SimScheduler, make_policy
from repro.sim import Simulator
from repro.util.rng import SeededRng

POLICIES = ["fixed_priority", "fifo", "deadline"]
DURATION = 10.0
EVENT_RATE_HZ = 50.0
RPC_RATE_HZ = 120.0
FILE_RATE_HZ = 200.0

COSTS = CpuModel(
    costs={"event": 0.0002, "invocation": 0.005, "file": 0.002, "control": 0.0001}
)


def run_one(policy_name: str, seed: int = 5):
    sim = Simulator()
    sched = SimScheduler(
        timers=sim, clock=sim, policy=make_policy(policy_name), cpu=COSTS, record=True
    )
    rng = SeededRng(seed)

    def periodic(rate_hz, label):
        period = 1.0 / rate_hz

        def fire():
            sched.submit(label, lambda: None)
            sim.schedule(rng.jittered(period, period * 0.2, floor=period * 0.1), fire)

        sim.schedule(rng.uniform(0, period), fire)

    periodic(EVENT_RATE_HZ, "event")
    periodic(RPC_RATE_HZ, "invocation")
    periodic(FILE_RATE_HZ, "file")
    sim.run(until=DURATION)
    return {
        "event": summarize(sched.queue_delays("event")),
        "invocation": summarize(sched.queue_delays("invocation")),
        "file": summarize(sched.queue_delays("file")),
        "executed": sched.executed,
    }


def run_experiment():
    rows = []
    results = {}
    for policy in POLICIES:
        result = run_one(policy)
        results[policy] = result
        rows.append(
            [
                policy,
                fmt_ms(result["event"]["p50"]),
                fmt_ms(result["event"]["p99"]),
                fmt_ms(result["event"]["max"]),
                fmt_ms(result["invocation"]["p99"]),
                fmt_ms(result["file"]["p99"]),
                result["executed"],
            ]
        )
    print_table(
        "E6: queueing delay by scheduling policy (loaded node, 10 s)",
        [
            "policy",
            "event p50 ms",
            "event p99 ms",
            "event max ms",
            "rpc p99 ms",
            "file p99 ms",
            "tasks",
        ],
        rows,
    )
    return results


def test_scheduler_policies(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    fixed = results["fixed_priority"]
    fifo = results["fifo"]
    deadline = results["deadline"]
    # The paper's policy protects events: p99 bounded by one in-flight
    # invocation (the CPU is not preemptible — soft real time).
    assert fixed["event"]["p99"] <= 0.0055
    # FIFO does not: events queue behind bulk work.
    assert fifo["event"]["p99"] > fixed["event"]["p99"] * 3
    # The future-work EDF variant also protects events for this mix.
    assert deadline["event"]["p99"] <= 0.0055
    # Soft real time: even fixed priority has a nonzero worst case
    # (a long task already on the CPU is never preempted).
    assert fixed["event"]["max"] > 0.0
    benchmark.extra_info["event_p99_ms"] = {
        policy: results[policy]["event"]["p99"] * 1e3 for policy in POLICIES
    }


if __name__ == "__main__":
    run_experiment()
