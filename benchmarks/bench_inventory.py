"""Experiment E8 — §6: "The current minimalistic prototype is based on
Microsoft C# and has 36 classes and less than 1500 lines of code."

Reports this reproduction's inventory next to the prototype's, counted by
static analysis of the installed package. We implement far more than the
prototype did (a network simulator, two runtimes, six services, a flight
model, benchmarks), so the table also isolates the middleware core — the
part comparable to the C# prototype.
"""

import ast
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

import repro

PACKAGE_ROOT = Path(repro.__file__).parent

#: Subpackages comparable in scope to the paper's C# prototype (the PEPt
#: stack, the container, the primitives and the service API).
CORE_PACKAGES = {
    "encoding",
    "protocol",
    "transport",
    "sched",
    "container",
    "primitives",
    "util",
}


def count_module(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    classes = sum(isinstance(node, ast.ClassDef) for node in ast.walk(tree))
    functions = sum(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(tree)
    )
    lines = sum(
        1 for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
    return classes, functions, lines


def run_experiment():
    per_package = {}
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        package = path.relative_to(PACKAGE_ROOT).parts[0]
        if package.endswith(".py"):
            package = "(root)"
        classes, functions, lines = count_module(path)
        entry = per_package.setdefault(package, [0, 0, 0, 0])
        entry[0] += 1
        entry[1] += classes
        entry[2] += functions
        entry[3] += lines

    rows = []
    core = [0, 0, 0]
    total = [0, 0, 0]
    for package, (files, classes, functions, lines) in sorted(per_package.items()):
        tag = "core" if package in CORE_PACKAGES else "substrate"
        rows.append([package, tag, files, classes, functions, lines])
        total[0] += classes
        total[1] += functions
        total[2] += lines
        if package in CORE_PACKAGES:
            core[0] += classes
            core[1] += functions
            core[2] += lines
    rows.append(["TOTAL (this repo)", "", "", total[0], total[1], total[2]])
    rows.append(["core middleware only", "", "", core[0], core[1], core[2]])
    rows.append(["paper's C# prototype", "", "", 36, "?", "<1500"])
    print_table(
        "E8: implementation inventory vs the paper's prototype",
        ["package", "kind", "files", "classes", "functions", "code lines"],
        rows,
    )
    return {"total": total, "core": core}


def test_inventory(benchmark):
    result = run_benchmark(benchmark, run_experiment)
    # This reproduction dwarfs the 36-class/1500-line prototype: we also
    # built the testbed it ran on. Sanity-check the counter itself.
    assert result["core"][0] >= 36  # at least as many classes as the prototype
    assert result["total"][2] > 1500
    benchmark.extra_info.update(
        total_classes=result["total"][0], total_lines=result["total"][2]
    )


if __name__ == "__main__":
    run_experiment()
