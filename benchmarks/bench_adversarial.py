"""Experiment A1 — robustness: goodput retention under a volumetric flood.

The attack the admission layer exists for: a :class:`~repro.faults.Flooder`
firehoses well-formed reliable-channel frames at a publisher whose uplink
is bandwidth-shaped. Undefended, every admitted flood frame buys a band-0
ACK on that shaped uplink, crowding the victim's own events off the wire —
goodput collapses for as long as the flood lasts. With admission control
and reliability hardening armed, the flood is shed at the ingress door and
the ACK amplification is capped, so event goodput barely moves.

Three runs of the same seeded scenario: baseline (no attack), undefended
under flood, defended under flood. Goodput is judged **at the instant the
flood ends** — reliable events all arrive *eventually*, so collapse is
visible only as backlog at the height of the attack, never in end-of-run
totals. The headline number is goodput retention: defended-under-attack
goodput divided by undefended-under-attack goodput (acceptance: >= 5x).

Writes ``BENCH_adversarial.json``; ``--no-json`` for CI smoke runs.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark, write_bench_json

from repro import Service, SimRuntime
from repro.encoding.types import STRING
from repro.faults import Flooder

SEED = 41
FLOOD_START = 2.0
FLOOD_DURATION = 5.0
FLOOD_RATE = 3000.0
EVENT_PERIOD = 0.02  # victim publishes at 50 Hz
SETTLE = 8.0  # post-flood drain so eventual delivery is also measurable

#: The shaped uplink that makes the flood dangerous: narrow enough that
#: forced ACK responses compete with the victim's own traffic.
VICTIM_EGRESS_BPS = 150_000.0
VICTIM_EGRESS_QUEUE = 64


class Telemetry(Service):
    """Publishes at 50 Hz for exactly the flood window."""

    def __init__(self):
        super().__init__("telemetry")
        self.published = 0

    def on_start(self):
        self.handle = self.ctx.provide_event("adv.telemetry", STRING)

        def publish():
            # Publish only inside [FLOOD_START, flood end): starting with
            # the attack skips the discovery-convergence second, stopping
            # with it makes the flood-end snapshot the final word on what
            # was offered while under fire.
            if FLOOD_START <= self.ctx.now() < FLOOD_START + FLOOD_DURATION:
                self.published += 1
                self.handle.raise_event(f"evt-{self.published}")

        self.ctx.every(EVENT_PERIOD, publish)


class Consumer(Service):
    def __init__(self):
        super().__init__("consumer")
        self.delivered = 0

    def on_start(self):
        def on_event(value, timestamp):
            self.delivered += 1

        self.ctx.subscribe_event("adv.telemetry", on_event)


def run_one(attack: bool, defended: bool, seed: int = SEED):
    runtime = SimRuntime(seed=seed)
    victim = runtime.add_container(
        "victim",
        egress_rate_bps=VICTIM_EGRESS_BPS,
        egress_queue_limit=VICTIM_EGRESS_QUEUE,
    )
    runtime.add_container("observer")
    telemetry = Telemetry()
    consumer = Consumer()
    victim.install_service(telemetry)
    runtime.container("observer").install_service(consumer)

    flooder = None
    if attack:
        flooder = Flooder(
            runtime,
            target="victim",
            start=FLOOD_START,
            duration=FLOOD_DURATION,
            rate=FLOOD_RATE,
        )
        flooder.launch()

    snapshot = {}

    def snap():
        snapshot["published"] = telemetry.published
        snapshot["delivered"] = consumer.delivered

    runtime.sim.schedule(FLOOD_START + FLOOD_DURATION, snap)
    runtime.start()
    if defended:
        runtime.enable_admission()
        runtime.harden_reliability()
    runtime.run_for(FLOOD_START + FLOOD_DURATION + SETTLE)
    runtime.stop()

    goodput = (
        snapshot["delivered"] / snapshot["published"] if snapshot["published"] else 0.0
    )
    return {
        "published": telemetry.published,
        "delivered_at_flood_end": snapshot["delivered"],
        "delivered_final": consumer.delivered,
        "goodput": goodput,
        "flood_frames": flooder.frames_sent if flooder else 0,
        "admission_drops": victim.admission.dropped if defended else 0,
    }


def run_experiment(write_json: bool = True):
    baseline = run_one(attack=False, defended=False)
    undefended = run_one(attack=True, defended=False)
    defended = run_one(attack=True, defended=True)
    retention = (
        defended["goodput"] / undefended["goodput"]
        if undefended["goodput"]
        else float("inf")
    )

    def row(label, r):
        return [
            label,
            r["published"],
            r["delivered_at_flood_end"],
            f"{r['goodput'] * 100:.1f}%",
            r["delivered_final"],
            r["flood_frames"],
            r["admission_drops"],
        ]

    print_table(
        f"A1: goodput at flood end — {FLOOD_RATE:.0f} frames/s for "
        f"{FLOOD_DURATION:.0f} s against a {VICTIM_EGRESS_BPS / 1000:.0f} kbit/s uplink",
        ["run", "published", "@flood end", "goodput", "final", "flood frames", "drops"],
        [
            row("baseline", baseline),
            row("undefended", undefended),
            row("defended", defended),
            ["retention", "-", "-", f"{retention:.1f}x", "-", "-", "-"],
        ],
    )
    payload = {
        "experiment": "adversarial",
        "scenario": {
            "seed": SEED,
            "flood_rate": FLOOD_RATE,
            "flood_duration": FLOOD_DURATION,
            "event_hz": 1.0 / EVENT_PERIOD,
            "victim_egress_bps": VICTIM_EGRESS_BPS,
            "victim_egress_queue": VICTIM_EGRESS_QUEUE,
        },
        "baseline": baseline,
        "undefended": undefended,
        "defended": defended,
        "goodput_retention": retention,
    }
    if write_json:
        path = write_bench_json("adversarial", payload)
        print(f"\nwrote {path}")
    return payload


# -- pytest entry points --------------------------------------------------------


def test_adversarial_goodput_retention(benchmark):
    result = run_benchmark(benchmark, lambda: run_experiment(write_json=False))
    baseline = result["baseline"]
    undefended = result["undefended"]
    defended = result["defended"]
    # The attack is real: the undefended victim's goodput collapses while
    # the flood runs (eventual delivery still completes — reliability keeps
    # its guarantee — which is exactly why the snapshot is the metric).
    assert undefended["goodput"] < 0.5 * baseline["goodput"]
    assert undefended["delivered_final"] == undefended["published"]
    # The acceptance bar: defenses retain >= 5x the under-attack goodput.
    assert result["goodput_retention"] >= 5.0
    # And the defended run is close to the no-attack baseline, with the
    # flood measurably shed at the admission door.
    assert defended["goodput"] >= 0.8 * baseline["goodput"]
    assert defended["admission_drops"] > 1000
    benchmark.extra_info["goodput_retention"] = result["goodput_retention"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-json",
        action="store_true",
        help="skip writing BENCH_adversarial.json (smoke runs)",
    )
    args = parser.parse_args()
    run_experiment(write_json=not args.no_json)
