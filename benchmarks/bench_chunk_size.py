"""Ablation — §4.4 design choice: file-transfer chunk size.

The paper fixes "equally sized chunks" but never discusses the size. This
ablation sweeps it on a lossy link: small chunks waste bandwidth on
headers; big chunks amplify the cost of each loss (a lost datagram takes
the whole chunk with it) and bump against the MTU. The sweet spot sits
near (MTU - headers), which is why the default is 1 KiB.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import Service, SimRuntime
from repro.simnet.models import LinkModel
from repro.util.rng import SeededRng

FILE_SIZE = 256 * 1024
CHUNK_SIZES = [128, 256, 512, 1024, 1400]
LOSS = 0.05


class Receiver(Service):
    def __init__(self):
        super().__init__("rx")
        self.completed_at = None
        self.data = None

    def on_start(self):
        self.ctx.subscribe_file(
            "cs.file",
            on_complete=lambda d, r: (
                setattr(self, "completed_at", self.ctx.now()),
                setattr(self, "data", d),
            ),
        )


def run_one(chunk_size: int, seed: int = 18):
    link = LinkModel(latency=0.001, jitter=0.0002, loss=LOSS,
                     bandwidth_bps=10_000_000.0)
    runtime = SimRuntime(seed=seed, default_link=link)
    kw = dict(file_chunk_size=chunk_size, liveness_timeout=5.0)
    a = runtime.add_container("tx-node", **kw)
    b = runtime.add_container("rx-node", **kw)

    class Tx(Service):
        def __init__(self):
            super().__init__("tx")

    a.install_service(Tx())
    receiver = Receiver()
    b.install_service(receiver)
    runtime.start()
    runtime.run_for(3.0)
    data = SeededRng(seed).bytes(1024) * (FILE_SIZE // 1024)
    bytes_before = runtime.network.stats.emissions.bytes
    start = runtime.sim.now()
    a.files.publish("cs.file", data, service="tx")
    finished = runtime.run_until(lambda: receiver.completed_at is not None,
                                 timeout=300.0)
    wire_bytes = runtime.network.stats.emissions.bytes - bytes_before
    session = a.files._sessions["cs.file"]
    return {
        "finished": finished,
        "correct": receiver.data == data,
        "completion_s": (receiver.completed_at or float("inf")) - start,
        "wire_bytes": wire_bytes,
        "rounds": session.round,
        "chunks_sent": session.chunks_sent,
    }


def run_experiment():
    rows = []
    results = {}
    for size in CHUNK_SIZES:
        result = run_one(size)
        results[size] = result
        overhead = result["wire_bytes"] / FILE_SIZE - 1.0
        rows.append(
            [
                size,
                f"{result['completion_s']:.2f}",
                result["chunks_sent"],
                result["rounds"],
                f"{overhead * 100:.1f}%",
                "yes" if result["finished"] and result["correct"] else "NO",
            ]
        )
    print_table(
        f"Chunk-size ablation: 256 KiB at {LOSS:.0%} loss",
        ["chunk B", "completion s", "chunks sent", "rounds", "wire overhead", "ok"],
        rows,
    )
    return results


def test_chunk_size(benchmark):
    results = run_benchmark(benchmark, run_experiment)
    for size, result in results.items():
        assert result["finished"] and result["correct"]
    # Tiny chunks pay much more header overhead than MTU-sized ones.
    assert results[128]["wire_bytes"] > results[1024]["wire_bytes"] * 1.2
    benchmark.extra_info["wire_bytes"] = {
        str(size): results[size]["wire_bytes"] for size in CHUNK_SIZES
    }


if __name__ == "__main__":
    run_experiment()
