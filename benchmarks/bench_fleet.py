"""Fleet scale — containers vs wall time under one sim clock.

The tentpole proof: a mission's wall-clock cost as the fleet grows, for
three configurations of the same control plane:

- ``flat-unopt``  — full-mesh announce/heartbeat on the reference network
  emission path (per-send dict chains, one kernel event per delivery).
  This is the pre-optimization baseline.
- ``flat``        — the same full-mesh control plane on the optimized
  network path (cached per-pair link/RNG resolution, arrival-batched
  deliveries, fire-and-forget timers).
- ``federated``   — zones of 20 (1 relay + 19 UAVs) with zone isolation:
  raw control traffic stays inside each zone, relays exchange zone
  summaries over the backbone. Per-container cost is bounded by zone
  size, so wall time grows near-linearly with the fleet.

Expected shape: flat-unopt and flat both grow quadratically (every
heartbeat reaches every container) with flat ahead by a constant factor;
federated grows linearly and completes the 1,000-container mission in
seconds. The headline number asserted in CI: federated at N=500 is
>= 10x faster than flat-unopt at N=500.
"""

import argparse
import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark, write_bench_json

from repro import SimRuntime
from repro.container.fleet import FleetConfig

#: Fleet-paced control intervals (the integration suite uses the same):
#: at hundreds of containers the default 0.25 s heartbeat would measure
#: nothing but its own arithmetic.
TIMING = dict(
    announce_interval=5.0,
    heartbeat_interval=1.0,
    liveness_timeout=4.0,
    housekeeping_interval=2.0,
)

ZONE_SIZE = 20  # 1 relay + 19 UAVs per zone
#: Bootstrap window excluded from event counts: announces spread in the
#: first instants, but the one-time first-sight propagation of zone
#: summaries (every relay forwarding every foreign zone once) takes a few
#: summary intervals to drain.
SETTLE = 3.0
MISSION = 2.0  # virtual seconds of steady-state control traffic

FULL_COUNTS = [10, 100, 500, 1000]
#: The reference path schedules one kernel event per delivery; N=1000 flat
#: is ~3M events for this mission and adds minutes for no extra signal.
UNOPT_COUNTS = [10, 100, 500]
SMOKE_COUNTS = [10, 50]


def build_flat(n, optimized, seed=5):
    runtime = SimRuntime(seed=seed, optimized_network=optimized)
    for i in range(n):
        runtime.add_container(f"c{i:04d}", **TIMING)
    return runtime


def build_federated(n, seed=5):
    runtime = SimRuntime(seed=seed, zone_isolation=True)
    remaining = n
    z = 0
    while remaining:
        zone = f"z{z}"
        size = min(ZONE_SIZE, remaining)
        runtime.add_container(
            f"relay-{zone}", fleet=FleetConfig(zone=zone, role="relay"), **TIMING
        )
        for i in range(size - 1):
            runtime.add_container(
                f"uav-{zone}-{i:02d}", fleet=FleetConfig(zone=zone), **TIMING
            )
        remaining -= size
        z += 1
    return runtime


def zones_converged(runtime):
    members = {}
    for cid, container in runtime.containers.items():
        members.setdefault(container.config.fleet.zone, []).append(cid)
    for ids in members.values():
        for a in ids:
            directory = runtime.containers[a].directory
            for b in ids:
                if a == b:
                    continue
                record = directory.record(b)
                if record is None or not record.alive:
                    return False
    return True


def run_mission(runtime, check_converged):
    """Wall time covers the whole mission (bootstrap + steady window, the
    same virtual span for every topology); the event count covers only the
    steady window, so scaling-shape checks aren't polluted by the one-off
    bootstrap transient (announce floods, summary churn while converging)."""
    start = time.perf_counter()
    runtime.start()
    runtime.run_for(SETTLE)
    settled_events = runtime.sim.events_executed
    runtime.run_for(MISSION)
    wall = time.perf_counter() - start
    converged = zones_converged(runtime) if check_converged else None
    return {
        "wall_s": wall,
        "events": runtime.sim.events_executed - settled_events,
        "converged": converged,
    }


def run_one(topology, n):
    # Collect leftovers of the previous fleet first: a prior 1000-container
    # runtime awaiting collection would otherwise bill its GC pauses to
    # this measurement.
    gc.collect()
    if topology == "federated":
        return run_mission(build_federated(n), check_converged=True)
    optimized = topology == "flat"
    return run_mission(build_flat(n, optimized=optimized), check_converged=False)


def run_experiment(counts=None, unopt_counts=None, verbose=True):
    counts = counts or FULL_COUNTS
    unopt_counts = unopt_counts if unopt_counts is not None else UNOPT_COUNTS
    # Federated measures first (leanest process state); the flat baselines
    # churn orders of magnitude more objects and run after.
    results = {"federated": {}, "flat-unopt": {}, "flat": {}}
    for topology in results:
        for n in counts:
            if topology == "flat-unopt" and n not in unopt_counts:
                continue
            results[topology][n] = run_one(topology, n)
    if verbose:
        rows = []
        for n in counts:
            unopt = results["flat-unopt"].get(n)
            flat = results["flat"][n]
            fed = results["federated"][n]
            rows.append(
                [
                    n,
                    f"{unopt['wall_s']:.2f}" if unopt else "—",
                    f"{flat['wall_s']:.2f}",
                    f"{fed['wall_s']:.2f}",
                    fed["events"],
                    "yes" if fed["converged"] else "NO",
                ]
            )
        print_table(
            "Fleet scaling: mission wall time (s) by topology",
            ["containers", "flat-unopt", "flat", "federated", "fed events", "fed converged"],
            rows,
        )
    return results


def speedup_at(results, n):
    """Federated vs unoptimized-flat wall time at one fleet size."""
    return results["flat-unopt"][n]["wall_s"] / results["federated"][n]["wall_s"]


def payload_from(results):
    payload = {
        "settle_s": SETTLE,
        "mission_s": MISSION,
        "zone_size": ZONE_SIZE,
        "timing": TIMING,
        "topologies": {
            topology: {
                str(n): {
                    "wall_s": round(r["wall_s"], 4),
                    "steady_events": r["events"],
                    **(
                        {"converged": r["converged"]}
                        if r["converged"] is not None
                        else {}
                    ),
                }
                for n, r in sorted(points.items())
            }
            for topology, points in results.items()
        },
    }
    if 500 in results["flat-unopt"] and 500 in results["federated"]:
        payload["speedup_federated_vs_unopt_at_500"] = round(
            speedup_at(results, 500), 1
        )
    return payload


def check_results(results, counts):
    largest = max(counts)
    for n, point in results["federated"].items():
        assert point["converged"], f"federated fleet at N={n} did not converge"
    if 500 in results["flat-unopt"]:
        assert speedup_at(results, 500) >= 10.0, (
            f"federated at N=500 is only {speedup_at(results, 500):.1f}x faster "
            "than unoptimized flat (acceptance floor is 10x)"
        )
    # Near-linear federated scaling: steady-state events per container stay
    # flat. Judged from the second-smallest size up — a one-zone fleet has no
    # backbone and sits below the asymptotic regime.
    shaped = sorted(counts)[1:]
    per = [results["federated"][n]["events"] / n for n in shaped]
    assert max(per) <= min(per) * 1.5, (
        f"federated steady events/container not flat across {shaped}: "
        f"{[round(p, 1) for p in per]}"
    )


def test_fleet_scaling(benchmark):
    results = run_benchmark(
        benchmark, lambda: run_experiment(verbose=False)
    )
    check_results(results, FULL_COUNTS)
    benchmark.extra_info["wall_s"] = {
        topology: {str(n): round(r["wall_s"], 3) for n, r in points.items()}
        for topology, points in results.items()
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced fleet sizes, no JSON (CI scale-smoke job)",
    )
    parser.add_argument("--no-json", action="store_true", help="skip BENCH_fleet.json")
    args = parser.parse_args()
    if args.smoke:
        results = run_experiment(counts=SMOKE_COUNTS, unopt_counts=SMOKE_COUNTS)
        check_results(results, SMOKE_COUNTS)
        print("\nsmoke OK: federated converged at every size")
        return
    results = run_experiment()
    check_results(results, FULL_COUNTS)
    print(
        f"\nfederated vs flat-unopt at N=500: {speedup_at(results, 500):.1f}x faster"
    )
    if not args.no_json:
        path = write_bench_json("fleet", payload_from(results))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
