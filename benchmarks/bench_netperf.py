"""Network data-plane throughput: raw sockets vs threaded vs async runtime.

Unlike the other benchmarks this one runs on the *wall clock* — it measures
the real I/O planes (UDP loopback sockets, syscalls, threads, event loop),
so virtual time cannot stand in. Three measurements:

- **raw ceiling** — two plain UDP sockets blasting timestamped 64-byte
  datagrams through loopback with no middleware at all. This is what the
  interpreter + kernel can do with one ``sendto``/``recvfrom`` pair per
  message; no protocol stack can beat it.
- **telemetry fanout** — one best-effort float variable fanned out to
  ``SUBSCRIBERS`` containers. The classic avionics firehose: many small
  samples, no acks.
- **reliable events** — the same fanout with the acked event primitive.

Both middleware workloads are driven closed-loop (bounded undelivered
backlog) so each plane runs at its *sustainable* rate — open-loop
overload just measures queue depth: best-effort latency tails explode and
the reliable plane degrades into retransmission pathology.

Each middleware workload runs on both wall-clock runtimes:

- ``threaded`` at its default data-plane configuration — one datagram per
  frame, one blocking ``sendto`` per destination, one ``recvfrom`` wakeup
  plus one cross-thread reactor post per delivery. This is the plane the
  async runtime replaces.
- ``async`` with the batched plane it was designed around — datagram
  batching plus coalesced ACKs, scatter/gather ``sendmsg`` on the egress
  side and burst ``recvmsg_into`` draining on ingress, everything on one
  event-loop serialization domain with zero cross-thread posts.

Events/sec counts *deliveries* (samples × subscribers reached); latency is
publisher ``perf_counter`` at publish to subscriber callback. Medians over
``--reps`` runs land in ``BENCH_netperf.json``. ``--smoke`` runs a small
configuration on both runtimes and asserts async ≥ threaded (the CI gate);
the full run is where the 3x claims are checked.
"""

import argparse
import socket
import struct
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, write_bench_json

from repro import AsyncRuntime, ThreadedRuntime
from repro.encoding.types import FLOAT64

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from helpers import ProbeService  # noqa: E402

SUBSCRIBERS = 6
FANOUT_SAMPLES = 40_000
FANOUT_BURST = 200
FANOUT_MAX_LAG = 1_800
RELIABLE_EVENTS = 6_000
RELIABLE_BURST = 200
RELIABLE_MAX_LAG = 1_200
RAW_DATAGRAMS = 50_000
SETTLE_SECONDS = 0.2

#: Both planes run the schema-compiled codec (byte-identical wire format,
#: property-tested against the interpreter) so the comparison isolates the
#: I/O plane rather than codec interpretation overhead.
#: The async plane's feature set — what the tentpole was built to enable.
ASYNC_PLANE = dict(
    codec="compiled",
    batching_enabled=True,
    ack_coalesce_delay=0.002,
    ack_coalesce_max_pending=64,
)
#: The classic plane: data-plane defaults (no batching, per-frame acks).
THREADED_PLANE: dict = {"codec": "compiled"}

FAST = dict(
    announce_interval=0.2,
    heartbeat_interval=0.5,
    liveness_timeout=5.0,
    housekeeping_interval=0.5,
)

_TS = struct.Struct("d")


def _stats(latencies):
    lat = sorted(latencies)
    return {
        "p50_ms": round(lat[len(lat) // 2] * 1e3, 3),
        "p99_ms": round(lat[min(len(lat) - 1, int(len(lat) * 0.99))] * 1e3, 3),
    }


# -- raw-socket ceiling --------------------------------------------------------


def raw_ceiling(n=RAW_DATAGRAMS):
    """Blast ``n`` timestamped datagrams through loopback, no middleware."""
    rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    rx.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4 << 20)
    rx.bind(("127.0.0.1", 0))
    rx.settimeout(0.5)
    tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    destination = rx.getsockname()
    payload_pad = b"x" * 56  # 8-byte timestamp + pad = 64-byte datagram
    received = []

    def drain():
        buf = bytearray(2048)
        while True:
            try:
                nbytes, _ = rx.recvfrom_into(buf)
            except socket.timeout:
                return
            received.append((time.perf_counter(), _TS.unpack_from(buf)[0]))

    drainer = threading.Thread(target=drain)
    drainer.start()
    t0 = time.perf_counter()
    send = tx.sendto
    pack = _TS.pack
    for _ in range(n):
        send(pack(time.perf_counter()) + payload_pad, destination)
    send_elapsed = time.perf_counter() - t0
    drainer.join()
    tx.close()
    rx.close()
    t_end = max(r for r, _ in received)
    return {
        "sent": n,
        "delivered": len(received),
        "send_rate_per_sec": round(n / send_elapsed),
        "events_per_sec": round(len(received) / (t_end - t0)),
        **_stats([r - s for r, s in received]),
    }


# -- middleware workloads ------------------------------------------------------


def _fanout_runtime(runtime_cls, plane):
    """A started 1-publisher / SUBSCRIBERS-subscriber runtime."""
    runtime = runtime_cls()
    pub = ProbeService("pub")
    runtime.add_container("pub", **FAST, **plane).install_service(pub)
    received = [[] for _ in range(SUBSCRIBERS)]
    probes = []
    for i in range(SUBSCRIBERS):
        probe = ProbeService(f"probe{i}")
        runtime.add_container(f"sub{i}", **FAST, **plane).install_service(probe)
        probes.append(probe)
    runtime.start()
    return runtime, pub, probes, received


def telemetry_fanout(runtime_cls, plane, samples=FANOUT_SAMPLES, burst=FANOUT_BURST):
    """Closed-loop best-effort variable fanout; returns delivered rate + tails."""
    runtime, pub, probes, received = _fanout_runtime(runtime_cls, plane)
    try:
        runtime.on_reactor(
            lambda: setattr(pub, "handle", pub.ctx.provide_variable("net.var", FLOAT64))
        )
        for i, probe in enumerate(probes):
            runtime.on_reactor(
                lambda s=probe, i=i: s.ctx.subscribe_variable(
                    "net.var",
                    on_sample=lambda v, t, i=i: received[i].append(
                        (time.perf_counter(), v)
                    ),
                )
            )
        assert runtime.run_until(
            lambda: all(
                runtime.container(f"sub{i}").directory.providers_of_variable("net.var")
                for i in range(SUBSCRIBERS)
            ),
            timeout=10.0,
        )
        time.sleep(SETTLE_SECONDS)
        t0 = time.perf_counter()
        sent = 0
        expected = 0  # deliveries still credited as in flight
        while sent < samples:
            # Pace on the undelivered backlog so each plane runs at its
            # sustainable rate. Best-effort samples may legitimately drop,
            # so a stalled backlog is written off instead of deadlocking.
            if not runtime.run_until(
                lambda: expected - sum(len(r) for r in received) < FANOUT_MAX_LAG,
                timeout=2.0,
            ):
                expected = sum(len(r) for r in received)
            n = min(burst, samples - sent)
            runtime.on_reactor(
                lambda n=n: [pub.handle.publish(time.perf_counter()) for _ in range(n)]
            )
            sent += n
            expected += n * SUBSCRIBERS
        previous = -1
        while True:  # quiesce: best-effort samples may drop under overload
            runtime.run_until(lambda: False, timeout=0.3)
            total = sum(len(r) for r in received)
            if total == previous:
                break
            previous = total
        deliveries = [entry for per_sub in received for entry in per_sub]
        t_end = max(r for r, _ in deliveries)
        return {
            "offered": samples * SUBSCRIBERS,
            "delivered": len(deliveries),
            "events_per_sec": round(len(deliveries) / (t_end - t0)),
            **_stats([r - s for r, s in deliveries]),
        }
    finally:
        runtime.stop()


def reliable_events(
    runtime_cls, plane, events=RELIABLE_EVENTS, burst=RELIABLE_BURST
):
    """Closed-loop acked event fanout; returns delivered rate + tails."""
    runtime, pub, probes, received = _fanout_runtime(runtime_cls, plane)
    try:
        runtime.on_reactor(
            lambda: setattr(pub, "handle", pub.ctx.provide_event("net.evt", FLOAT64))
        )
        for i, probe in enumerate(probes):
            runtime.on_reactor(
                lambda s=probe, i=i: s.ctx.subscribe_event(
                    "net.evt",
                    lambda v, t, i=i: received[i].append((time.perf_counter(), v)),
                )
            )
        assert runtime.run_until(
            lambda: len(pub.handle.subscribers) == SUBSCRIBERS, timeout=10.0
        )
        time.sleep(SETTLE_SECONDS)
        t0 = time.perf_counter()
        sent = 0
        while sent < events:
            assert runtime.run_until(
                lambda: sent * SUBSCRIBERS - sum(len(r) for r in received)
                < RELIABLE_MAX_LAG,
                timeout=10.0,
            )
            n = min(burst, events - sent)
            runtime.on_reactor(
                lambda n=n: [
                    pub.handle.raise_event(time.perf_counter()) for _ in range(n)
                ]
            )
            sent += n
        assert runtime.run_until(
            lambda: sum(len(r) for r in received) >= events * SUBSCRIBERS,
            timeout=60.0,
        )
        deliveries = [entry for per_sub in received for entry in per_sub]
        t_end = max(r for r, _ in deliveries)
        return {
            "offered": events * SUBSCRIBERS,
            "delivered": len(deliveries),
            "events_per_sec": round(len(deliveries) / (t_end - t0)),
            **_stats([r - s for r, s in deliveries]),
        }
    finally:
        runtime.stop()


# -- orchestration -------------------------------------------------------------

RUNTIMES = {
    "threaded": (ThreadedRuntime, THREADED_PLANE),
    "async": (AsyncRuntime, ASYNC_PLANE),
}


def _median(values):
    return sorted(values)[len(values) // 2]


def _median_by_rate(runs):
    return sorted(runs, key=lambda r: r["events_per_sec"])[len(runs) // 2]


def run_suite(reps, samples, events, raw_n):
    """Medians over ``reps`` repetitions.

    Each rep measures the ceiling and all four workload×runtime cells
    back-to-back, and the comparative ratios (async/threaded, async/ceiling)
    are computed *within* a rep before taking the median: shared-host noise
    is strongly time-correlated, so paired measurements give a far more
    stable ratio than dividing two independently-taken medians.
    """
    workloads = (
        ("telemetry_fanout", telemetry_fanout, samples),
        ("reliable_events", reliable_events, events),
    )
    rep_data = []
    for _ in range(reps):
        rep = {"raw_ceiling": raw_ceiling(raw_n)}
        for workload, fn, size in workloads:
            rep[workload] = {
                name: fn(cls, plane, size) for name, (cls, plane) in RUNTIMES.items()
            }
        rep_data.append(rep)

    results = {"raw_ceiling": _median_by_rate([r["raw_ceiling"] for r in rep_data])}
    for workload, _, _ in workloads:
        results[workload] = {
            name: _median_by_rate([r[workload][name] for r in rep_data])
            for name in RUNTIMES
        }
        results[workload]["async_vs_threaded"] = round(
            _median(
                [
                    r[workload]["async"]["events_per_sec"]
                    / r[workload]["threaded"]["events_per_sec"]
                    for r in rep_data
                ]
            ),
            2,
        )
    results["telemetry_fanout"]["ceiling_fraction"] = round(
        _median(
            [
                r["telemetry_fanout"]["async"]["events_per_sec"]
                / r["raw_ceiling"]["events_per_sec"]
                for r in rep_data
            ]
        ),
        3,
    )
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run asserting async >= threaded; writes no JSON",
    )
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--no-json", action="store_true")
    args = parser.parse_args(argv)

    if args.smoke:
        reps, samples, events, raw_n = 1, 2_000, 1_000, 10_000
    else:
        reps, samples, events, raw_n = args.reps, FANOUT_SAMPLES, RELIABLE_EVENTS, RAW_DATAGRAMS

    results = run_suite(reps, samples, events, raw_n)

    rows = [
        [
            "raw ceiling",
            results["raw_ceiling"]["events_per_sec"],
            results["raw_ceiling"]["p50_ms"],
            results["raw_ceiling"]["p99_ms"],
            "-",
        ]
    ]
    for workload in ("telemetry_fanout", "reliable_events"):
        for name in RUNTIMES:
            r = results[workload][name]
            rows.append(
                [
                    f"{workload}/{name}",
                    r["events_per_sec"],
                    r["p50_ms"],
                    r["p99_ms"],
                    f'{results[workload]["async_vs_threaded"]}x'
                    if name == "async"
                    else "-",
                ]
            )
    print_table(
        "netperf: events/sec and latency tails",
        ["configuration", "events/sec", "p50 ms", "p99 ms", "async/threaded"],
        rows,
    )

    if args.smoke:
        for workload in ("telemetry_fanout", "reliable_events"):
            threaded_rate = results[workload]["threaded"]["events_per_sec"]
            async_rate = results[workload]["async"]["events_per_sec"]
            assert async_rate >= threaded_rate, (
                f"{workload}: async plane ({async_rate}/s) slower than the "
                f"threaded plane it replaces ({threaded_rate}/s)"
            )
        print("\nsmoke OK: async >= threaded on both workloads")
        return results

    if not args.no_json:
        results["meta"] = {
            "subscribers": SUBSCRIBERS,
            "reps": reps,
            "fanout_samples": samples,
            "reliable_events": events,
            "raw_datagrams": raw_n,
            "async_plane": ASYNC_PLANE,
        }
        path = write_bench_json("netperf", results)
        print(f"\nwrote {path}")
    return results


if __name__ == "__main__":
    main()
