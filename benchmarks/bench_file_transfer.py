"""Experiment E4 — §4.4: the MFTP-style file primitive's "huge performance
benefits".

Three sub-experiments on a 1 MiB image (1 KiB chunks):

  (a) receiver sweep — multicast transfer phase vs per-subscriber unicast
      (``file_multicast=False``): publisher chunk emissions and completion
      time as N grows;
  (b) loss sweep — completion under packet loss, showing the NACK-driven
      rounds only resend what's missing;
  (c) same-node bypass — network transfer vs the container's direct-access
      bypass.

Expected shape: (a) multicast flat in N, unicast linear; (b) overhead grows
gently with loss, never full retransmits; (c) bypass sends zero chunks.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark

from repro import Service, SimRuntime
from repro.simnet.models import LinkModel
from repro.util.rng import SeededRng

FILE_SIZE = 1 << 20  # 1 MiB
CHUNK_SIZE = 1024
TOTAL_CHUNKS = FILE_SIZE // CHUNK_SIZE
RECEIVER_COUNTS = [1, 2, 4, 8, 16]
LOSS_RATES = [0.0, 0.01, 0.05, 0.10]


class Receiver(Service):
    def __init__(self, name):
        super().__init__(name)
        self.completed_at = None
        self.data = None

    def on_start(self):
        self.ctx.subscribe_file("bench.image", on_complete=self._done)

    def _done(self, data, revision):
        self.completed_at = self.ctx.now()
        self.data = data


def run_one(receivers: int, multicast: bool = True, loss: float = 0.0, seed: int = 9):
    link = LinkModel(
        latency=0.0005, jitter=0.0001, loss=loss, bandwidth_bps=100_000_000.0
    )
    runtime = SimRuntime(seed=seed, default_link=link)
    pub_container = runtime.add_container(
        "pub-node", file_multicast=multicast, file_chunk_size=CHUNK_SIZE,
        liveness_timeout=5.0,
    )

    class Publisher(Service):
        def __init__(self):
            super().__init__("pub")

        def on_start(self):
            pass

    publisher = Publisher()
    pub_container.install_service(publisher)
    receiver_services = []
    for i in range(receivers):
        container = runtime.add_container(
            f"rx-{i}", file_multicast=multicast, file_chunk_size=CHUNK_SIZE,
            liveness_timeout=5.0,
        )
        service = Receiver(f"receiver-{i}")
        container.install_service(service)
        receiver_services.append(service)
    runtime.start()
    runtime.run_for(3.0)

    data = SeededRng(seed).bytes(FILE_SIZE // 256) * 256  # 1 MiB, cheap to build
    emissions_before = runtime.network.stats.emissions_by_node["pub-node"].packets
    start = runtime.sim.now()
    pub_container.files.publish("bench.image", data, service="pub")
    finished = runtime.run_until(
        lambda: all(r.completed_at is not None for r in receiver_services),
        timeout=600.0,
    )
    session = pub_container.files._sessions.get("bench.image")
    emissions = (
        runtime.network.stats.emissions_by_node["pub-node"].packets - emissions_before
    )
    completion = max(
        (r.completed_at or float("inf")) for r in receiver_services
    ) - start
    correct = all(r.data == data for r in receiver_services if r.data is not None)
    return {
        "finished": finished,
        "correct": correct,
        "chunks_sent": session.chunks_sent if session else 0,
        "rounds": session.round if session else 0,
        "emissions": emissions,
        "completion_s": completion,
    }


def run_experiment():
    fanout_rows = []
    fanout = {}
    for n in RECEIVER_COUNTS:
        mcast = run_one(n, multicast=True)
        ucast = run_one(n, multicast=False)
        fanout[n] = (mcast, ucast)
        fanout_rows.append(
            [
                n,
                mcast["chunks_sent"],
                ucast["chunks_sent"],
                f"{ucast['chunks_sent'] / max(mcast['chunks_sent'], 1):.1f}x",
                f"{mcast['completion_s']:.2f}",
                f"{ucast['completion_s']:.2f}",
            ]
        )
    print_table(
        "E4a: 1 MiB to N receivers — multicast vs unicast transfer phase",
        ["receivers", "mcast chunks", "ucast chunks", "ratio", "mcast s", "ucast s"],
        fanout_rows,
    )

    loss_rows = []
    losses = {}
    for loss in LOSS_RATES:
        result = run_one(4, multicast=True, loss=loss)
        losses[loss] = result
        overhead = result["chunks_sent"] / TOTAL_CHUNKS - 1.0
        loss_rows.append(
            [
                f"{loss * 100:.0f}%",
                result["chunks_sent"],
                result["rounds"],
                f"{overhead * 100:.1f}%",
                f"{result['completion_s']:.2f}",
                "yes" if result["finished"] and result["correct"] else "NO",
            ]
        )
    print_table(
        "E4b: 1 MiB to 4 receivers under loss (NACK-driven recovery)",
        ["loss", "chunks sent", "rounds", "overhead", "completion s", "complete+correct"],
        loss_rows,
    )

    # E4c: bypass.
    runtime = SimRuntime(seed=4)
    node = runtime.add_container("solo")

    class Both(Service):
        def __init__(self):
            super().__init__("both")
            self.completed_at = None

        def on_start(self):
            self.ctx.subscribe_file(
                "bench.image", on_complete=lambda d, r: setattr(
                    self, "completed_at", self.ctx.now()
                )
            )

    both = Both()
    node.install_service(both)
    runtime.start()
    runtime.run_for(1.0)
    data = SeededRng(1).bytes(4096) * 256
    start = runtime.sim.now()
    node.files.publish("bench.image", data, service="pub")
    runtime.run_for(1.0)
    bypass_time = (both.completed_at or float("inf")) - start
    network_time = fanout[1][0]["completion_s"]
    print_table(
        "E4c: same-node bypass vs 1-receiver network transfer",
        ["path", "completion s", "chunks on wire"],
        [
            ["network (1 rx)", f"{network_time:.3f}", fanout[1][0]["chunks_sent"]],
            ["bypass (same node)", f"{bypass_time:.6f}", 0],
        ],
    )
    return fanout, losses, bypass_time, network_time


def test_file_transfer(benchmark):
    fanout, losses, bypass_time, network_time = run_benchmark(benchmark, run_experiment)
    # (a) multicast chunk count flat in N; unicast linear.
    mcast_chunks = [fanout[n][0]["chunks_sent"] for n in RECEIVER_COUNTS]
    ucast_chunks = [fanout[n][1]["chunks_sent"] for n in RECEIVER_COUNTS]
    assert max(mcast_chunks) <= min(mcast_chunks) * 1.2
    assert ucast_chunks[-1] >= mcast_chunks[-1] * 10
    # Every configuration completed correctly.
    for n in RECEIVER_COUNTS:
        assert fanout[n][0]["finished"] and fanout[n][0]["correct"]
        assert fanout[n][1]["finished"] and fanout[n][1]["correct"]
    # (b) loss recovered with bounded overhead (selective retransmission).
    for loss, result in losses.items():
        assert result["finished"] and result["correct"]
        assert result["chunks_sent"] < TOTAL_CHUNKS * 2  # never a full resend storm
    # (c) bypass is orders of magnitude faster and sends nothing.
    assert bypass_time < network_time / 50
    benchmark.extra_info["multicast_chunks"] = dict(zip(map(str, RECEIVER_COUNTS), mcast_chunks))
    benchmark.extra_info["unicast_chunks"] = dict(zip(map(str, RECEIVER_COUNTS), ucast_chunks))


if __name__ == "__main__":
    run_experiment()
