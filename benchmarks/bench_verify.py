"""Runtime-verification overhead — armed monitors on the fleet mission.

The tentpole claim of the verification subsystem: compiled monitor
automata are cheap enough to fly armed. Three configurations of the same
federated fleet mission (zones of 20, the bench_fleet timing):

- ``off``       — verification never enabled. Probe emit sites still
  exist on the data path, so this column prices the dormant guard: one
  attribute read per site.
- ``armed``     — the standard middleware contracts plus a mission-level
  photo-pipeline response spec, observing every probe fleet-wide. The
  steady state of a healthy mission: events routed, automata stepped,
  zero violations.
- ``violating`` — the armed set plus a deliberately red-hot spec that
  flags every variable publish, pricing the violation path itself
  (Violation construction, flight-recorder and metrics fan-out).

Wall times are min-of-reps (the scheduler-noise floor); the acceptance
gate asserts armed overhead at the largest fleet stays under 5%.
"""

import argparse
import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark, write_bench_json

from repro import SimRuntime
from repro.container.fleet import FleetConfig
from repro.encoding.types import FLOAT64, STRING, StructType
from repro.services import Service
from repro.verify.library import mission_response, standard_specs
from repro.verify.spec import Spec, event, never

TIMING = dict(
    announce_interval=5.0,
    heartbeat_interval=1.0,
    liveness_timeout=4.0,
    housekeeping_interval=2.0,
)

ZONE_SIZE = 20  # 1 relay + 19 UAVs per zone
SETTLE = 3.0
MISSION = 2.0  # virtual seconds of steady-state traffic
TRAFFIC_START = 2.0  # publishers wait for in-zone discovery

FULL_COUNTS = [100, 500]
# Smoke keeps the full run's smaller fleet: at N=50 the sub-second walls
# are pure scheduler noise and even min-of-reps flakes.
SMOKE_COUNTS = [100]
FULL_REPS = 5
SMOKE_REPS = 3

SCHEMA = StructType("Telemetry", [("x", FLOAT64)])

MODES = ("off", "armed", "violating")


class _Producer(Service):
    """Telemetry variable + photo events, gated until discovery settles."""

    def on_start(self):
        self.telemetry = self.ctx.provide_variable(
            "bench.telemetry", SCHEMA, validity=2.0, period=0.5
        )
        self.photos = self.ctx.provide_event("bench.photo", STRING)
        self.ctx.every(0.5, self._tick)

    def _tick(self):
        if self.ctx.now() < TRAFFIC_START:
            return
        self.telemetry.publish({"x": self.ctx.now()})
        self.photos.raise_event("photo")


class _Consumer(Service):
    """Polls the served-from-cache read path the validity spec watches."""

    def on_start(self):
        self.sub = self.ctx.subscribe_variable(
            "bench.telemetry", on_sample=lambda v, t: None
        )
        self.ctx.subscribe_event("bench.photo", lambda v, t: None)
        self.ctx.every(0.25, lambda: self.sub.latest())


def build_federated(n, seed=5):
    runtime = SimRuntime(seed=seed, zone_isolation=True)
    remaining = n
    z = 0
    while remaining:
        zone = f"z{z}"
        size = min(ZONE_SIZE, remaining)
        runtime.add_container(
            f"relay-{zone}", fleet=FleetConfig(zone=zone, role="relay"), **TIMING
        )
        for i in range(size - 1):
            runtime.add_container(
                f"uav-{zone}-{i:02d}", fleet=FleetConfig(zone=zone), **TIMING
            )
        # One producer/consumer pair per zone keeps every probe site hot
        # without turning the benchmark into a data-plane stress test.
        if size >= 3:
            runtime.container(f"uav-{zone}-00").install_service(
                _Producer(f"producer-{zone}")
            )
            runtime.container(f"uav-{zone}-01").install_service(
                _Consumer(f"consumer-{zone}")
            )
        remaining -= size
        z += 1
    return runtime


def specs_for(mode):
    if mode == "off":
        return None
    specs = standard_specs() + [
        mission_response(
            "photo-pipeline",
            "event.publish", "bench.photo",
            "event.deliver", "bench.photo",
            within=5.0,
            owner="bench",
        )
    ]
    if mode == "violating":
        specs.append(
            Spec(
                name="bench-red-hot",
                owner="bench",
                formula=never(event("var.publish")),
                severity="warning",
                description="fires on every publish: prices the violation path",
            )
        )
    return specs


def run_mode(n, mode, seed=5):
    gc.collect()
    runtime = build_federated(n, seed=seed)
    specs = specs_for(mode)
    monitor = (
        runtime.enable_verification(specs) if specs is not None else None
    )
    start = time.perf_counter()
    runtime.start()
    runtime.run_for(SETTLE)
    settled_events = runtime.sim.events_executed
    runtime.run_for(MISSION)
    wall = time.perf_counter() - start
    result = {
        "wall_s": wall,
        "events": runtime.sim.events_executed - settled_events,
        "observed": monitor.engine.events_observed if monitor else 0,
        "violations": len(monitor.violations) if monitor else 0,
    }
    if mode == "armed":
        unexpected = [
            v for v in monitor.violations if v.severity == "error"
        ]
        assert not unexpected, f"armed bench must run clean: {unexpected[:3]}"
    if mode == "violating":
        assert result["violations"] > 0, "red-hot spec never fired"
    return result


def run_experiment(counts=None, reps=FULL_REPS, verbose=True):
    counts = counts or FULL_COUNTS
    results = {mode: {} for mode in MODES}
    # Warmup: the first simulation pays import and spec-compilation costs
    # that would otherwise be billed to whichever mode runs first.
    run_mode(10, "violating")
    for n in counts:
        # Reps interleave the modes round-robin so a noisy stretch of the
        # host machine penalizes every column, not whichever mode happened
        # to be running; min-of-reps then converges on the true floor.
        best = {mode: None for mode in MODES}
        for _ in range(reps):
            for mode in MODES:
                point = run_mode(n, mode)
                if best[mode] is None or point["wall_s"] < best[mode]["wall_s"]:
                    best[mode] = point
        for mode in MODES:
            results[mode][n] = best[mode]
    if verbose:
        rows = []
        for n in counts:
            off = results["off"][n]
            armed = results["armed"][n]
            red = results["violating"][n]
            rows.append(
                [
                    n,
                    f"{off['wall_s']:.3f}",
                    f"{armed['wall_s']:.3f}",
                    f"{overhead_pct(results, n):+.1f}%",
                    f"{red['wall_s']:.3f}",
                    armed["observed"],
                    red["violations"],
                ]
            )
        print_table(
            "Verification overhead: mission wall time (s), min of reps",
            ["containers", "off", "armed", "overhead", "violating",
             "events observed", "red violations"],
            rows,
        )
    return results


def overhead_pct(results, n):
    off = results["off"][n]["wall_s"]
    armed = results["armed"][n]["wall_s"]
    return (armed / off - 1.0) * 100.0


def payload_from(results):
    return {
        "settle_s": SETTLE,
        "mission_s": MISSION,
        "zone_size": ZONE_SIZE,
        "timing": TIMING,
        "modes": {
            mode: {
                str(n): {
                    "wall_s": round(r["wall_s"], 4),
                    "steady_events": r["events"],
                    "events_observed": r["observed"],
                    "violations": r["violations"],
                }
                for n, r in sorted(points.items())
            }
            for mode, points in results.items()
        },
        "armed_overhead_pct": {
            str(n): round(overhead_pct(results, n), 2)
            for n in sorted(results["off"])
        },
    }


def check_results(results, counts, overhead_ceiling=5.0):
    largest = max(counts)
    overhead = overhead_pct(results, largest)
    assert overhead < overhead_ceiling, (
        f"armed verification costs {overhead:.1f}% at N={largest} "
        f"(ceiling {overhead_ceiling:.0f}%)"
    )
    for n in counts:
        assert results["armed"][n]["observed"] > 0, (
            f"armed monitors observed nothing at N={n}"
        )
        assert results["violating"][n]["violations"] > 0


def test_verify_overhead(benchmark):
    results = run_benchmark(
        benchmark, lambda: run_experiment(verbose=False)
    )
    check_results(results, FULL_COUNTS)
    benchmark.extra_info["armed_overhead_pct"] = {
        str(n): round(overhead_pct(results, n), 2) for n in FULL_COUNTS
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced fleet size and reps, generous noise ceiling, no JSON "
        "(CI verify-smoke job)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip BENCH_verify.json"
    )
    args = parser.parse_args()
    if args.smoke:
        results = run_experiment(counts=SMOKE_COUNTS, reps=SMOKE_REPS)
        # Small fleets have sub-second walls where scheduler noise swamps
        # the signal; the smoke ceiling is correspondingly loose. The
        # full run gates the real 5% ceiling at N=500.
        check_results(results, SMOKE_COUNTS, overhead_ceiling=25.0)
        print("\nsmoke OK: armed clean, red-hot spec fired, overhead "
              f"{overhead_pct(results, SMOKE_COUNTS[-1]):+.1f}%")
        return
    results = run_experiment()
    check_results(results, FULL_COUNTS)
    print(f"\narmed overhead at N={FULL_COUNTS[-1]}: "
          f"{overhead_pct(results, FULL_COUNTS[-1]):+.1f}%")
    if not args.no_json:
        path = write_bench_json("verify", payload_from(results))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
