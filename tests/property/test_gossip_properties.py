"""Property tests for the fleet-scale control plane.

Three contracts, each driven by hypothesis:

1. **Convergence** — from arbitrary announce/heartbeat/bye interleavings
   (containers stopping at arbitrary drawn instants), gossip drives every
   live directory to the same record set, deterministically per seed.
2. **Strict liveness reads** — a strict directory never serves a record
   whose last heartbeat is older than the liveness timeout, no matter the
   input sequence (the L1 cache must not change that).
3. **Differential trace identity** — with fleet mechanisms disabled (the
   default), missions are packet-trace-identical whether the network runs
   its optimized or reference emission path, and whether the fleet config
   is defaulted or passed explicitly disabled.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container.directory import Directory
from repro.container.fleet import FleetConfig
from repro.container.gossip import (
    decode_gossip,
    decode_zone_summary,
    encode_gossip,
    encode_zone_summary,
)
from repro.runtime.simruntime import SimRuntime
from repro.util import ManualClock
from repro.util.ids import reset_uid_counter

# -- wire schema roundtrips ---------------------------------------------------

_rumors = st.lists(
    st.fixed_dictionaries(
        {
            "kind": st.sampled_from([1, 2, 3]),
            "origin": st.text(
                alphabet="abcdefghij-0123456789", min_size=1, max_size=12
            ),
            "version": st.integers(1, 2**32 - 1),
            "payload": st.binary(max_size=64),
        }
    ),
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(rumors=_rumors)
def test_gossip_payload_roundtrip(rumors):
    doc = {"rumors": rumors}
    assert decode_gossip(encode_gossip(doc)) == doc


_members = st.lists(
    st.fixed_dictionaries(
        {
            "container": st.text(alphabet="abcdef-", min_size=1, max_size=10),
            "node": st.text(alphabet="abcdef-", min_size=1, max_size=10),
            "port": st.integers(0, 65535),
            "incarnation": st.integers(0, 2**32 - 1),
            "alive": st.sampled_from([0, 1]),
        }
    ),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(
    zone=st.text(alphabet="abc", min_size=1, max_size=6),
    origin=st.text(alphabet="abc-", min_size=1, max_size=8),
    version=st.integers(1, 2**32 - 1),
    members=_members,
)
def test_zone_summary_roundtrip(zone, origin, version, members):
    doc = {"zone": zone, "origin": origin, "version": version, "members": members}
    assert decode_zone_summary(encode_zone_summary(doc)) == doc


# -- convergence --------------------------------------------------------------

_N = 5
_IDS = [f"g{i}" for i in range(_N)]


def _run_gossip_fleet(seed, stops):
    """A small gossip fleet; ``stops`` maps container index -> stop time.
    Returns (directory views of live containers, metrics snapshot)."""
    reset_uid_counter()
    runtime = SimRuntime(seed=seed)
    fleet = FleetConfig(gossip_enabled=True, gossip_fanout=2)
    for cid in _IDS:
        runtime.add_container(cid, fleet=fleet)
    runtime.start()
    events = sorted(stops.items(), key=lambda kv: kv[1])
    now = 0.0
    for index, at in events:
        runtime.run_for(at - now)
        now = at
        runtime.containers[_IDS[index]].stop()
    # Long enough after the last bye for rumors to spread and liveness
    # timeouts (1s) to expire for anything silenced.
    runtime.run_for(6.0 - now)
    alive = [cid for cid in _IDS if runtime.containers[cid].running]
    views = {}
    for cid in alive:
        directory = runtime.containers[cid].directory
        views[cid] = {
            (r.container, r.incarnation, r.alive)
            for r in directory.all_records()
        }
    return alive, views, runtime.metrics_snapshot()


_stops = st.dictionaries(
    keys=st.integers(0, _N - 1),
    values=st.floats(1.0, 3.0),
    max_size=2,
)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), stops=_stops)
def test_gossip_converges_live_directories(seed, stops):
    alive, views, _ = _run_gossip_fleet(seed, stops)
    alive_set = set(alive)
    for observer, view in views.items():
        seen_alive = {c for (c, _inc, is_alive) in view if is_alive}
        # Every live peer is seen alive; nothing dead is seen alive.
        assert seen_alive == alive_set - {observer}, (
            f"{observer} sees {sorted(seen_alive)}, "
            f"fleet live set is {sorted(alive_set)}"
        )
    # All views agree on every third container (same record set modulo the
    # observer's self-exclusion).
    for a in views:
        for b in views:
            third_a = {t for t in views[a] if t[0] not in (a, b)}
            third_b = {t for t in views[b] if t[0] not in (a, b)}
            assert third_a == third_b


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000), stops=_stops)
def test_gossip_fleet_is_deterministic_per_seed(seed, stops):
    first = _run_gossip_fleet(seed, stops)
    second = _run_gossip_fleet(seed, stops)
    assert first == second


# -- strict liveness reads ----------------------------------------------------

_strict_ops = st.lists(
    st.tuples(
        st.sampled_from(["announce", "heartbeat", "bye", "advance", "sweep"]),
        st.sampled_from(["c1", "c2", "c3"]),
        st.floats(0.0, 0.9),
    ),
    max_size=50,
)


@settings(max_examples=100, deadline=None)
@given(ops=_strict_ops)
def test_strict_reads_never_serve_stale_records(ops):
    clock = ManualClock()
    directory = Directory(
        clock,
        local_container="local",
        liveness_timeout=1.0,
        strict_liveness_reads=True,
    )
    for op, container, dt in ops:
        if op == "announce":
            directory.handle_announce(
                {
                    "container": container,
                    "node": container,
                    "port": 47000,
                    "incarnation": 1,
                    "services": [],
                    "failed_services": [],
                    "variables": [
                        {
                            "name": "v",
                            "datatype": "float64",
                            "validity": 0.0,
                            "period": 0.1,
                        }
                    ],
                    "events": [],
                    "functions": [],
                    "files": [],
                }
            )
        elif op == "heartbeat":
            directory.handle_heartbeat(
                {
                    "container": container,
                    "node": container,
                    "port": 47000,
                    "incarnation": 1,
                    "load": 0,
                    "restarts": 0,
                }
            )
        elif op == "bye":
            directory.handle_bye(container)
        elif op == "advance":
            clock.advance(dt)
        else:
            directory.check_liveness()
        now = clock.now()
        for record in directory.live_containers():
            assert now - record.last_seen <= 1.0
        for record in directory.providers_of_variable("v"):
            assert now - record.last_seen <= 1.0
        for cid in ("c1", "c2", "c3"):
            address = directory.address_of(cid)
            if address is not None:
                record = directory.record(cid)
                assert record is not None
                assert now - record.last_seen <= 1.0


# -- differential: fleet off == seed ------------------------------------------


def _trace_mission(optimized, explicit_fleet):
    reset_uid_counter()
    runtime = SimRuntime(seed=77, optimized_network=optimized)
    trace = runtime.network.enable_trace()
    for i in range(4):
        if explicit_fleet:
            runtime.add_container(f"m{i}", fleet=FleetConfig())
        else:
            runtime.add_container(f"m{i}")
    runtime.start()
    runtime.run_for(2.0)
    runtime.containers["m3"].stop()
    runtime.run_for(1.0)
    return [
        (str(p.source), str(p.destination), p.payload, p.sent_at, p.delivered_at)
        for p in trace
    ]


@settings(max_examples=4, deadline=None)
@given(
    optimized=st.booleans(),
    explicit_fleet=st.booleans(),
)
def test_disabled_fleet_is_packet_trace_identical_to_seed(
    optimized, explicit_fleet
):
    baseline = _trace_mission(optimized=True, explicit_fleet=False)
    assert _trace_mission(optimized, explicit_fleet) == baseline
