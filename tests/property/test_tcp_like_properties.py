"""Property tests of the TCP-behaviour baseline stream.

The E5 comparison is only honest if the baseline actually behaves like a
reliable in-order stream: for *any* finite pattern of segment and ack
loss (handshake included), go-back-N plus cumulative acks must eventually
deliver every message exactly once, in order. The suite drives the
deterministic ``ManualClock`` state machines directly — no sockets — so a
failing loss pattern shrinks to a minimal counterexample.

Kinds exercised: ``MessageKind.STREAM_SYN``, ``MessageKind.STREAM_SYNACK``,
``MessageKind.STREAM_SEGMENT`` and ``MessageKind.STREAM_ACK``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import TcpLikeReceiver, TcpLikeSender
from repro.protocol.frames import MessageKind
from repro.util import ManualClock

STREAM_KINDS = {
    MessageKind.STREAM_SYN,
    MessageKind.STREAM_SYNACK,
    MessageKind.STREAM_SEGMENT,
    MessageKind.STREAM_ACK,
}


class LossyStream:
    """Sender and receiver joined by links that drop per a finite plan;
    once a plan is exhausted the link is lossless, so delivery must
    converge."""

    def __init__(self, data_plan, ack_plan, rto=0.2):
        self.clock = ManualClock()
        self.delivered = []
        self.kinds_seen = set()
        self._data_plan = iter(data_plan)
        self._ack_plan = iter(ack_plan)
        self.receiver = TcpLikeReceiver(
            source="rx",
            channel=3,
            emit=self._to_sender,
            deliver=self.delivered.append,
        )
        self.sender = TcpLikeSender(
            clock=self.clock, source="tx", channel=3, emit=self._to_receiver, rto=rto
        )

    def _to_receiver(self, frame):
        self.kinds_seen.add(frame.kind)
        if next(self._data_plan, True):
            self.receiver.on_frame(frame)

    def _to_sender(self, frame):
        self.kinds_seen.add(frame.kind)
        if next(self._ack_plan, True):
            self.sender.on_frame(frame)

    def run_until_idle(self, max_ticks=400):
        for _ in range(max_ticks):
            if self.sender.idle:
                return
            self.clock.advance(0.25)
            self.sender.poll()
        raise AssertionError("stream did not converge after the loss plan ended")


@settings(max_examples=60, deadline=None)
@given(
    messages=st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=12),
    data_plan=st.lists(st.booleans(), max_size=60),
    ack_plan=st.lists(st.booleans(), max_size=60),
)
def test_stream_delivers_everything_in_order_under_any_loss(
    messages, data_plan, ack_plan
):
    stream = LossyStream(data_plan, ack_plan)
    for message in messages:
        stream.sender.send(message)
    stream.run_until_idle()
    assert stream.delivered == messages
    assert stream.kinds_seen <= STREAM_KINDS


@settings(max_examples=30, deadline=None)
@given(messages=st.lists(st.binary(max_size=8), min_size=1, max_size=8))
def test_lossless_stream_never_retransmits(messages):
    stream = LossyStream([], [])
    for message in messages:
        stream.sender.send(message)
    stream.run_until_idle()
    assert stream.delivered == messages
    assert stream.sender.retransmitted_segments == 0
    assert stream.sender.handshake_frames == 1
