"""Property tests: the directory under arbitrary control-message sequences,
and decoder robustness against arbitrary bytes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container.directory import Directory
from repro.protocol.frames import Frame
from repro.util import ManualClock
from repro.util.errors import EncodingError, ProtocolError

_containers = st.sampled_from(["c1", "c2", "c3"])


def _announce(container, incarnation):
    return {
        "container": container,
        "node": container,
        "port": 47000,
        "incarnation": incarnation,
        "services": [],
        "variables": [],
        "events": [],
        "functions": [],
        "files": [],
    }


def _heartbeat(container, incarnation):
    return {
        "container": container,
        "node": container,
        "port": 47000,
        "incarnation": incarnation,
        "load": 0,
    }


_ops = st.lists(
    st.tuples(
        st.sampled_from(["announce", "heartbeat", "bye", "advance", "sweep"]),
        _containers,
        st.integers(1, 3),  # incarnation
        st.floats(0.0, 0.8),  # time advance
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=_ops)
def test_directory_invariants_hold_under_any_sequence(ops):
    clock = ManualClock()
    directory = Directory(clock, local_container="local", liveness_timeout=1.0)
    ups, downs = [], []
    directory.on_container_up(lambda r: ups.append(r.container))
    directory.on_container_down(lambda r: downs.append(r.container))

    for op, container, incarnation, dt in ops:
        if op == "announce":
            directory.handle_announce(_announce(container, incarnation))
        elif op == "heartbeat":
            directory.handle_heartbeat(_heartbeat(container, incarnation))
        elif op == "bye":
            directory.handle_bye(container)
        elif op == "advance":
            clock.advance(dt)
        else:
            directory.check_liveness()
    directory.check_liveness()

    # Invariant 1: a live record was seen within the liveness timeout.
    for record in directory.live_containers():
        assert clock.now() - record.last_seen <= 1.0 + 1e-9
    # Invariant 2: a container can only go down after coming up, so per
    # container the down count never exceeds the up count.
    for name in ["c1", "c2", "c3"]:
        assert downs.count(name) <= ups.count(name)
        # And a record marked dead stays invisible to provider queries.
        record = directory.record(name)
        if record is not None and not record.alive:
            assert directory.address_of(name) is None
    # Invariant 3: the local container never appears.
    assert directory.record("local") is None
    assert "local" not in ups


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=300))
def test_frame_decode_never_crashes_unexpectedly(data):
    try:
        frame = Frame.decode(data)
    except ProtocolError:
        return  # the only acceptable failure mode
    # Anything that decodes must re-encode losslessly.
    assert Frame.decode(frame.encode()).payload == frame.payload


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=200))
def test_announce_decode_never_crashes_unexpectedly(data):
    from repro.container.records import decode_announce

    try:
        decode_announce(data)
    except EncodingError:
        pass  # malformed control payloads must fail cleanly


@settings(max_examples=150, deadline=None)
@given(data=st.binary(max_size=120))
def test_ack_decode_never_crashes_unexpectedly(data):
    from repro.protocol.reliability import decode_ack

    try:
        decode_ack(data)
    except ProtocolError:
        pass
