"""Property and fuzz suite for the BATCH codec and the frame batcher.

Pins the invariants the data-plane batching stage is built on:

- batch/unbatch roundtrip is identity for arbitrary frame sequences;
- the batcher preserves per-(destination, band) order;
- no assembled batch datagram ever exceeds the MTU budget;
- single-frame flushes are byte-identical to the unbatched wire format,
  and with batching disabled the egress stage does not touch frames at
  all — the seed parity guarantee;
- the decoder rejects every malformation with a clean ``EncodingError``
  (mirroring the rejection-parity style of
  ``test_compiled_codec_properties.py``), never another exception and
  never a silent partial result.
"""

import pytest
from hypothesis import given, strategies as st

from repro.protocol.batching import (
    FrameBatcher,
    decode_batch_payload,
    encode_batch_payload,
    make_batch_frame,
)
from repro.protocol.frames import Frame, MessageKind
from repro.sim import Simulator
from repro.util.errors import EncodingError

#: Kinds legal inside a batch (everything except BATCH/FRAGMENT).
_INNER_KINDS = [
    k for k in MessageKind if k not in (MessageKind.BATCH, MessageKind.FRAGMENT)
]

_SOURCES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=16
)

frames_st = st.builds(
    Frame,
    kind=st.sampled_from(_INNER_KINDS),
    source=_SOURCES,
    payload=st.binary(max_size=128),
    channel=st.integers(min_value=0, max_value=0xFFFF),
    seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
    flags=st.integers(min_value=0, max_value=3),
)


def collecting_batcher(source="batcher", mtu=1200, piggyback=None):
    sim = Simulator()
    emitted = []
    batcher = FrameBatcher(
        clock=sim,
        timers=sim,
        source=source,
        emit=lambda dest, frame, band: emitted.append((dest, frame, band)),
        mtu=mtu,
        flush_interval=0.002,
        piggyback=piggyback,
    )
    return sim, batcher, emitted


def expand(emitted):
    """Flatten emitted frames, opening BATCH wrappers."""
    flat = []
    for dest, frame, band in emitted:
        if frame.kind == MessageKind.BATCH:
            for inner in decode_batch_payload(frame.payload):
                flat.append((dest, inner, band))
        else:
            flat.append((dest, frame, band))
    return flat


class TestRoundtrip:
    @given(st.lists(frames_st, min_size=1, max_size=20))
    def test_encode_decode_is_identity(self, frames):
        payload = encode_batch_payload([f.encode() for f in frames])
        decoded = decode_batch_payload(payload)
        assert [f.encode() for f in decoded] == [f.encode() for f in frames]
        # Field-level identity too, not just byte-level.
        for got, want in zip(decoded, frames):
            assert (got.kind, got.source, got.payload, got.channel, got.seq) == (
                want.kind,
                want.source,
                want.payload,
                want.channel,
                want.seq,
            )

    @given(st.lists(frames_st, min_size=1, max_size=20))
    def test_batch_frame_roundtrip_through_frame_codec(self, frames):
        outer = make_batch_frame("pub", [f.encode() for f in frames])
        reparsed = Frame.decode(outer.encode())
        assert reparsed.kind == MessageKind.BATCH
        inner = decode_batch_payload(reparsed.payload)
        assert [f.encode() for f in inner] == [f.encode() for f in frames]


class TestBatcherProperties:
    @given(
        st.lists(
            st.tuples(
                frames_st,
                st.integers(min_value=0, max_value=2),  # destination index
                st.integers(min_value=0, max_value=2),  # band
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_preserves_per_destination_order_and_loses_nothing(self, items):
        sim, batcher, emitted = collecting_batcher()
        dests = ["dst-a", "dst-b", "dst-c"]
        for frame, dest_idx, band in items:
            batcher.add(dests[dest_idx], frame, band)
        batcher.flush()
        assert batcher.pending_frames == 0
        flat = expand(emitted)
        for dest_idx in range(3):
            for band in range(3):
                want = [
                    f.encode()
                    for f, d, b in items
                    if d == dest_idx and b == band
                ]
                got = [
                    f.encode()
                    for d, f, b in flat
                    if d == dests[dest_idx] and b == band
                ]
                assert got == want

    @given(
        st.lists(
            st.builds(
                Frame,
                kind=st.sampled_from(_INNER_KINDS),
                source=_SOURCES,
                payload=st.binary(max_size=400),  # some exceed the budget
                channel=st.integers(min_value=0, max_value=0xFFFF),
                seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=120, max_value=400),
    )
    def test_batches_never_exceed_mtu_budget(self, frames, mtu):
        sim, batcher, emitted = collecting_batcher(mtu=mtu)
        for frame in frames:
            batcher.add("dst", frame)
        batcher.flush()
        for _, frame, _ in emitted:
            if frame.kind == MessageKind.BATCH:
                assert len(frame.encode()) <= mtu
        # Oversize frames bypass batching raw; everything still arrives.
        assert len(expand(emitted)) == len(frames)

    @given(frames_st)
    def test_single_frame_flush_is_byte_identical_to_unbatched(self, frame):
        sim, batcher, emitted = collecting_batcher()
        batcher.add("dst", frame)
        batcher.flush()
        assert len(emitted) == 1
        _, out, _ = emitted[0]
        assert out.kind != MessageKind.BATCH
        assert out.encode() == frame.encode()
        assert batcher.single_flushes == 1
        assert batcher.batches_sent == 0

    @given(st.lists(frames_st, min_size=1, max_size=10))
    def test_flush_timer_drains_everything(self, frames):
        sim, batcher, emitted = collecting_batcher()
        for frame in frames:
            batcher.add("dst", frame)
        sim.run(until=1.0)
        assert batcher.pending_frames == 0
        assert [f.encode() for _, f, _ in expand(emitted)] == [
            f.encode() for f in frames
        ]


class TestDisabledParity:
    """Batching off → the egress stage passes the very same frame object
    through untouched, so the wire format is byte-for-byte the seed's."""

    @given(frames_st)
    def test_disabled_shaper_passes_frames_through_unmodified(self, frame):
        from repro.container.egress import EgressShaper

        sim = Simulator()
        sent = []
        shaper = EgressShaper(
            clock=sim,
            timers=sim,
            send=lambda dest, f: sent.append(f),
            rate_bps=None,
        )
        assert not shaper.batching_enabled
        before = frame.encode()
        shaper.send("dst", frame)
        assert len(sent) == 1
        assert sent[0] is frame
        assert sent[0].encode() == before


class TestDecoderRejections:
    """Fuzz-style negatives: every malformation is a clean EncodingError."""

    def test_zero_frame_batch(self):
        with pytest.raises(EncodingError):
            decode_batch_payload(b"\x00\x00")
        with pytest.raises(EncodingError):
            encode_batch_payload([])

    def test_truncated_count_header(self):
        for payload in (b"", b"\x01"):
            with pytest.raises(EncodingError):
                decode_batch_payload(payload)

    def test_truncated_length_prefix(self):
        # count=1 but only 2 of the 4 length bytes present.
        with pytest.raises(EncodingError):
            decode_batch_payload(b"\x01\x00" + b"\x05\x00")

    def test_inner_length_overrun(self):
        inner = Frame(kind=MessageKind.EVENT, source="s").encode()
        payload = encode_batch_payload([inner])
        # Inflate the declared inner length past the end of the payload.
        import struct

        bad = payload[:2] + struct.pack("<I", len(inner) + 50) + payload[6:]
        with pytest.raises(EncodingError):
            decode_batch_payload(bad)

    def test_trailing_garbage(self):
        inner = Frame(kind=MessageKind.EVENT, source="s").encode()
        payload = encode_batch_payload([inner])
        with pytest.raises(EncodingError):
            decode_batch_payload(payload + b"junk")

    def test_inner_frame_malformed(self):
        import struct

        garbage = b"\xde\xad\xbe\xef" * 4
        payload = b"\x01\x00" + struct.pack("<I", len(garbage)) + garbage
        with pytest.raises(EncodingError):
            decode_batch_payload(payload)

    def test_nested_batch_rejected(self):
        inner = Frame(kind=MessageKind.EVENT, source="s").encode()
        nested = make_batch_frame("s", [inner]).encode()
        with pytest.raises(EncodingError):
            decode_batch_payload(encode_batch_payload([nested]))

    def test_nested_fragment_rejected(self):
        frag = Frame(kind=MessageKind.FRAGMENT, source="s", payload=b"x").encode()
        with pytest.raises(EncodingError):
            decode_batch_payload(encode_batch_payload([frag]))

    @given(st.binary(max_size=600))
    def test_arbitrary_bytes_never_crash(self, payload):
        try:
            frames = decode_batch_payload(payload)
        except EncodingError:
            return
        # If it decoded, it must be a faithful non-empty parse.
        assert frames
        assert all(f.kind not in (MessageKind.BATCH, MessageKind.FRAGMENT) for f in frames)

    @given(
        st.lists(frames_st, min_size=1, max_size=8),
        st.data(),
    )
    def test_any_strict_truncation_is_rejected(self, frames, data):
        payload = encode_batch_payload([f.encode() for f in frames])
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        with pytest.raises(EncodingError):
            decode_batch_payload(payload[:cut])

    @given(
        st.lists(frames_st, min_size=1, max_size=8),
        st.binary(min_size=1, max_size=32),
    )
    def test_any_appended_garbage_is_rejected(self, frames, junk):
        payload = encode_batch_payload([f.encode() for f in frames])
        with pytest.raises(EncodingError):
            decode_batch_payload(payload + junk)
