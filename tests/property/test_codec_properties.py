"""Property-based tests: any value conforming to any generated schema must
round-trip through both codecs unchanged (up to float32 precision, which we
avoid by generating float64 only). The binary tests run differentially: the
schema-compiled codec must produce the same bytes and values as the
interpreted reference on every generated case."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    BOOL,
    BYTES,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    STRING,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    BinaryCodec,
    CompiledCodec,
    JsonCodec,
    StructType,
    UnionType,
    VectorType,
    parse_type,
)

BINARY = BinaryCodec()
COMPILED = CompiledCodec()
JSON_ = JsonCodec()

_PRIMS = [BOOL, INT8, INT16, INT32, INT64, UINT8, UINT16, UINT32, UINT64, FLOAT64, STRING, BYTES]

_names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)


def _leaf_types():
    return st.sampled_from(_PRIMS)


def _composite(children):
    def unique_fields(pairs):
        seen = set()
        out = []
        for name, t in pairs:
            if name not in seen:
                seen.add(name)
                out.append((name, t))
        return out

    fields = st.lists(st.tuples(_names, children), min_size=1, max_size=4).map(unique_fields)
    structs = st.builds(lambda f: StructType("S", f), fields)
    unions = st.builds(lambda f: UnionType("U", f), fields)
    vectors = st.builds(VectorType, children, st.one_of(st.none(), st.integers(0, 4)))
    return st.one_of(structs, unions, vectors)


schemas = st.recursive(_leaf_types(), _composite, max_leaves=8)


def _values_for(datatype):
    if datatype is BOOL:
        return st.booleans()
    if datatype is FLOAT64:
        return st.floats(allow_nan=False, allow_infinity=False, width=64)
    if datatype is STRING:
        return st.text(max_size=20)
    if datatype is BYTES:
        return st.binary(max_size=20)
    if isinstance(datatype, VectorType):
        inner = _values_for(datatype.element)
        if datatype.length is None:
            return st.lists(inner, max_size=4)
        return st.lists(inner, min_size=datatype.length, max_size=datatype.length)
    if isinstance(datatype, StructType):
        return st.fixed_dictionaries(
            {name: _values_for(t) for name, t in datatype.fields}
        )
    if isinstance(datatype, UnionType):
        return st.sampled_from(datatype.alternatives).flatmap(
            lambda alt: st.tuples(st.just(alt[0]), _values_for(alt[1]))
        )
    # Sized integer primitive.
    lo, hi = datatype._INT_RANGES[datatype.name]
    return st.integers(lo, hi)


typed_values = schemas.flatmap(
    lambda t: st.tuples(st.just(t), _values_for(t))
)


@settings(max_examples=150, deadline=None)
@given(typed_values)
def test_binary_round_trip(case):
    datatype, value = case
    encoded = BINARY.encode(datatype, value)
    assert BINARY.decode(datatype, encoded) == value
    # Differential: the compiled plan is wire-identical to the interpreter.
    assert COMPILED.encode(datatype, value) == encoded
    assert COMPILED.decode(datatype, encoded) == value


@settings(max_examples=150, deadline=None)
@given(typed_values)
def test_json_round_trip(case):
    datatype, value = case
    assert JSON_.decode(datatype, JSON_.encode(datatype, value)) == value


@settings(max_examples=100, deadline=None)
@given(schemas)
def test_describe_parse_round_trip(datatype):
    assert parse_type(datatype.describe()) == datatype


@settings(max_examples=100, deadline=None)
@given(typed_values)
def test_binary_encoding_is_deterministic(case):
    datatype, value = case
    assert BINARY.encode(datatype, value) == BINARY.encode(datatype, value)
    assert COMPILED.encode(datatype, value) == COMPILED.encode(datatype, value)
