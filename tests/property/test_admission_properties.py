"""Property and fuzz suite for ingress admission control.

Pins the robustness contracts the admission layer (and the hardened
reliability paths behind it) are built on:

- **Ingress never crashes.** Arbitrary hostile bytes thrown at the
  datagram entry point, and arbitrary well-formed frames carrying garbage
  payloads thrown at frame dispatch, are *counted and dropped* — never an
  unhandled exception, never a wedged container.
- **Disabled means inert.** With ``enabled=False`` the admission policy
  and the reliability hardening may carry any knob values whatsoever and
  the wire traffic of a seeded run stays packet-for-packet identical to a
  default-config run — the seed-parity guarantee (same bar the batching
  and sanitizer stages meet).
- **Token buckets and quarantine behave as specified** for arbitrary
  schedules: conservation bounds, no negative tokens, decay forgiveness.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.observability.metrics import MetricsRegistry
from repro.protocol.admission import (
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.protocol.frames import Frame, MessageKind
from repro.protocol.reliability import ReliabilityHardening
from repro.runtime.simruntime import SimRuntime
from repro.simnet.addressing import Address
from repro.util import ManualClock

_SOURCES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)

#: Well-formed frames with arbitrary (mostly garbage) payloads — the frame
#: header parses; whatever is inside generally does not.
hostile_frames_st = st.builds(
    Frame,
    kind=st.sampled_from(list(MessageKind)),
    source=_SOURCES,
    payload=st.binary(max_size=96),
    channel=st.integers(min_value=0, max_value=0xFFFF),
    seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
    flags=st.integers(min_value=0, max_value=7),
)

ATTACKER = Address("hostile-node", 45000)


def one_container_runtime(seed=3, **overrides):
    runtime = SimRuntime(seed=seed)
    container = runtime.add_container("victim", **overrides)
    runtime.start()
    runtime.run_for(0.1)
    return runtime, container


class TestIngressNeverCrashes:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(max_size=200), min_size=1, max_size=30))
    def test_hostile_datagrams_are_counted_never_raised(self, datagrams):
        runtime, container = one_container_runtime()
        runtime.enable_admission()
        before = container.metrics.counter_value("malformed_datagrams")
        decoded = 0
        for payload in datagrams:
            try:
                Frame.decode(payload)
                decoded += 1
            except Exception:
                pass
            container._transport._on_datagram(payload, ATTACKER)
        runtime.run_for(0.5)
        runtime.stop()
        # Every undecodable datagram landed in the malformed tally; the
        # container survived all of them.
        malformed = container.metrics.counter_value("malformed_datagrams") - before
        assert malformed == len(datagrams) - decoded

    @settings(max_examples=30, deadline=None)
    @given(st.lists(hostile_frames_st, min_size=1, max_size=30))
    def test_adversarial_frames_only_count_and_drop(self, frames):
        runtime, container = one_container_runtime()
        runtime.enable_admission()
        admitted_before = container.admission.admitted
        dropped_before = container.admission.dropped
        offered = 0
        for frame in frames:
            if frame.source == container.id:
                continue  # loopback path: skipped before admission
            offered += 1
            container._on_frame(frame, ATTACKER)
        runtime.run_for(0.5)
        runtime.stop()
        # Accounting is exhaustive: every offered frame was either admitted
        # or counted as dropped, and the container is still standing.
        admitted = container.admission.admitted - admitted_before
        dropped = container.admission.dropped - dropped_before
        assert admitted + dropped == offered

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.binary(max_size=200), min_size=1, max_size=20))
    def test_undefended_ingress_survives_too(self, datagrams):
        # The decode-guard crash-safety holds even with admission disabled:
        # garbage is dropped at the transport seam regardless.
        runtime, container = one_container_runtime()
        for payload in datagrams:
            container._transport._on_datagram(payload, ATTACKER)
        runtime.run_for(0.2)
        runtime.stop()


def packet_trace(admission=None, hardening=None, seed=17):
    """Run a fixed seeded pub/sub workload; return the full packet trace."""
    import tests.helpers as helpers
    from repro.encoding.types import STRING

    overrides = {}
    if admission is not None:
        overrides["admission"] = admission
    if hardening is not None:
        overrides["reliability_hardening"] = hardening
    runtime = SimRuntime(seed=seed)
    trace = runtime.network.enable_trace()
    pub = runtime.add_container("pub", **overrides)
    sub = runtime.add_container("sub", **overrides)
    publisher = helpers.ProbeService(
        "publisher",
        lambda s: setattr(s, "handle", s.ctx.provide_event("parity.evt", STRING)),
    )
    subscriber = helpers.ProbeService(
        "subscriber", lambda s: s.watch_event("parity.evt")
    )
    pub.install_service(publisher)
    sub.install_service(subscriber)
    helpers.settle(runtime)
    for i in range(20):
        publisher.handle.raise_event(f"evt-{i}")
        runtime.run_for(0.05)
    runtime.run_for(1.0)
    runtime.stop()
    assert subscriber.events_of("parity.evt") == [f"evt-{i}" for i in range(20)]
    return [
        (str(p.source), str(p.destination), p.sent_at, p.payload) for p in trace
    ]


class TestDisabledParity:
    """enabled=False must be wire-inert no matter what the other knobs say."""

    def test_disabled_admission_any_knobs_is_byte_identical(self):
        baseline = packet_trace()
        weird = AdmissionPolicy(
            enabled=False,
            source_rate=1.0,
            source_burst=1.0,
            band_rates={1: 1.0},
            band_burst=1.0,
            quarantine_threshold=1.0,
            quarantine_duration=30.0,
            ingress_scheduling=False,
            ingress_queue_limit=1,
        )
        assert packet_trace(admission=weird) == baseline

    def test_disabled_hardening_any_knobs_is_byte_identical(self):
        baseline = packet_trace()
        weird = ReliabilityHardening(
            enabled=False,
            ack_rate=1.0,
            ack_burst=1.0,
            nack_rate=1.0,
            nack_burst=1.0,
            replay_window=1,
            dup_ack_rate=1.0,
            dup_ack_burst=1.0,
        )
        assert packet_trace(hardening=weird) == baseline

    def test_disabled_controller_is_a_pure_no_op(self):
        ctl = AdmissionController(
            clock=ManualClock(),
            classify=lambda kind: 1,
            policy=AdmissionPolicy(enabled=False, source_rate=1.0),
        )
        frame = Frame(kind=MessageKind.EVENT, source="s", payload=b"", channel=0)
        assert all(ctl.admit(frame) for _ in range(1000))
        assert ctl.dropped == 0
        assert not ctl._sources  # no per-source state accrued


class TestTokenBucketProperties:
    @given(
        rate=st.floats(min_value=0.1, max_value=1000.0),
        burst=st.floats(min_value=1.0, max_value=256.0),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=200
        ),
    )
    def test_conservation_and_bounds(self, rate, burst, steps):
        bucket = TokenBucket(rate=rate, burst=burst, now=0.0)
        now = 0.0
        taken = 0
        for dt in steps:
            now += dt
            if bucket.try_take(now):
                taken += 1
            assert 0.0 <= bucket.tokens <= burst
        # Conservation: admissions never exceed initial burst + refill.
        assert taken <= burst + rate * now + 1e-6

    @given(
        rate=st.floats(min_value=1.0, max_value=100.0),
        burst=st.floats(min_value=1.0, max_value=64.0),
    )
    def test_full_drain_then_full_recovery(self, rate, burst):
        bucket = TokenBucket(rate=rate, burst=burst, now=0.0)
        while bucket.try_take(0.0):
            pass
        # After a burst-sized wait (plus a float-rounding margin) the full
        # burst is available again.
        recovery = (burst / rate) * 1.01
        taken = 0
        while bucket.try_take(recovery):
            taken += 1
        assert taken == int(burst)


class TestQuarantineProperties:
    @given(
        st.lists(
            st.tuples(
                _SOURCES, st.floats(min_value=0.0, max_value=3.0)
            ),
            min_size=1,
            max_size=150,
        )
    )
    def test_arbitrary_malformed_schedules_never_crash_and_stay_consistent(
        self, schedule
    ):
        clock = ManualClock()
        metrics = MetricsRegistry()
        ctl = AdmissionController(
            clock=clock,
            classify=lambda kind: 1,
            policy=AdmissionPolicy(
                enabled=True,
                source_rate=None,
                band_rates={},
                quarantine_threshold=3.0,
            ),
            metrics=metrics,
        )
        for source, dt in schedule:
            clock.advance(dt)
            ctl.note_malformed(source)
        # Every quarantined source has a quarantine counter and is dropped.
        for source in ctl.quarantined_sources():
            assert metrics.counter_value("quarantines", source=source) >= 1
            frame = Frame(
                kind=MessageKind.EVENT, source=source, payload=b"", channel=0
            )
            assert not ctl.admit(frame)
        # Scores decay to forgiveness: far in the future nobody is held.
        clock.advance(10_000.0)
        assert ctl.quarantined_sources() == []


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
