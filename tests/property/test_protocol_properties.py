"""Property-based tests on protocol invariants.

The reliable channel must deliver every message exactly once and in order
for *any* pattern of data loss, ack loss, duplication and timer timing —
hypothesis drives those schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import (
    Fragmenter,
    MessageKind,
    Reassembler,
    ReliableReceiver,
    ReliableSender,
    RetransmitPolicy,
)
from repro.protocol.frames import Frame
from repro.util import ManualClock


class LossyHarness:
    """Sender/receiver pair whose channel behaviour is scripted by two
    boolean iterators (deliver-or-drop per frame, per direction)."""

    def __init__(self, data_plan, ack_plan):
        self.clock = ManualClock()
        self.delivered = []
        self.failed = []
        self._data_plan = iter(data_plan)
        self._ack_plan = iter(ack_plan)
        self.receiver = ReliableReceiver(
            source="tx",
            channel=1,
            emit_ack=self._maybe_ack,
            deliver=lambda frame: self.delivered.append(frame.payload),
            ack_source="rx",
        )
        self.sender = ReliableSender(
            clock=self.clock,
            source="tx",
            channel=1,
            emit=self._maybe_data,
            on_failure=lambda seq, frame: self.failed.append(seq),
            policy=RetransmitPolicy(initial_rto=0.05, window=8, max_retries=64),
        )

    def _next(self, plan):
        try:
            return next(plan)
        except StopIteration:
            return True  # plans exhaust into a perfect channel

    def _maybe_data(self, frame):
        if self._next(self._data_plan):
            self.receiver.on_frame(frame)

    def _maybe_ack(self, frame):
        if self._next(self._ack_plan):
            self.sender.on_ack_frame(frame)

    def run_until_idle(self, max_steps=5000):
        steps = 0
        while not self.sender.idle and steps < max_steps:
            self.clock.advance(0.05)
            self.sender.poll()
            steps += 1
        return self.sender.idle


@settings(max_examples=80, deadline=None)
@given(
    messages=st.lists(st.binary(min_size=0, max_size=32), min_size=1, max_size=25),
    data_plan=st.lists(st.booleans(), max_size=200),
    ack_plan=st.lists(st.booleans(), max_size=200),
)
def test_reliable_channel_delivers_everything_in_order(messages, data_plan, ack_plan):
    harness = LossyHarness(data_plan, ack_plan)
    for message in messages:
        harness.sender.send(MessageKind.EVENT, message)
    assert harness.run_until_idle()
    assert harness.failed == []
    assert harness.delivered == messages


@settings(max_examples=80, deadline=None)
@given(
    messages=st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=15),
    dup_pattern=st.lists(st.integers(1, 3), max_size=60),
)
def test_receiver_dedupes_arbitrary_duplication(messages, dup_pattern):
    delivered = []
    rx = ReliableReceiver(
        "tx", 1, emit_ack=lambda f: None,
        deliver=lambda f: delivered.append(f.payload),
    )
    frames = [
        Frame(kind=MessageKind.EVENT, source="tx", channel=1, seq=i + 1, payload=m)
        for i, m in enumerate(messages)
    ]
    pattern = iter(dup_pattern)
    for frame in frames:
        copies = next(pattern, 1)
        for _ in range(copies):
            rx.on_frame(frame)
    assert delivered == messages


@settings(max_examples=80, deadline=None)
@given(
    messages=st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=15),
    seed=st.integers(0, 2**16),
)
def test_receiver_restores_any_permutation(messages, seed):
    import random

    delivered = []
    rx = ReliableReceiver(
        "tx", 1, emit_ack=lambda f: None,
        deliver=lambda f: delivered.append(f.payload),
    )
    frames = [
        Frame(kind=MessageKind.EVENT, source="tx", channel=1, seq=i + 1, payload=m)
        for i, m in enumerate(messages)
    ]
    random.Random(seed).shuffle(frames)
    for frame in frames:
        rx.on_frame(frame)
    assert delivered == messages


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(0, 5000),
    mtu=st.integers(120, 1500),
    seed=st.integers(0, 2**16),
)
def test_fragmentation_reassembles_any_order(size, mtu, seed):
    import random

    payload = bytes((i * 31) % 256 for i in range(size))
    encoded = Frame(kind=MessageKind.RPC_REQUEST, source="c", payload=payload).encode()
    fragments = Fragmenter("c", mtu).fragment(encoded)
    for fragment in fragments:
        assert len(fragment.encode()) <= mtu
    random.Random(seed).shuffle(fragments)
    reasm = Reassembler()
    results = [reasm.on_fragment(f, now=0.0) for f in fragments]
    completed = [r for r in results if r is not None]
    assert completed == [encoded]


class ChaoticChannel:
    """Sender/receiver pair whose data direction drops, duplicates, delays
    and reorders frames according to a hypothesis-drawn script. Acks pass
    clean — the loss-facing ack path is covered by :class:`LossyHarness`."""

    def __init__(self, actions, seed):
        import random

        self.rng = random.Random(seed)
        self.clock = ManualClock()
        self.delivered = []
        self.failed = []
        self._actions = iter(actions)
        self._delayed = []
        self.receiver = ReliableReceiver(
            source="tx",
            channel=1,
            emit_ack=lambda frame: self.sender.on_ack_frame(frame),
            deliver=lambda frame: self.delivered.append(frame.payload),
            ack_source="rx",
        )
        self.sender = ReliableSender(
            clock=self.clock,
            source="tx",
            channel=1,
            emit=self._scripted,
            on_failure=lambda seq, frame: self.failed.append(seq),
            policy=RetransmitPolicy(initial_rto=0.05, window=8, max_retries=64),
        )

    def _scripted(self, frame):
        action = next(self._actions, "deliver")
        if action == "drop":
            return
        if action == "delay":
            self._delayed.append(frame)
            return
        self.receiver.on_frame(frame)
        if action == "dup":
            self.receiver.on_frame(frame)

    def _flush_delayed(self):
        self.rng.shuffle(self._delayed)
        pending, self._delayed = self._delayed, []
        for frame in pending:
            self.receiver.on_frame(frame)

    def run_until_idle(self, max_steps=5000):
        steps = 0
        while not self.sender.idle and steps < max_steps:
            self.clock.advance(0.05)
            self._flush_delayed()
            self.sender.poll()
            steps += 1
        self._flush_delayed()
        return self.sender.idle


@settings(max_examples=80, deadline=None)
@given(
    messages=st.lists(st.binary(min_size=0, max_size=24), min_size=1, max_size=20),
    actions=st.lists(
        st.sampled_from(["deliver", "drop", "dup", "delay"]), max_size=200
    ),
    seed=st.integers(0, 2**16),
)
def test_exactly_once_under_combined_drop_dup_reorder(messages, actions, seed):
    """The §4.2 guarantee under every fault class at once: whatever mix of
    loss, duplication and reordering the channel applies, the application
    sees each message exactly once, in order."""
    harness = ChaoticChannel(actions, seed)
    for message in messages:
        harness.sender.send(MessageKind.EVENT, message)
    assert harness.run_until_idle()
    assert harness.failed == []
    assert harness.delivered == messages


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(max_size=4000),
    mtu=st.integers(120, 1500),
    dup_pattern=st.lists(st.integers(1, 3), max_size=40),
    seed=st.integers(0, 2**16),
)
def test_fragmentation_byte_identical_under_duplication(payload, mtu, dup_pattern, seed):
    """Arbitrary payload bytes and chunk sizes: every reassembly completion
    must be the input byte-for-byte, however fragments arrive shuffled and
    duplicated. (Suppressing *repeat* completions of duplicated fragment
    sets is the reliability layer's dedup job, not the reassembler's.)"""
    import random

    encoded = Frame(kind=MessageKind.RPC_REQUEST, source="c", payload=payload).encode()
    fragments = Fragmenter("c", mtu).fragment(encoded)
    for fragment in fragments:
        assert len(fragment.encode()) <= mtu
    stream = []
    pattern = iter(dup_pattern)
    for fragment in fragments:
        stream.extend([fragment] * next(pattern, 1))
    random.Random(seed).shuffle(stream)
    reasm = Reassembler()
    completed = [
        r for r in (reasm.on_fragment(f, now=0.0) for f in stream) if r is not None
    ]
    assert completed
    assert all(result == encoded for result in completed)


@settings(max_examples=100, deadline=None)
@given(
    indices=st.sets(st.integers(0, 500), max_size=80),
)
def test_nack_range_compression_round_trips(indices):
    from repro.primitives.wire import indices_from_ranges, ranges_from_indices

    ranges = ranges_from_indices(indices)
    assert indices_from_ranges(ranges) == sorted(indices)
    # Compression invariant: ranges are disjoint, ordered, non-adjacent.
    for a, b in zip(ranges, ranges[1:]):
        assert a["end"] + 1 < b["start"]


@settings(max_examples=100, deadline=None)
@given(
    payload=st.binary(max_size=200),
    kind=st.sampled_from(list(MessageKind)),
    channel=st.integers(0, 0xFFFF),
    seq=st.integers(0, 0xFFFFFFFF),
    source=st.from_regex(r"[a-z][a-z0-9\-]{0,20}", fullmatch=True),
)
def test_frame_encoding_round_trips(payload, kind, channel, seq, source):
    frame = Frame(kind=kind, source=source, payload=payload, channel=channel, seq=seq)
    decoded = Frame.decode(frame.encode())
    assert (decoded.kind, decoded.source, decoded.payload, decoded.channel, decoded.seq) == (
        kind, source, payload, channel, seq,
    )
