"""Property tests for the egress shaper: conservation and priority."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container.egress import EgressShaper
from repro.protocol.frames import Frame, MessageKind
from repro.sim import Simulator

_kinds = st.sampled_from(
    [
        MessageKind.EVENT,
        MessageKind.VAR_SAMPLE,
        MessageKind.RPC_REQUEST,
        MessageKind.FILE_CHUNK,
        MessageKind.HEARTBEAT,
    ]
)

_sends = st.lists(
    st.tuples(_kinds, st.integers(0, 2000)),  # (kind, payload size)
    min_size=1,
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(
    sends=_sends,
    rate=st.sampled_from([8_000.0, 100_000.0, 10_000_000.0]),
    burst=st.sampled_from([100, 600, 1600, 4000]),
)
def test_every_frame_is_eventually_sent_exactly_once(sends, rate, burst):
    """Conservation: shaping delays frames but never drops or duplicates,
    even when frames exceed the burst size (deficit mode)."""
    sim = Simulator()
    sent = []
    shaper = EgressShaper(
        clock=sim,
        timers=sim,
        send=lambda dest, frame: sent.append(frame),
        rate_bps=rate,
        burst_bytes=burst,
    )
    for kind, size in sends:
        shaper.send("dest", Frame(kind=kind, source="c", payload=b"z" * size))
    sim.run(max_events=200_000)
    assert len(sent) == len(sends)
    assert shaper.queued == 0
    # Per kind, frames keep their relative order (priority is per band;
    # within a band the queue is FIFO).
    for kind in {k for k, _ in sends}:
        sizes_in = [s for k, s in sends if k == kind]
        sizes_out = [len(f.payload) for f in sent if f.kind == kind]
        assert sizes_in == sizes_out


@settings(max_examples=60, deadline=None)
@given(sends=_sends)
def test_disabled_shaper_is_transparent(sends):
    sim = Simulator()
    sent = []
    shaper = EgressShaper(
        clock=sim, timers=sim,
        send=lambda dest, frame: sent.append(frame),
        rate_bps=None,
    )
    for kind, size in sends:
        shaper.send("dest", Frame(kind=kind, source="c", payload=b"z" * size))
    # Pass-through: everything already sent, in order, no timers.
    assert len(sent) == len(sends)
    assert sim.pending == 0
    assert [f.kind for f in sent] == [k for k, _ in sends]
