"""Property-based tests on the simulation kernel and flight geodesy."""


from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.flight.geodesy import (
    GeoPoint,
    angle_diff_deg,
    bearing_deg,
    destination_point,
    distance_m,
)
from repro.sim import Simulator


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=50))
def test_simulator_executes_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now()))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=30),
)
def test_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(delay, lambda i=i: fired.append(i))
        for i, delay in enumerate(delays)
    ]
    for handle, cancel in zip(handles, cancel_mask):
        if cancel:
            handle.cancel()
    sim.run()
    expected = {i for i in range(len(delays)) if not (i < len(cancel_mask) and cancel_mask[i])}
    assert set(fired) == expected


# Mission-area coordinates: mid latitudes, small offsets.
_lat = st.floats(-70, 70, allow_nan=False)
_lon = st.floats(-179, 179, allow_nan=False)
_bearing = st.floats(0, 360, exclude_max=True, allow_nan=False)
_dist = st.floats(1, 20_000, allow_nan=False)


@settings(max_examples=150, deadline=None)
@given(lat=_lat, lon=_lon, bearing=_bearing, dist=_dist)
def test_destination_distance_inverse(lat, lon, bearing, dist):
    origin = GeoPoint(lat, lon)
    target = destination_point(origin, bearing, dist)
    assume(-90 <= target.lat <= 90 and -180 <= target.lon <= 180)
    # Equirectangular approximation: sub-0.5% error at mission scale.
    assert abs(distance_m(origin, target) - dist) <= max(0.005 * dist, 0.5)


@settings(max_examples=150, deadline=None)
@given(lat=_lat, lon=_lon, bearing=_bearing, dist=_dist)
def test_bearing_matches_within_tolerance(lat, lon, bearing, dist):
    origin = GeoPoint(lat, lon)
    target = destination_point(origin, bearing, dist)
    assume(-90 <= target.lat <= 90 and -180 <= target.lon <= 180)
    assume(distance_m(origin, target) > 1.0)
    measured = bearing_deg(origin, target)
    assert abs(angle_diff_deg(measured, bearing)) < 1.0


@settings(max_examples=100, deadline=None)
@given(a=_bearing, b=_bearing)
def test_angle_diff_is_minimal_signed_rotation(a, b):
    diff = angle_diff_deg(a, b)
    assert -180 < diff <= 180
    # Applying the rotation reaches b, modulo 360 and float rounding.
    error = ((a + diff - b) + 180.0) % 360.0 - 180.0
    assert abs(error) < 1e-6


_offset = st.floats(-0.5, 0.5, allow_nan=False)


@settings(max_examples=100, deadline=None)
@given(lat=_lat, lon=_lon, dlat=_offset, dlon=_offset)
def test_distance_symmetry(lat, lon, dlat, dlon):
    # Second point at mission-scale offset from the first.
    a = GeoPoint(lat, lon)
    b = GeoPoint(lat + dlat, lon + dlon)
    assert distance_m(a, b) == distance_m(b, a)
    assert distance_m(a, b) >= 0
