"""Differential properties: a compiled monitor automaton is an
*optimization* of the naive interpreter, never a semantics change.

For any hypothesis-generated temporal spec (never / always / response /
until, global or per-key scoped) and any generated event stream with
non-decreasing timestamps, :func:`repro.verify.compiler.compile_spec`
must produce exactly the violations of :class:`repro.verify.interp.
NaiveMonitor` — same spec, key, stamped time, attributed container,
reason and message. Truncation (finishing the stream early or late) and
interleaving of independent keys ride under the same property, so a
divergence in the generated transition source shrinks to a minimal
counterexample here.

Violations are compared as sorted multisets: the compiled engine expires
response obligations in deadline-heap order while the interpreter scans
its pending table, so *emission order* between equal-deadline keys may
differ — content may not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.compiler import CompiledAutomaton, compile_spec
from repro.verify.interp import run_naive
from repro.verify.spec import (
    GLOBAL,
    Spec,
    always,
    at_most_once,
    event,
    never,
    response,
    until,
)

KINDS = ["alpha", "beta", "gamma"]
NAMES = [None, "x", "y"]
KEYS = ["k1", "k2", "k3"]
CONTAINERS = ["c1", "c2"]


class StreamEvent:
    """Minimal stand-in for MonitorEvent — monitors only read attributes."""

    __slots__ = ("kind", "name", "key", "container", "time", "attrs")

    def __init__(self, kind, name, key, container, time, attrs):
        self.kind = kind
        self.name = name
        self.key = key
        self.container = container
        self.time = time
        self.attrs = attrs

    def __repr__(self):
        return (
            f"StreamEvent({self.kind!r}, {self.name!r}, key={self.key!r}, "
            f"container={self.container!r}, t={self.time}, {self.attrs!r})"
        )


patterns = st.builds(
    lambda kind, name: event(kind, name=name),
    st.sampled_from(KINDS),
    st.sampled_from(NAMES),
)

#: ``ok`` attrs carry a bool the always-predicate reads; every generated
#: event carries one so predicate specs never KeyError.
attr_patterns = st.builds(
    lambda kind, name, ok: event(kind, name=name, ok=ok),
    st.sampled_from(KINDS),
    st.sampled_from(NAMES),
    st.booleans(),
)


def _predicated(pattern):
    return always(pattern, that=lambda e: bool(e.attrs.get("ok")))


formulas = st.one_of(
    st.builds(never, patterns),
    st.builds(_predicated, patterns),
    st.builds(
        response,
        patterns,
        patterns,
        within=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    ),
    st.builds(until, patterns, patterns),
    st.builds(at_most_once, patterns),
)

keyings = st.sampled_from([None, GLOBAL])

specs = st.builds(
    lambda i, formula, key: Spec(
        name=f"prop-{i}", owner="prop-suite", formula=formula, key=key
    ),
    st.integers(min_value=0, max_value=999),
    formulas,
    keyings,
)

events = st.builds(
    lambda kind, name, key, container, dt, ok: (
        kind,
        name,
        key,
        container,
        dt,
        ok,
    ),
    st.sampled_from(KINDS),
    st.sampled_from(NAMES + ["z"]),
    st.sampled_from(KEYS),
    st.sampled_from(CONTAINERS),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.booleans(),
)

streams = st.lists(events, max_size=40)


def _materialize(raw):
    """Turn (kind, name-or-None, key, container, dt, ok) tuples into a
    stream with non-decreasing timestamps."""
    out, now = [], 0.0
    for kind, name, key, container, dt, ok in raw:
        now += dt
        out.append(
            StreamEvent(kind, name or kind, key, container, now, {"ok": ok})
        )
    return out


def _violation_key(v):
    return (v.spec, repr(v.key), v.time, v.container, v.reason, v.message)


def _run_compiled(spec_list, stream, end_time):
    got = []
    automata = [compile_spec(s, got.append) for s in spec_list]
    routed = {s.name: set(s.kinds()) for s in spec_list}
    for evt in stream:
        for spec, automaton in zip(spec_list, automata):
            if evt.kind in routed[spec.name]:
                automaton.step(evt)
    for automaton in automata:
        automaton.finish(end_time)
    return sorted(got, key=_violation_key)


@settings(max_examples=200, deadline=None)
@given(specs, streams)
def test_compiled_matches_naive(spec, raw):
    stream = _materialize(raw)
    end_time = stream[-1].time if stream else 0.0
    naive = sorted(run_naive([spec], stream, end_time), key=_violation_key)
    compiled = _run_compiled([spec], stream, end_time)
    assert [_violation_key(v) for v in compiled] == [
        _violation_key(v) for v in naive
    ]


@settings(max_examples=100, deadline=None)
@given(specs, streams, st.floats(min_value=0.0, max_value=8.0, allow_nan=False))
def test_truncation_parity(spec, raw, extra):
    """Finishing at any later time — including far past the last event —
    expires the same obligations in both engines, and truncation never
    *manufactures* a violation (finish uses strict ``deadline < now``)."""
    stream = _materialize(raw)
    end_time = (stream[-1].time if stream else 0.0) + extra
    naive = sorted(run_naive([spec], stream, end_time), key=_violation_key)
    compiled = _run_compiled([spec], stream, end_time)
    assert [_violation_key(v) for v in compiled] == [
        _violation_key(v) for v in naive
    ]


@settings(max_examples=100, deadline=None)
@given(st.lists(specs, min_size=2, max_size=4, unique_by=lambda s: s.name), streams)
def test_spec_panel_parity(spec_list, raw):
    """Several specs observing one interleaved stream — the engine-level
    routing (only a spec's own kinds reach its automaton) must not change
    verdicts relative to running the interpreter over the full stream."""
    stream = _materialize(raw)
    end_time = stream[-1].time if stream else 0.0
    naive = sorted(run_naive(spec_list, stream, end_time), key=_violation_key)
    compiled = _run_compiled(spec_list, stream, end_time)
    assert [_violation_key(v) for v in compiled] == [
        _violation_key(v) for v in naive
    ]


@settings(max_examples=100, deadline=None)
@given(specs, streams, streams)
def test_per_key_scoping_is_interleaving_invariant(spec, raw_a, raw_b):
    """A per-key spec over the merge of two streams with disjoint keys
    equals the union of running it over each stream alone — obligations on
    one key never leak into another."""
    stream_a = [
        StreamEvent(e.kind, e.name, ("a", e.key), e.container, e.time, e.attrs)
        for e in _materialize(raw_a)
    ]
    stream_b = [
        StreamEvent(e.kind, e.name, ("b", e.key), e.container, e.time, e.attrs)
        for e in _materialize(raw_b)
    ]
    if spec.key is GLOBAL:
        spec = Spec(
            name=spec.name, owner=spec.owner, formula=spec.formula, key=None
        )
    merged = sorted(stream_a + stream_b, key=lambda e: e.time)
    end_time = merged[-1].time if merged else 0.0
    whole = _run_compiled([spec], merged, end_time)
    parts = sorted(
        _run_compiled([spec], stream_a, end_time)
        + _run_compiled([spec], stream_b, end_time),
        key=_violation_key,
    )
    assert [_violation_key(v) for v in whole] == [
        _violation_key(v) for v in parts
    ]


@settings(max_examples=50, deadline=None)
@given(specs)
def test_compiled_source_cache_hit(spec):
    """Compiling an identical spec twice reuses the cached code object —
    the generated source is keyed by text, like encoding.compiled's plans."""
    a = compile_spec(spec, lambda v: None)
    b = compiled = compile_spec(spec, lambda v: None)
    assert isinstance(a, CompiledAutomaton) and isinstance(compiled, CompiledAutomaton)
    assert a.source == b.source
    assert a.step.__code__ is b.step.__code__
