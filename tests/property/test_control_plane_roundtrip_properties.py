"""Codec-parity round-trips of the control-plane and fleet-scale schemas.

``primitives/wire.py`` schemas got a differential round-trip suite in the
seed; the control-plane records (ANNOUNCE / HEARTBEAT / BYE) and the
fleet-scale gossip payloads (GOSSIP / ZONE_SUMMARY) are just as much wire
surface — every peer on the segment decodes them — so they get the same
contract: the compiled codec and the interpreted :class:`BinaryCodec`
must agree byte-for-byte on encode and document-for-document on decode.
The nested offer schemas (``VAR_OFFER_SCHEMA`` …) and ``RUMOR_SCHEMA``
are covered by composition through their parents.

These schemas are also pinned by the wire-schema lockfile (REP008); this
suite is the behavioral half of that contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container.gossip import GOSSIP_SCHEMA, ZONE_SUMMARY_SCHEMA
from repro.container.records import ANNOUNCE_SCHEMA, BYE_SCHEMA, HEARTBEAT_SCHEMA
from repro.encoding.binary import BinaryCodec
from repro.encoding.compiled import CompiledCodec
from repro.encoding.types import PrimitiveType, StructType, VectorType

CODEC = BinaryCodec()
COMPILED = CompiledCodec()

CONTROL_PLANE_SCHEMAS = [
    ANNOUNCE_SCHEMA,
    HEARTBEAT_SCHEMA,
    BYE_SCHEMA,
    GOSSIP_SCHEMA,
    ZONE_SUMMARY_SCHEMA,
]


def _value_for(datatype):
    """A strategy producing conforming values for any control-plane type."""
    kind = datatype.kind
    if kind == "bool":
        return st.booleans()
    if kind in ("float32", "float64"):
        return st.floats(allow_nan=False, width=64 if kind == "float64" else 32)
    if kind == "string":
        return st.text(max_size=30)
    if kind == "bytes":
        return st.binary(max_size=64)
    if kind in PrimitiveType._INT_RANGES:
        lo, hi = PrimitiveType._INT_RANGES[kind]
        return st.integers(lo, hi)
    if isinstance(datatype, VectorType):
        inner = _value_for(datatype.element)
        if datatype.length is None:
            return st.lists(inner, max_size=3)
        return st.lists(inner, min_size=datatype.length, max_size=datatype.length)
    if isinstance(datatype, StructType):
        return st.fixed_dictionaries(
            {name: _value_for(t) for name, t in datatype.fields}
        )
    raise AssertionError(f"no strategy for {datatype!r}")


@pytest.mark.parametrize("schema", CONTROL_PLANE_SCHEMAS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_control_plane_codecs_agree_and_round_trip(schema, data):
    doc = data.draw(_value_for(schema))
    payload = COMPILED.encode(schema, doc)
    assert payload == CODEC.encode(schema, doc)
    assert COMPILED.decode(schema, payload) == doc
    assert CODEC.decode(schema, payload) == doc
