"""Property-based round-trips of every primitive wire schema.

Three compatibility contracts are on the line:

1. **Untraced frames are byte-identical to the pre-tracing format** — a
   container with tracing disabled emits exactly what the seed emitted.
2. **Traced frames decode everywhere** — the tagged trace tail is parsed
   when asked for (``decode_traced``), silently dropped by the legacy
   ``decode``, and untraced payloads read back with a ``None`` context.
3. **The compiled codec changes nothing** — ``wire`` now encodes through
   schema-compiled plans, so every assertion against the interpreted
   :class:`BinaryCodec` here is a differential test of the compiler.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.binary import BinaryCodec
from repro.encoding.compiled import CompiledCodec
from repro.encoding.types import PrimitiveType, StructType, VectorType
from repro.observability.trace import TraceContext
from repro.primitives import wire
from repro.util.errors import EncodingError

#: The interpreted reference; ``wire`` itself runs the compiled codec.
CODEC = BinaryCodec()
COMPILED = CompiledCodec()

#: Every payload schema a primitive puts on the wire.
ALL_SCHEMAS = [
    wire.VAR_SAMPLE_SCHEMA,
    wire.VAR_INITIAL_REQUEST_SCHEMA,
    wire.VAR_INITIAL_RESPONSE_SCHEMA,
    wire.EVENT_MESSAGE_SCHEMA,
    wire.EVENT_SUBSCRIBE_SCHEMA,
    wire.RPC_REQUEST_SCHEMA,
    wire.RPC_RESPONSE_SCHEMA,
    wire.FILE_ANNOUNCE_SCHEMA,
    wire.FILE_SUBSCRIBE_SCHEMA,
    wire.FILE_CHUNK_SCHEMA,
    wire.FILE_STATUS_REQUEST_SCHEMA,
    wire.FILE_ACK_SCHEMA,
    wire.FILE_NACK_SCHEMA,
    wire.FILE_DONE_SCHEMA,
    wire.TRACE_CONTEXT_SCHEMA,
]


def _value_for(datatype):
    """A strategy producing conforming values for any wire-schema type."""
    kind = datatype.kind
    if kind == "bool":
        return st.booleans()
    if kind in ("float32", "float64"):
        return st.floats(allow_nan=False, width=64 if kind == "float64" else 32)
    if kind == "string":
        return st.text(max_size=30)
    if kind == "bytes":
        return st.binary(max_size=64)
    if kind in PrimitiveType._INT_RANGES:
        lo, hi = PrimitiveType._INT_RANGES[kind]
        return st.integers(lo, hi)
    if isinstance(datatype, VectorType):
        inner = _value_for(datatype.element)
        if datatype.length is None:
            return st.lists(inner, max_size=4)
        return st.lists(inner, min_size=datatype.length, max_size=datatype.length)
    if isinstance(datatype, StructType):
        return st.fixed_dictionaries(
            {name: _value_for(t) for name, t in datatype.fields}
        )
    raise AssertionError(f"no strategy for {datatype!r}")


traces = st.builds(
    TraceContext,
    trace_id=st.text(min_size=1, max_size=24),
    span_id=st.text(min_size=1, max_size=24),
)


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_untraced_encode_matches_raw_codec_bytes(schema, data):
    """Contracts 1 and 3: trace=None produces the historical byte stream,
    and the compiled codec behind ``wire`` reproduces the interpreter's
    bytes exactly."""
    doc = data.draw(_value_for(schema))
    payload = wire.encode(schema, doc)
    assert payload == CODEC.encode(schema, doc)
    assert wire.decode(schema, payload) == doc
    assert CODEC.decode(schema, payload) == doc


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_old_frame_reads_back_with_none_context(schema, data):
    doc = data.draw(_value_for(schema))
    decoded, context = wire.decode_traced(schema, wire.encode(schema, doc))
    assert decoded == doc
    assert context is None


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_traced_frame_round_trips_doc_and_context(schema, data):
    doc = data.draw(_value_for(schema))
    trace = data.draw(traces)
    payload = wire.encode(schema, doc, trace=trace)
    decoded, context = wire.decode_traced(schema, payload)
    assert decoded == doc
    assert context == trace
    # A reader that never asks for the context still gets the doc (a new
    # frame arriving at an untraced decode path).
    assert wire.decode(schema, payload) == doc


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_non_tail_trailing_bytes_still_rejected(schema, data):
    """The tail carved out a *tagged* exception, not a hole: arbitrary
    trailing bytes remain an encoding error."""
    doc = data.draw(_value_for(schema))
    garbage = data.draw(st.binary(min_size=1, max_size=8))
    if garbage[0] == wire.TRACE_TAIL_TAG:
        garbage = bytes([wire.TRACE_TAIL_TAG + 1]) + garbage[1:]
    with pytest.raises(EncodingError):
        wire.decode(schema, wire.encode(schema, doc) + garbage)


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_decode_prefix_reports_exact_consumption(schema, data):
    """decode_prefix is what makes the tail possible: it must consume
    exactly the struct's bytes and ignore whatever follows."""
    doc = data.draw(_value_for(schema))
    suffix = data.draw(st.binary(max_size=16))
    encoded = CODEC.encode(schema, doc)
    value, consumed = CODEC.decode_prefix(schema, encoded + suffix)
    assert value == doc
    assert consumed == len(encoded)
    # Contract 3: the compiled prefix decode agrees byte for byte.
    assert COMPILED.decode_prefix(schema, encoded + suffix) == (value, consumed)


@settings(max_examples=60, deadline=None)
@given(trace=traces, data=st.data())
def test_trace_context_doc_round_trip(trace, data):
    assert TraceContext.from_doc(trace.to_doc()) == trace
    # And through the wire tail itself, on a representative schema.
    doc = data.draw(_value_for(wire.EVENT_MESSAGE_SCHEMA))
    payload = wire.encode(wire.EVENT_MESSAGE_SCHEMA, doc, trace=trace)
    assert wire.decode_traced(wire.EVENT_MESSAGE_SCHEMA, payload)[1] == trace
