"""Differential properties: the compiled codec is an *optimization*, never a
format change.

For any hypothesis-generated schema (including unions, nested vectors, and
fixed-length vectors) and any conforming value, :class:`CompiledCodec` must

1. produce byte-identical encodings to the interpreted :class:`BinaryCodec`,
2. decode those bytes to equal values,
3. agree on the trace-tail path (``decode_prefix`` consumption), and
4. agree on *rejection*: truncated and trailing-garbage payloads raise
   :class:`EncodingError` from both codecs, never a different exception and
   never a silent wrong value.

The generated-source fast paths (run coalescing, vector batching, the
single-bool branch) all ride under these properties, so a divergence in any
of them shrinks to a minimal counterexample here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.binary import BinaryCodec
from repro.encoding.compiled import CompiledCodec, compile_plan
from repro.primitives import wire
from repro.util.errors import EncodingError

from tests.property.test_codec_properties import schemas, typed_values
from tests.property.test_wire_roundtrip_properties import ALL_SCHEMAS, _value_for

INTERPRETED = BinaryCodec()
COMPILED = CompiledCodec()


@settings(max_examples=200, deadline=None)
@given(typed_values)
def test_compiled_bytes_identical_to_interpreted(case):
    datatype, value = case
    reference = INTERPRETED.encode(datatype, value)
    assert COMPILED.encode(datatype, value) == reference


@settings(max_examples=200, deadline=None)
@given(typed_values)
def test_compiled_decode_matches_interpreted(case):
    datatype, value = case
    encoded = INTERPRETED.encode(datatype, value)
    assert COMPILED.decode(datatype, encoded) == INTERPRETED.decode(
        datatype, encoded
    )


@settings(max_examples=150, deadline=None)
@given(typed_values)
def test_compiled_round_trip(case):
    datatype, value = case
    assert COMPILED.decode(datatype, COMPILED.encode(datatype, value)) == value


@settings(max_examples=100, deadline=None)
@given(typed_values, st.binary(max_size=16))
def test_decode_prefix_agrees_on_consumption(case, suffix):
    """The trace tail rides on decode_prefix: both codecs must report the
    same (value, consumed) with arbitrary bytes appended."""
    datatype, value = case
    encoded = INTERPRETED.encode(datatype, value)
    got = COMPILED.decode_prefix(datatype, encoded + suffix)
    assert got == INTERPRETED.decode_prefix(datatype, encoded + suffix)
    assert got == (value, len(encoded))


def _decode_outcome(codec, datatype, data):
    """('ok', value) or ('err',) — rejection parity compares these."""
    try:
        return ("ok", codec.decode(datatype, data))
    except EncodingError:
        return ("err",)


@settings(max_examples=100, deadline=None)
@given(typed_values, st.data())
def test_truncation_rejection_parity(case, data):
    """Cutting the payload anywhere gives the same accept/reject decision —
    and an equal value in the rare accept case (e.g. empty struct prefix)."""
    datatype, value = case
    encoded = INTERPRETED.encode(datatype, value)
    cut = data.draw(st.integers(0, max(0, len(encoded) - 1)))
    truncated = encoded[:cut]
    assert _decode_outcome(COMPILED, datatype, truncated) == _decode_outcome(
        INTERPRETED, datatype, truncated
    )


@settings(max_examples=100, deadline=None)
@given(typed_values, st.binary(min_size=1, max_size=8))
def test_trailing_garbage_rejection_parity(case, garbage):
    datatype, value = case
    payload = INTERPRETED.encode(datatype, value) + garbage
    assert _decode_outcome(COMPILED, datatype, payload) == _decode_outcome(
        INTERPRETED, datatype, payload
    )


@settings(max_examples=50, deadline=None)
@given(typed_values)
def test_compiled_decodes_memoryview_input(case):
    """Zero-copy path: a memoryview over the frame decodes like bytes."""
    datatype, value = case
    encoded = INTERPRETED.encode(datatype, value)
    assert COMPILED.decode(datatype, memoryview(encoded)) == value


@settings(max_examples=50, deadline=None)
@given(schemas)
def test_plan_cache_returns_identical_plan(datatype):
    """compile_plan is cached per schema — recompiling an equal schema must
    hand back the same encoder/decoder functions, not a fresh compile."""
    enc1, dec1 = compile_plan(datatype)
    enc2, dec2 = compile_plan(datatype)
    assert enc1 is enc2
    assert dec1 is dec2


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_wire_schemas_traced_frames_differential(schema, data):
    """The trace tail rides after the payload; the compiled codec behind
    ``wire`` must consume exactly the payload bytes so the tagged tail
    parses — differential against re-encoding through the interpreter."""
    from repro.observability.trace import TraceContext

    doc = data.draw(_value_for(schema))
    trace = TraceContext(trace_id="t-1", span_id="s-1")
    payload = wire.encode(schema, doc, trace=trace)
    assert payload[: len(INTERPRETED.encode(schema, doc))] == INTERPRETED.encode(
        schema, doc
    )
    decoded, context = wire.decode_traced(schema, payload)
    assert decoded == doc
    assert context == trace
