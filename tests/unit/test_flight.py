"""Unit tests for the flight substrate: geodesy, plans, dynamics."""


import pytest

from repro.flight import (
    FlightPlan,
    GeoPoint,
    KinematicUav,
    Waypoint,
    WaypointAction,
    bearing_deg,
    destination_point,
    distance_m,
    survey_plan,
)
from repro.flight.geodesy import angle_diff_deg
from repro.util.errors import ConfigurationError

BARCELONA = GeoPoint(41.275, 1.985, 300.0)


class TestGeodesy:
    def test_zero_distance(self):
        assert distance_m(BARCELONA, BARCELONA) == 0.0

    def test_known_distance_one_degree_lat(self):
        a = GeoPoint(41.0, 2.0)
        b = GeoPoint(42.0, 2.0)
        assert distance_m(a, b) == pytest.approx(111_195, rel=0.01)

    def test_destination_inverts_distance_and_bearing(self):
        for bearing in [0, 45, 90, 180, 270, 359]:
            target = destination_point(BARCELONA, bearing, 5000.0)
            assert distance_m(BARCELONA, target) == pytest.approx(5000.0, rel=1e-3)
            assert bearing_deg(BARCELONA, target) == pytest.approx(bearing % 360, abs=0.5)

    def test_bearings_cardinal(self):
        north = destination_point(BARCELONA, 0, 1000)
        east = destination_point(BARCELONA, 90, 1000)
        assert bearing_deg(BARCELONA, north) == pytest.approx(0.0, abs=0.1)
        assert bearing_deg(BARCELONA, east) == pytest.approx(90.0, abs=0.1)

    def test_angle_diff(self):
        assert angle_diff_deg(350, 10) == pytest.approx(20)
        assert angle_diff_deg(10, 350) == pytest.approx(-20)
        assert angle_diff_deg(0, 180) == pytest.approx(180)

    def test_geopoint_validation(self):
        with pytest.raises(ValueError):
            GeoPoint(91, 0)
        with pytest.raises(ValueError):
            GeoPoint(0, 181)


class TestFlightPlan:
    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            FlightPlan(waypoints=[])

    def test_photo_waypoints(self):
        plan = FlightPlan(
            waypoints=[
                Waypoint(BARCELONA),
                Waypoint(BARCELONA, action=WaypointAction.TAKE_PHOTO),
                Waypoint(BARCELONA),
                Waypoint(BARCELONA, action=WaypointAction.TAKE_PHOTO),
            ]
        )
        assert plan.photo_waypoints == [1, 3]

    def test_survey_plan_structure(self):
        plan = survey_plan(BARCELONA, rows=2, photos_per_row=3)
        # Each row: start + photos + end.
        assert len(plan) == 2 * (1 + 3 + 1)
        assert len(plan.photo_waypoints) == 6

    def test_survey_plan_total_length_sane(self):
        plan = survey_plan(BARCELONA, rows=2, row_length_m=1000, row_spacing_m=200)
        # Two 1 km rows plus the crossover: at least 2 km.
        assert plan.total_length_m() > 2000

    def test_survey_validation(self):
        with pytest.raises(ConfigurationError):
            survey_plan(BARCELONA, rows=0)


class TestKinematics:
    def simple_plan(self, distance=2000.0):
        target = destination_point(BARCELONA, 90, distance)
        return FlightPlan(waypoints=[Waypoint(target, capture_radius_m=30)])

    def test_flies_to_waypoint(self):
        plan = self.simple_plan()
        uav = KinematicUav(plan, start=BARCELONA, cruise_speed=25.0)
        captured = []
        for _ in range(1000):
            captured += uav.step(0.2)
            if uav.completed:
                break
        assert captured == [0]
        assert uav.completed
        # ~2000 m at 25 m/s = ~80 s.
        assert uav.state.time == pytest.approx(80, rel=0.2)

    def test_turn_rate_limited(self):
        # Target directly behind: the heading must change gradually.
        target = destination_point(BARCELONA, 270, 3000)
        plan = FlightPlan(waypoints=[Waypoint(target)])
        uav = KinematicUav(plan, start=BARCELONA, max_turn_rate=10.0)
        # Force an initial eastward heading.
        uav._state = type(uav._state)(
            position=BARCELONA, heading=90.0, ground_speed=25.0, time=0.0
        )
        uav.step(1.0)
        assert abs(angle_diff_deg(90.0, uav.state.heading)) <= 10.0 + 1e-9

    def test_distance_remaining_decreases(self):
        plan = self.simple_plan()
        uav = KinematicUav(plan, start=BARCELONA)
        d0 = uav.distance_remaining_m()
        uav.step(5.0)
        assert uav.distance_remaining_m() < d0

    def test_completed_uav_keeps_time(self):
        plan = self.simple_plan(distance=10.0)  # within capture radius soon
        uav = KinematicUav(plan, start=BARCELONA)
        for _ in range(100):
            uav.step(0.5)
            if uav.completed:
                break
        assert uav.completed
        t = uav.state.time
        uav.step(1.0)
        assert uav.state.time == t + 1.0
        assert uav.current_target is None

    def test_validation(self):
        with pytest.raises(ValueError):
            KinematicUav(self.simple_plan(), cruise_speed=0)
        uav = KinematicUav(self.simple_plan())
        with pytest.raises(ValueError):
            uav.step(0)

    def test_eta_positive_before_arrival(self):
        uav = KinematicUav(self.simple_plan(), start=BARCELONA)
        assert uav.eta_to_target_s() == pytest.approx(2000 / 25.0, rel=0.01)
