"""Frame encode/decode tests."""

import pytest

from repro.protocol import Frame, MessageKind
from repro.protocol.frames import MAGIC, FrameFlags
from repro.util.errors import ProtocolError


class TestRoundTrip:
    def test_basic_round_trip(self):
        frame = Frame(
            kind=MessageKind.EVENT,
            source="node-a",
            payload=b"payload",
            channel=7,
            seq=42,
            flags=int(FrameFlags.RELIABLE),
        )
        decoded = Frame.decode(frame.encode())
        assert decoded.kind == MessageKind.EVENT
        assert decoded.source == "node-a"
        assert decoded.payload == b"payload"
        assert decoded.channel == 7
        assert decoded.seq == 42
        assert decoded.flags == int(FrameFlags.RELIABLE)

    def test_empty_payload(self):
        frame = Frame(kind=MessageKind.HEARTBEAT, source="c1")
        decoded = Frame.decode(frame.encode())
        assert decoded.payload == b""

    def test_all_kinds_round_trip(self):
        for kind in MessageKind:
            decoded = Frame.decode(Frame(kind=kind, source="x").encode())
            assert decoded.kind == kind

    def test_unicode_source(self):
        frame = Frame(kind=MessageKind.ANNOUNCE, source="nodé-1")
        assert Frame.decode(frame.encode()).source == "nodé-1"

    def test_header_size_matches_encoding(self):
        frame = Frame(kind=MessageKind.EVENT, source="abc", payload=b"12345")
        assert len(frame.encode()) == frame.header_size + 5


class TestErrors:
    def test_bad_magic(self):
        good = Frame(kind=MessageKind.EVENT, source="a").encode()
        with pytest.raises(ProtocolError, match="magic"):
            Frame.decode(b"XX" + good[2:])

    def test_bad_version(self):
        good = bytearray(Frame(kind=MessageKind.EVENT, source="a").encode())
        good[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            Frame.decode(bytes(good))

    def test_unknown_kind(self):
        good = bytearray(Frame(kind=MessageKind.EVENT, source="a").encode())
        good[3] = 250
        with pytest.raises(ProtocolError, match="kind"):
            Frame.decode(bytes(good))

    def test_too_short(self):
        with pytest.raises(ProtocolError, match="short"):
            Frame.decode(b"UA\x01")

    def test_truncated_source(self):
        frame = Frame(kind=MessageKind.EVENT, source="abcdef")
        encoded = frame.encode()
        with pytest.raises(ProtocolError, match="truncated"):
            Frame.decode(encoded[: frame.header_size - 3])

    def test_source_too_long(self):
        with pytest.raises(ProtocolError, match="too long"):
            Frame(kind=MessageKind.EVENT, source="x" * 300).encode()

    def test_magic_constant(self):
        assert Frame(kind=MessageKind.EVENT, source="a").encode()[:2] == MAGIC
