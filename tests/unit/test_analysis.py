"""Tests for the architectural checker (repro.analysis).

Each rule gets a positive fixture (must fire) and a negative fixture
(must stay silent) under ``tests/unit/analysis_fixtures/``; the fixture
trees mirror the real ``repro/`` layout so path-scoped rules apply with
their default configuration. The meta-test at the bottom is the real
gate: the checker must run clean on the actual source tree.
"""

from pathlib import Path

from repro.analysis import Analyzer, run_analysis
from repro.analysis.cli import main as analysis_main
from repro.analysis.rules.rep001_transport import TransportReachAroundRule
from repro.analysis.rules.rep002_nondeterminism import NondeterminismRule
from repro.analysis.rules.rep003_frames import FrameRegistryRule
from repro.analysis.rules.rep004_blocking import BlockingCallRule
from repro.analysis.rules.rep005_decode_paths import SilentDecodeDropRule
from repro.analysis.rules.rep006_spec_hygiene import SpecHygieneRule

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC_ROOT = Path(__file__).parent.parent.parent / "src"


def run_rule(rule, fixture: str):
    root = FIXTURES / fixture
    analyzer = Analyzer(root, rules=[rule], tests_dir=root / "tests")
    return analyzer.run(paths=[root / "repro"])


class TestRep001Transport:
    def test_fires_on_direct_transport_use(self):
        report = run_rule(TransportReachAroundRule(), "rep001_bad")
        findings = report.unsuppressed
        assert findings, "REP001 must fire on the bad fixture"
        assert all(f.rule == "REP001" for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "socket" in messages
        assert "repro.transport.udp" in messages
        assert "repro.simnet.network" in messages

    def test_silent_on_clean_service(self):
        report = run_rule(TransportReachAroundRule(), "rep001_good")
        assert report.ok
        assert not report.unsuppressed


class TestRep002Nondeterminism:
    def test_fires_on_every_ambient_source(self):
        report = run_rule(NondeterminismRule(), "rep002_bad")
        messages = "\n".join(f.message for f in report.unsuppressed)
        assert "time.time" in messages
        assert "datetime.now" in messages
        assert "random.random" in messages
        assert "os.urandom" in messages
        # `from time import time as wallclock` — the direct-import form.
        assert "imported directly" in messages

    def test_silent_on_clock_and_rng_discipline(self):
        report = run_rule(NondeterminismRule(), "rep002_good")
        assert report.ok
        assert not report.unsuppressed


class TestRep003Frames:
    def test_fires_on_duplicate_value_and_dead_kind(self):
        report = run_rule(FrameRegistryRule(), "rep003_bad")
        messages = [f.message for f in report.unsuppressed]
        assert any("registered more than once" in m and "EVENT" in m for m in messages)
        assert any("ORPHAN" in m and "never produced" in m for m in messages)

    def test_fires_on_untested_schema(self):
        report = run_rule(FrameRegistryRule(), "rep003_bad")
        messages = [f.message for f in report.unsuppressed]
        assert any("LONELY_SCHEMA" in m for m in messages)
        assert not any("HEARTBEAT_SCHEMA" in m for m in messages)

    def test_silent_when_unique_referenced_and_tested(self):
        # CHUNK_SCHEMA has no direct test but composes into
        # HEARTBEAT_SCHEMA — covered by composition, no finding.
        report = run_rule(FrameRegistryRule(), "rep003_good")
        assert report.ok
        assert not report.unsuppressed


class TestRep004Blocking:
    def test_fires_on_sleep_file_io_and_unbounded_acquire(self):
        report = run_rule(BlockingCallRule(), "rep004_bad")
        messages = "\n".join(f.message for f in report.unsuppressed)
        assert "time.sleep" in messages
        assert "builtin `open`" in messages
        assert "acquire" in messages
        # Both the attribute call and the bare imported `sleep(...)`.
        lines = sorted(f.line for f in report.unsuppressed)
        assert len(lines) >= 4

    def test_silent_on_timer_based_handler(self):
        report = run_rule(BlockingCallRule(), "rep004_good")
        assert report.ok
        assert not report.unsuppressed


class TestRep005DecodePaths:
    def test_fires_on_every_silent_swallow_shape(self):
        report = run_rule(SilentDecodeDropRule(), "rep005_bad")
        findings = report.unsuppressed
        assert findings, "REP005 must fire on the bad fixture"
        assert all(f.rule == "REP005" for f in findings)
        messages = "\n".join(f.message for f in findings)
        # `except ProtocolError: pass`, the tuple catch returning None,
        # and `except struct.error: ...` are three separate findings.
        assert len(findings) == 3
        assert "ProtocolError" in messages
        assert "EncodingError" in messages
        assert "struct.error" in messages
        assert "note_malformed" in messages

    def test_silent_when_rejections_are_accounted(self):
        # Tally+quarantine feed, counter call, and re-raise all pass;
        # a swallowed non-decode exception (OSError) is out of scope.
        report = run_rule(SilentDecodeDropRule(), "rep005_good")
        assert report.ok
        assert not report.unsuppressed


class TestRep006SpecHygiene:
    def test_fires_on_every_hygiene_failure_shape(self):
        report = run_rule(SpecHygieneRule(), "rep006_bad")
        findings = report.unsuppressed
        assert findings, "REP006 must fire on the bad fixture"
        assert all(f.rule == "REP006" for f in findings)
        messages = "\n".join(f.message for f in findings)
        # Missing owner, blank owner, two unbounded response() shapes,
        # and the aliased import are five separate findings.
        assert len(findings) == 5
        assert "without owner=" in messages
        assert "owner is blank" in messages
        assert "unbounded response()" in messages
        assert "within=None" in messages

    def test_silent_on_owned_bounded_and_waived_specs(self):
        report = run_rule(SpecHygieneRule(), "rep006_good")
        assert report.ok
        assert not report.unsuppressed
        # The teardown-liveness waiver is kept as an audit trail.
        assert any(
            f.suppressed and "teardown-only" in (f.justification or "")
            for f in report.findings
        )


class TestSuppressions:
    def _analyze(self, tmp_path: Path, source: str):
        target = tmp_path / "repro" / "services" / "svc.py"
        target.parent.mkdir(parents=True)
        target.write_text(source, encoding="utf-8")
        return run_analysis(tmp_path, paths=[tmp_path / "repro"])

    def test_justified_suppression_waives_but_keeps_audit_trail(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import time\n\n"
            "def handler():\n"
            "    # repro: allow[REP004] -- startup barrier, documented\n"
            "    time.sleep(0.1)\n",
        )
        suppressed = [f for f in report.findings if f.suppressed]
        assert any(f.rule == "REP004" for f in suppressed)
        assert all(f.rule != "REP004" for f in report.unsuppressed)
        assert any(
            f.justification == "startup barrier, documented" for f in suppressed
        )

    def test_unjustified_suppression_is_rep000_error(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import time\n\n"
            "def handler():\n"
            "    time.sleep(0.1)  # repro: allow[REP004]\n",
        )
        assert not report.ok
        assert any(
            f.rule == "REP000" and "justification" in f.message
            for f in report.unsuppressed
        )

    def test_rep000_cannot_be_waived(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "# repro: allow-file[REP000] -- trying to silence the meta-rule\n"
            "import time\n\n"
            "def handler():\n"
            "    time.sleep(0.1)  # repro: allow[REP004]\n",
        )
        assert any(f.rule == "REP000" for f in report.unsuppressed)

    def test_stale_suppression_is_a_warning(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "# repro: allow[REP004] -- nothing blocking below anymore\n"
            "VALUE = 1\n",
        )
        stale = [
            f for f in report.findings
            if f.severity == "warning" and "never matched" in f.message
        ]
        assert stale
        # Warnings do not fail the run.
        assert report.ok

    def test_file_scope_suppression_covers_whole_file(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "# repro: allow-file[REP002] -- wall-clock harness by design\n"
            "import time\n\n"
            "A = time.time()\n"
            "B = time.monotonic()\n",
        )
        assert report.ok
        assert sum(1 for f in report.findings if f.suppressed) == 2

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        report = self._analyze(
            tmp_path,
            '"""Docs may show `# repro: allow[REP004]` without effect."""\n'
            "import time\n\n"
            "def handler():\n"
            "    time.sleep(0.1)\n",
        )
        assert not report.ok
        assert any(f.rule == "REP004" for f in report.unsuppressed)


class TestReportAndCli:
    def test_json_report_shape(self, tmp_path):
        target = tmp_path / "repro" / "services" / "svc.py"
        target.parent.mkdir(parents=True)
        target.write_text("import socket\n", encoding="utf-8")
        report = run_analysis(tmp_path, paths=[tmp_path / "repro"])
        doc = report.to_dict()
        assert doc["version"] == 1
        assert doc["ok"] is False
        assert doc["files_scanned"] == 1
        assert set(doc["counts"]) == {
            "total", "suppressed", "unsuppressed", "baselined", "new", "by_rule",
        }
        assert doc["counts"]["by_rule"].get("REP001", 0) >= 1
        finding = doc["findings"][0]
        assert {"rule", "message", "file", "line", "column", "severity",
                "suppressed"} <= set(finding)

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "services" / "svc.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import socket\n", encoding="utf-8")
        assert analysis_main(["check", "--root", str(tmp_path)]) == 1
        assert analysis_main(["check", "--root", str(tmp_path / "missing")]) == 2
        capsys.readouterr()

    def test_list_rules_catalog(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert code in out


class TestCheckerOnRealTree:
    def test_source_tree_is_clean(self):
        """The gate: `python -m repro.analysis` must pass on src/repro."""
        report = run_analysis(SRC_ROOT, paths=[SRC_ROOT / "repro"])
        rendered = "\n".join(f.render() for f in report.unsuppressed)
        assert report.ok, f"architectural violations in src/repro:\n{rendered}"

    def test_every_suppression_in_tree_is_justified(self):
        report = run_analysis(SRC_ROOT, paths=[SRC_ROOT / "repro"])
        for finding in report.findings:
            if finding.suppressed:
                assert finding.justification, (
                    f"{finding.file}:{finding.line} suppression without "
                    f"justification"
                )
