"""Unit suite for the copy-on-write UDP registry.

The registry is the shared state of one wall-clock 'LAN': node → sockaddr
mapping plus multicast membership, published as immutable snapshots that
send paths read without locks. These tests pin down the snapshot
semantics, the deterministic base-port allocator, the unknown-sender path,
and that concurrent mutation/resolution never tears a view.
"""

import socket
import threading
import time

import pytest

from repro.simnet.addressing import Address, GroupName
from repro.transport.udp import UdpNetwork, UdpTransport
from repro.util.errors import TransportError


def addr(node, port=1):
    return Address(node, port)


class TestRegistry:
    def test_register_resolve_unregister(self):
        net = UdpNetwork()
        assert net._resolve(addr("a")) is None
        net._register("a", 1, ("127.0.0.1", 40001))
        assert net._resolve(addr("a")) == ("127.0.0.1", 40001)
        assert net._source_of(("127.0.0.1", 40001)) == addr("a")
        net._unregister("a", 1)
        assert net._resolve(addr("a")) is None
        assert net._source_of(("127.0.0.1", 40001)) is None

    def test_unknown_sender_resolves_to_none(self):
        net = UdpNetwork()
        net._register("a", 1, ("127.0.0.1", 40001))
        assert net._source_of(("127.0.0.1", 49999)) is None

    def test_snapshot_is_immutable_and_republished(self):
        net = UdpNetwork()
        before = net.view
        net._register("a", 1, ("127.0.0.1", 40001))
        after = net.view
        assert after is not before
        # The old snapshot still answers from its own frozen world.
        assert before.node_to_sockaddr.get(("a", 1)) is None
        assert after.node_to_sockaddr[("a", 1)] == ("127.0.0.1", 40001)

    def test_reads_take_no_lock(self):
        net = UdpNetwork()
        net._register("a", 1, ("127.0.0.1", 40001))
        # Hold the mutation lock: resolution must still answer (it reads
        # the published snapshot, never the locked mutable state).
        with net._lock:
            assert net._resolve(addr("a")) == ("127.0.0.1", 40001)
            assert net._source_of(("127.0.0.1", 40001)) == addr("a")

    def test_group_membership_sorted_and_resolved(self):
        net = UdpNetwork()
        group = GroupName("mcast.test")
        for node in ("c", "a", "b"):
            net._register(node, 1, ("127.0.0.1", 41000 + ord(node)))
            net._join(node, 1, group)
        members = net.view.groups[group]
        assert [m[0] for m in members] == ["a", "b", "c"]  # pre-sorted
        assert all(m[2] == ("127.0.0.1", 41000 + ord(m[0])) for m in members)
        net._leave("b", 1, group)
        assert [m[0] for m in net.view.groups[group]] == ["a", "c"]

    def test_unregistered_member_drops_from_resolved_group(self):
        net = UdpNetwork()
        group = GroupName("mcast.test")
        net._register("a", 1, ("127.0.0.1", 41001))
        net._register("b", 1, ("127.0.0.1", 41002))
        net._join("a", 1, group)
        net._join("b", 1, group)
        # 'b' closes without leaving: fan-out must skip it.
        net._unregister("b", 1)
        assert [m[0] for m in net.view.groups[group]] == ["a"]
        assert net._members(group) == {("a", 1)}

    def test_concurrent_mutation_and_resolution(self):
        """Register/unregister storms while readers resolve: no exception,
        no torn view, correct final state."""
        net = UdpNetwork()
        group = GroupName("mcast.race")
        stop = threading.Event()
        errors = []

        def churn(node, base):
            try:
                for i in range(300):
                    net._register(node, 1, ("127.0.0.1", base + (i % 7)))
                    net._join(node, 1, group)
                    if i % 3 == 0:
                        net._leave(node, 1, group)
                    net._unregister(node, 1)
                net._register(node, 1, ("127.0.0.1", base))
                net._join(node, 1, group)
            except Exception as exc:  # pragma: no cover — the assertion
                errors.append(exc)

        def read():
            try:
                while not stop.is_set():
                    view = net.view
                    # A snapshot must always be internally consistent:
                    # every resolved group member is in the node map.
                    for _, _, sockaddr in view.groups.get(group, ()):
                        assert sockaddr in view.sockaddr_to_node
                    net._resolve(addr("w0"))
                    net._members(group)
            except Exception as exc:  # pragma: no cover — the assertion
                errors.append(exc)

        writers = [
            threading.Thread(target=churn, args=(f"w{i}", 42000 + 10 * i))
            for i in range(4)
        ]
        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in writers + readers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        assert net._members(group) == {(f"w{i}", 1) for i in range(4)}
        for i in range(4):
            assert net._resolve(addr(f"w{i}")) == ("127.0.0.1", 42000 + 10 * i)


def _free_port_block(span: int) -> int:
    """A base port with ``span`` free ports above it (best effort)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    probe.bind(("127.0.0.1", 0))
    base = probe.getsockname()[1]
    probe.close()
    return base


class TestDeterministicPorts:
    def test_ephemeral_by_default(self):
        net = UdpNetwork()
        t = net.create_transport("n1")
        t.open(1, lambda payload, source: None)
        try:
            sockaddr = net._resolve(addr("n1"))
            assert sockaddr is not None and sockaddr[1] != 0
        finally:
            t.close()

    def test_base_port_binds_deterministic_sequence(self):
        base = _free_port_block(3)
        net = UdpNetwork(base_port=base)
        transports = [net.create_transport(f"n{i}") for i in range(3)]
        try:
            for t in transports:
                t.open(1, lambda payload, source: None)
            got = [net._resolve(addr(f"n{i}", 1))[1] for i in range(3)]
            assert got == [base, base + 1, base + 2]
        finally:
            for t in transports:
                t.close()

    def test_base_port_collision_raises(self):
        base = _free_port_block(2)
        clash = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        clash.bind(("127.0.0.1", base))  # squat the base port
        net = UdpNetwork(base_port=base)
        t = net.create_transport("n1")
        try:
            with pytest.raises(TransportError):
                t.open(1, lambda payload, source: None)
            # The node never entered the registry.
            assert net._resolve(addr("n1")) is None
        finally:
            clash.close()

    def test_collision_consumes_offset(self):
        """After a failed bind the allocator moves on: the next transport
        gets the next port, so one squatted port cannot wedge the LAN."""
        base = _free_port_block(3)
        clash = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        clash.bind(("127.0.0.1", base))
        net = UdpNetwork(base_port=base)
        bad = net.create_transport("bad")
        good = net.create_transport("good")
        try:
            with pytest.raises(TransportError):
                bad.open(1, lambda payload, source: None)
            good.open(1, lambda payload, source: None)
            assert net._resolve(addr("good"))[1] == base + 1
        finally:
            clash.close()
            good.close()


class TestTransportDelivery:
    def test_unicast_and_unknown_sender(self):
        net = UdpNetwork()
        received = []
        done = threading.Event()

        def on_rx(payload, source):
            received.append((bytes(payload), source))
            done.set()

        rx = net.create_transport("rx")
        tx = net.create_transport("tx")
        rx.open(1, on_rx)
        tx.open(1, lambda payload, source: None)
        try:
            tx.send_bytes(addr("rx"), b"hello")
            assert done.wait(2.0)
            assert received == [(b"hello", addr("tx"))]

            # A datagram from a socket outside the registry arrives with
            # the sentinel unknown source, not an exception.
            done.clear()
            received.clear()
            rogue = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            rogue.bind(("127.0.0.1", 0))
            rogue.sendto(b"mystery", net._resolve(addr("rx")))
            assert done.wait(2.0)
            rogue.close()
            assert received == [(b"mystery", Address("unknown", 0))]
        finally:
            tx.close()
            rx.close()

    def test_multicast_skips_self_and_unknown_destination_drops(self):
        net = UdpNetwork()
        group = GroupName("mcast.room")
        hits = {"a": [], "b": []}
        events = {"a": threading.Event(), "b": threading.Event()}

        def make_rx(name):
            def on_rx(payload, source):
                hits[name].append(bytes(payload))
                events[name].set()
            return on_rx

        ta = net.create_transport("a")
        tb = net.create_transport("b")
        ta.open(1, make_rx("a"))
        tb.open(1, make_rx("b"))
        try:
            ta.join(group)
            tb.join(group)
            ta.send_bytes(group, b"fanout")
            assert events["b"].wait(2.0)
            time.sleep(0.05)
            assert hits["b"] == [b"fanout"]
            assert hits["a"] == []  # sender excluded from its own fan-out
            # Unknown unicast destination: silently dropped, like a LAN.
            ta.send_bytes(addr("ghost"), b"lost")
        finally:
            ta.close()
            tb.close()

    def test_oversized_payload_rejected(self):
        net = UdpNetwork()
        t = net.create_transport("n")
        t.open(1, lambda payload, source: None)
        try:
            with pytest.raises(TransportError):
                t.send_bytes(addr("n"), b"x" * (UdpTransport(net, "m").mtu + 1))
        finally:
            t.close()
