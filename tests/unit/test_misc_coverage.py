"""Small behaviours not pinned elsewhere: codec registry, policy budgets,
CPU model, storage-of-logs, least-loaded tie-breaks, packet helpers."""


from repro.encoding.codec import available_codecs, get_codec, register_codec
from repro.sched.model import CpuModel, TaskRecord
from repro.sched.policies import DeadlinePolicy
from repro.simnet.addressing import Address
from repro.simnet.packet import WIRE_OVERHEAD_BYTES, Packet


class TestCodecRegistry:
    def test_available_lists_builtins(self):
        names = available_codecs()
        assert "binary" in names and "json" in names

    def test_custom_codec_registration(self):
        class NullCodec:
            name = "null-test"

            def encode(self, datatype, value):
                return b""

            def decode(self, datatype, data):
                return None

        register_codec(NullCodec())
        assert get_codec("null-test").name == "null-test"
        assert "null-test" in available_codecs()


class TestDeadlinePolicy:
    def test_budgets_default_and_override(self):
        policy = DeadlinePolicy()
        assert policy.budget_for("event") == 0.005
        assert policy.budget_for("unknown-label") == policy.default_budget
        custom = DeadlinePolicy(budgets={"event": 0.001}, default_budget=9.0)
        assert custom.budget_for("event") == 0.001
        assert custom.budget_for("file") == 9.0


class TestCpuModel:
    def test_costs_and_default(self):
        model = CpuModel(costs={"event": 0.01}, default_cost=0.5)
        assert model.cost_for("event") == 0.01
        assert model.cost_for("other") == 0.5

    def test_task_record_derived_metrics(self):
        record = TaskRecord(
            label="event", enqueued_at=1.0, started_at=1.5, finished_at=2.5
        )
        assert record.queue_delay == 0.5
        assert record.response_time == 1.5


class TestPacketHelpers:
    def test_size_includes_overhead(self):
        packet = Packet(Address("a", 1), Address("b", 2), b"12345")
        assert packet.size == 5 + WIRE_OVERHEAD_BYTES

    def test_is_multicast(self):
        from repro.simnet.addressing import GroupName

        unicast = Packet(Address("a", 1), Address("b", 2), b"")
        multicast = Packet(Address("a", 1), GroupName("mcast.x"), b"")
        assert not unicast.is_multicast
        assert multicast.is_multicast


class TestStorageLogDelete:
    def test_variable_log_listed_but_not_deletable_as_object(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import ProbeService

        from repro import SimRuntime
        from repro.services import StorageService

        runtime = SimRuntime(seed=1)
        node = runtime.add_container("node")
        storage = StorageService()
        probe = ProbeService("probe")
        node.install_service(storage)
        node.install_service(probe)
        runtime.start()
        runtime.run_for(1.0)
        probe.call_recorded("storage.log_variable", ("some.var",))
        runtime.run_for(0.5)
        probe.call_recorded("storage.list")
        runtime.run_for(0.5)
        assert probe.results[-1] == ["some.var"]
        # delete() covers stored objects, not live logs.
        probe.call_recorded("storage.delete", ("some.var",))
        runtime.run_for(0.5)
        assert probe.results[-1] is False


class TestLeastLoadedTieBreak:
    def test_equal_load_breaks_by_container_id(self):
        from repro.primitives.invocation import InvocationManager
        from tests.unit.test_primitives_managers import FakeHost

        host = FakeHost()
        for name in ["zeta", "alpha"]:
            host.add_remote(
                name, functions=[{"name": "f", "params": [], "result": ""}]
            )
        mgr = InvocationManager(host)
        mgr.call("f", binding="least_loaded")
        peer, _, _ = host.reliables[0]
        assert peer == "alpha"  # deterministic tie-break


class TestFrameFlagsEnum:
    def test_flags_compose(self):
        from repro.protocol.frames import FrameFlags

        both = FrameFlags.RELIABLE | FrameFlags.RETRANSMIT
        assert both & FrameFlags.RELIABLE
        assert both & FrameFlags.RETRANSMIT
        assert int(FrameFlags.NONE) == 0
