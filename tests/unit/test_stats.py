"""Tests for the statistics helpers."""

import pytest

from repro.util.stats import percentile, summarize


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_extremes(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100
        assert percentile(values, 99) == 99

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_unsorted_input(self):
        assert percentile([9, 1, 5, 3, 7], 50) == 5


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary == {"n": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}

    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0
