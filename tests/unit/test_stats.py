"""Tests for the statistics helpers."""

import pytest

from repro.util.stats import percentile, summarize


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_extremes(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100
        assert percentile(values, 99) == 99

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_unsorted_input(self):
        assert percentile([9, 1, 5, 3, 7], 50) == 5

    def test_interpolates_between_neighbours(self):
        # Even n: the median falls between the two middle samples.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        # Rank 0.75 * 3 = 2.25 -> 3 + 0.25 * (4 - 3).
        assert percentile([1.0, 2.0, 3.0, 4.0], 75) == pytest.approx(3.25)
        # p99 of 1..100 interpolates, it does not snap to a sample.
        assert percentile(list(range(1, 101)), 99) == pytest.approx(99.01)

    def test_duplicates(self):
        assert percentile([5.0, 5.0, 5.0], 50) == 5.0
        assert percentile([1.0, 5.0, 5.0, 5.0], 0) == 1.0
        assert percentile([0.0, 0.0, 10.0, 10.0], 50) == pytest.approx(5.0)

    def test_extremes_are_exact_min_max(self):
        values = [3.7, -1.2, 9.9, 0.4]
        assert percentile(values, 0) == -1.2
        assert percentile(values, 100) == 9.9

    def test_monotone_in_p(self):
        values = [4.0, 1.0, 3.0, 2.0, 8.0]
        samples = [percentile(values, p) for p in range(0, 101, 5)]
        assert samples == sorted(samples)
        assert samples[0] == 1.0
        assert samples[-1] == 8.0


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary == {"n": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}

    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0
