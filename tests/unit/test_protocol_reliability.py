"""Reliable channel tests driven with a manual clock and an in-memory pipe."""

import pytest

from repro.protocol import MessageKind, ReliableReceiver, ReliableSender, RetransmitPolicy
from repro.protocol.frames import Frame
from repro.protocol.reliability import decode_ack, encode_ack
from repro.util import ManualClock, SeededRng
from repro.util.errors import ProtocolError


class Pipe:
    """Connects a sender and receiver with scriptable loss in both directions."""

    def __init__(self, ordered=True, policy=None):
        self.clock = ManualClock()
        self.delivered = []
        self.failed = []
        self.drop_data = 0  # drop the next N data frames
        self.drop_acks = 0
        self.wire_frames = []

        self.receiver = ReliableReceiver(
            source="tx",
            channel=1,
            emit_ack=self._ack_to_sender,
            deliver=lambda f: self.delivered.append(f.payload),
            ordered=ordered,
            ack_source="rx",
        )
        self.sender = ReliableSender(
            clock=self.clock,
            source="tx",
            channel=1,
            emit=self._data_to_receiver,
            on_failure=lambda seq, f: self.failed.append(seq),
            policy=policy or RetransmitPolicy(initial_rto=0.1, window=4, max_retries=3),
        )

    def _data_to_receiver(self, frame):
        self.wire_frames.append(frame)
        if self.drop_data > 0:
            self.drop_data -= 1
            return
        self.receiver.on_frame(frame)

    def _ack_to_sender(self, frame):
        if self.drop_acks > 0:
            self.drop_acks -= 1
            return
        self.sender.on_ack_frame(frame)

    def tick(self, dt):
        self.clock.advance(dt)
        self.sender.poll()


class TestAckEncoding:
    def test_round_trip(self):
        assert decode_ack(encode_ack([1, 5, 9])) == [1, 5, 9]
        assert decode_ack(encode_ack([])) == []

    def test_bad_payloads(self):
        with pytest.raises(ProtocolError):
            decode_ack(b"\x01")
        with pytest.raises(ProtocolError):
            decode_ack(encode_ack([1, 2]) + b"x")


class TestHappyPath:
    def test_send_and_deliver(self):
        pipe = Pipe()
        pipe.sender.send(MessageKind.EVENT, b"one")
        pipe.sender.send(MessageKind.EVENT, b"two")
        assert pipe.delivered == [b"one", b"two"]
        assert pipe.sender.idle

    def test_seqs_are_sequential(self):
        pipe = Pipe()
        assert pipe.sender.send(MessageKind.EVENT, b"a") == 1
        assert pipe.sender.send(MessageKind.EVENT, b"b") == 2

    def test_no_retransmit_without_loss(self):
        pipe = Pipe()
        for i in range(10):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        pipe.tick(1.0)
        assert pipe.sender.retransmitted_frames == 0

    def test_next_wakeup_none_when_idle(self):
        pipe = Pipe()
        assert pipe.sender.next_wakeup() is None
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.sender.next_wakeup() == pytest.approx(0.1)


class TestRetransmission:
    def test_lost_frame_is_retransmitted_and_delivered(self):
        pipe = Pipe()
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.delivered == []
        pipe.tick(0.11)
        assert pipe.delivered == [b"x"]
        assert pipe.sender.retransmitted_frames == 1
        assert pipe.sender.idle

    def test_lost_ack_causes_duplicate_but_single_delivery(self):
        pipe = Pipe()
        pipe.drop_acks = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.delivered == [b"x"]
        pipe.tick(0.11)  # sender retransmits; receiver re-acks
        assert pipe.delivered == [b"x"]
        assert pipe.receiver.duplicate_frames == 1
        assert pipe.sender.idle

    def test_exponential_backoff(self):
        pipe = Pipe()
        pipe.drop_data = 100  # black hole
        pipe.sender.send(MessageKind.EVENT, b"x")
        pipe.tick(0.1)  # retry 1, rto -> 0.2
        assert pipe.sender.retransmitted_frames == 1
        pipe.tick(0.1)  # only 0.1 elapsed; not due yet
        assert pipe.sender.retransmitted_frames == 1
        pipe.tick(0.1)
        assert pipe.sender.retransmitted_frames == 2

    def test_failure_after_max_retries(self):
        pipe = Pipe()
        pipe.drop_data = 100
        pipe.sender.send(MessageKind.EVENT, b"x")
        for _ in range(10):
            pipe.tick(1.0)
        assert pipe.failed == [1]
        assert pipe.sender.failed_frames == 1
        assert pipe.sender.idle

    def test_retransmit_flag_set(self):
        pipe = Pipe()
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        pipe.tick(0.11)
        from repro.protocol.frames import FrameFlags

        assert pipe.wire_frames[1].flags & int(FrameFlags.RETRANSMIT)


class TestWindow:
    def test_backlog_drains_on_ack(self):
        # Window of 4: the 6 sends must all eventually arrive.
        pipe = Pipe()
        for i in range(6):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        assert pipe.delivered == [bytes([i]) for i in range(6)]

    def test_window_blocks_when_acks_missing(self):
        pipe = Pipe()
        pipe.drop_data = 100
        for i in range(6):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        # Only the window's worth went to the wire.
        assert len(pipe.wire_frames) == 4
        assert pipe.sender.unacked == 6


class TestOrdering:
    def feed(self, receiver, seqs):
        for seq in seqs:
            receiver.on_frame(
                Frame(
                    kind=MessageKind.EVENT,
                    source="tx",
                    channel=1,
                    seq=seq,
                    payload=str(seq).encode(),
                )
            )

    def test_ordered_mode_restores_order(self):
        delivered = []
        rx = ReliableReceiver(
            "tx", 1, emit_ack=lambda f: None, deliver=lambda f: delivered.append(f.seq)
        )
        self.feed(rx, [2, 3, 1, 5, 4])
        assert delivered == [1, 2, 3, 4, 5]

    def test_unordered_mode_delivers_immediately(self):
        delivered = []
        rx = ReliableReceiver(
            "tx",
            1,
            emit_ack=lambda f: None,
            deliver=lambda f: delivered.append(f.seq),
            ordered=False,
        )
        self.feed(rx, [2, 1, 3])
        assert delivered == [2, 1, 3]

    def test_unordered_mode_still_dedupes(self):
        delivered = []
        rx = ReliableReceiver(
            "tx",
            1,
            emit_ack=lambda f: None,
            deliver=lambda f: delivered.append(f.seq),
            ordered=False,
        )
        self.feed(rx, [1, 2, 2, 1, 3, 3])
        assert delivered == [1, 2, 3]

    def test_receiver_rejects_foreign_stream(self):
        rx = ReliableReceiver("tx", 1, emit_ack=lambda f: None, deliver=lambda f: None)
        with pytest.raises(ProtocolError):
            rx.on_frame(Frame(kind=MessageKind.EVENT, source="other", channel=1, seq=1))

    def test_acks_even_duplicates(self):
        acks = []
        rx = ReliableReceiver(
            "tx", 1, emit_ack=lambda f: acks.append(decode_ack(f.payload)), deliver=lambda f: None
        )
        self.feed(rx, [1, 1])
        assert acks == [[1], [1]]


class TestPolicyValidation:
    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(initial_rto=0)
        with pytest.raises(ValueError):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetransmitPolicy(window=0)


class TestRandomLoss:
    def test_full_delivery_under_heavy_random_loss(self):
        rng = SeededRng(99)
        pipe = Pipe(policy=RetransmitPolicy(initial_rto=0.05, window=8, max_retries=20))
        original_data = pipe._data_to_receiver

        def lossy_data(frame):
            pipe.wire_frames.append(frame)
            if not rng.chance(0.4):
                pipe.receiver.on_frame(frame)

        pipe.sender._emit = lossy_data
        payloads = [bytes([i]) for i in range(30)]
        for p in payloads:
            pipe.sender.send(MessageKind.EVENT, p)
        for _ in range(400):
            pipe.tick(0.05)
            if pipe.sender.idle:
                break
        assert pipe.delivered == payloads
        assert pipe.failed == []


class CoalescedPipe:
    """Sender/receiver pair with a simulated clock so the receiver's
    ACK-coalescing timer can fire."""

    def __init__(self, ack_delay=0.01, max_pending=64, policy=None):
        from repro.sim import Simulator

        self.sim = Simulator()
        self.delivered = []
        self.acks = []  # decoded seq lists, in emission order
        self.receiver = ReliableReceiver(
            source="tx",
            channel=1,
            emit_ack=self._ack_to_sender,
            deliver=lambda f: self.delivered.append(f.payload),
            ack_source="rx",
            ack_delay=ack_delay,
            timers=self.sim,
            max_pending_acks=max_pending,
        )
        self.sender = ReliableSender(
            clock=self.sim,
            source="tx",
            channel=1,
            emit=lambda f: self.receiver.on_frame(f),
            policy=policy or RetransmitPolicy(initial_rto=0.1, window=8),
        )

    def _ack_to_sender(self, frame):
        self.acks.append(decode_ack(frame.payload))
        self.sender.on_ack_frame(frame)


class TestAckCoalescing:
    def test_merges_seqs_into_one_ack(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        for i in range(5):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        # Nothing acked yet: the delay window is open.
        assert pipe.acks == []
        assert pipe.receiver.pending_ack_count == 5
        pipe.sim.run(until=0.02)
        assert pipe.acks == [[1, 2, 3, 4, 5]]
        assert pipe.sender.idle
        assert pipe.receiver.ack_frames_sent == 1

    def test_max_delay_bounds_ack_latency(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        pipe.sender.send(MessageKind.EVENT, b"x")
        pipe.sim.run(until=0.0099)
        assert pipe.acks == []
        pipe.sim.run(until=0.0101)
        assert pipe.acks == [[1]]

    def test_pending_cap_forces_early_flush(self):
        pipe = CoalescedPipe(ack_delay=10.0, max_pending=3)
        for i in range(7):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        # Two cap-triggered flushes at 3 pending; the 7th waits for a timer.
        assert pipe.acks == [[1, 2, 3], [4, 5, 6]]
        assert pipe.receiver.pending_ack_count == 1

    def test_take_pending_acks_piggyback_path(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        for i in range(3):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        taken = pipe.receiver.take_pending_acks()
        assert len(taken) == 1
        assert taken[0].kind == MessageKind.ACK
        assert decode_ack(taken[0].payload) == [1, 2, 3]
        assert pipe.receiver.pending_ack_count == 0
        # The cancelled timer must not re-ack the same seqs later.
        pipe.sim.run(until=0.1)
        assert pipe.acks == []
        assert pipe.receiver.take_pending_acks() == []

    def test_duplicate_seqs_merge_once(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        frame = Frame(
            kind=MessageKind.EVENT, source="tx", payload=b"x", channel=1, seq=1,
        )
        pipe.receiver.on_frame(frame)
        pipe.receiver.on_frame(frame)  # duplicate still triggers an ack
        pipe.sim.run(until=0.02)
        assert pipe.acks == [[1]]

    def test_zero_delay_keeps_seed_per_frame_acks(self):
        # ack_delay=0 must behave exactly like the seed: one immediate ACK
        # per data frame, no timer involvement.
        pipe = Pipe()
        acks = []
        original = pipe.receiver._emit_ack
        pipe.receiver._emit_ack = lambda f: (acks.append(decode_ack(f.payload)), original(f))
        pipe.sender.send(MessageKind.EVENT, b"a")
        pipe.sender.send(MessageKind.EVENT, b"b")
        assert acks == [[1], [2]]
        assert pipe.sender.idle

    def test_retransmit_timing_unchanged_when_uncoalesced(self):
        pipe = Pipe(policy=RetransmitPolicy(initial_rto=0.1, window=4, max_retries=3))
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.delivered == []
        pipe.tick(0.09)
        assert len(pipe.wire_frames) == 1  # RTO not yet expired
        pipe.tick(0.02)
        assert len(pipe.wire_frames) == 2  # retransmitted at ~0.1s as before
        assert pipe.delivered == [b"x"]

    def test_coalescing_needs_timers(self):
        with pytest.raises(ValueError):
            ReliableReceiver(
                "tx", 1, emit_ack=lambda f: None, deliver=lambda f: None,
                ack_delay=0.01,
            )


class TestBoundedBacklog:
    def make_sender(self, window=2, max_backlog=3):
        from repro.util import ManualClock

        clock = ManualClock()
        wire = []
        shed = []
        sender = ReliableSender(
            clock=clock,
            source="tx",
            channel=1,
            emit=wire.append,
            policy=RetransmitPolicy(
                initial_rto=0.1, window=window, max_backlog=max_backlog
            ),
            on_overflow=shed.append,
        )
        return clock, sender, wire, shed

    def test_sheds_beyond_backlog_bound(self):
        clock, sender, wire, shed = self.make_sender(window=2, max_backlog=3)
        seqs = [sender.send(MessageKind.EVENT, bytes([i])) for i in range(8)]
        # window(2) in flight + backlog(3) admitted; 3 shed with seq 0.
        assert seqs == [1, 2, 3, 4, 5, 0, 0, 0]
        assert sender.shed_frames == 3
        assert len(shed) == 3
        assert all(f.seq == 0 for f in shed)
        assert sender.unacked == 5

    def test_shedding_never_consumes_seqs(self):
        # The wedge hazard: a shed frame must not burn a sequence number,
        # or the ordered receiver waits forever on the gap.
        clock, sender, wire, shed = self.make_sender(window=1, max_backlog=1)
        assert sender.send(MessageKind.EVENT, b"a") == 1
        assert sender.send(MessageKind.EVENT, b"b") == 2
        assert sender.send(MessageKind.EVENT, b"c") == 0  # shed
        sender.on_acked([1])
        # The next admitted send continues the contiguous seq space.
        assert sender.send(MessageKind.EVENT, b"d") == 3

    def test_unbounded_backlog_by_default(self):
        clock, sender, wire, shed = self.make_sender(window=1, max_backlog=None)
        seqs = [sender.send(MessageKind.EVENT, bytes([i])) for i in range(50)]
        assert seqs == list(range(1, 51))
        assert sender.shed_frames == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(max_backlog=0)
