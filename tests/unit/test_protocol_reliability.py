"""Reliable channel tests driven with a manual clock and an in-memory pipe."""

import pytest

from repro.protocol import MessageKind, ReliableReceiver, ReliableSender, RetransmitPolicy
from repro.protocol.frames import Frame
from repro.protocol.reliability import decode_ack, encode_ack
from repro.util import ManualClock, SeededRng
from repro.util.errors import ProtocolError


class Pipe:
    """Connects a sender and receiver with scriptable loss in both directions."""

    def __init__(self, ordered=True, policy=None):
        self.clock = ManualClock()
        self.delivered = []
        self.failed = []
        self.drop_data = 0  # drop the next N data frames
        self.drop_acks = 0
        self.wire_frames = []

        self.receiver = ReliableReceiver(
            source="tx",
            channel=1,
            emit_ack=self._ack_to_sender,
            deliver=lambda f: self.delivered.append(f.payload),
            ordered=ordered,
            ack_source="rx",
        )
        self.sender = ReliableSender(
            clock=self.clock,
            source="tx",
            channel=1,
            emit=self._data_to_receiver,
            on_failure=lambda seq, f: self.failed.append(seq),
            policy=policy or RetransmitPolicy(initial_rto=0.1, window=4, max_retries=3),
        )

    def _data_to_receiver(self, frame):
        self.wire_frames.append(frame)
        if self.drop_data > 0:
            self.drop_data -= 1
            return
        self.receiver.on_frame(frame)

    def _ack_to_sender(self, frame):
        if self.drop_acks > 0:
            self.drop_acks -= 1
            return
        self.sender.on_ack_frame(frame)

    def tick(self, dt):
        self.clock.advance(dt)
        self.sender.poll()


class TestAckEncoding:
    def test_round_trip(self):
        assert decode_ack(encode_ack([1, 5, 9])) == [1, 5, 9]
        assert decode_ack(encode_ack([])) == []

    def test_bad_payloads(self):
        with pytest.raises(ProtocolError):
            decode_ack(b"\x01")
        with pytest.raises(ProtocolError):
            decode_ack(encode_ack([1, 2]) + b"x")


class TestHappyPath:
    def test_send_and_deliver(self):
        pipe = Pipe()
        pipe.sender.send(MessageKind.EVENT, b"one")
        pipe.sender.send(MessageKind.EVENT, b"two")
        assert pipe.delivered == [b"one", b"two"]
        assert pipe.sender.idle

    def test_seqs_are_sequential(self):
        pipe = Pipe()
        assert pipe.sender.send(MessageKind.EVENT, b"a") == 1
        assert pipe.sender.send(MessageKind.EVENT, b"b") == 2

    def test_no_retransmit_without_loss(self):
        pipe = Pipe()
        for i in range(10):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        pipe.tick(1.0)
        assert pipe.sender.retransmitted_frames == 0

    def test_next_wakeup_none_when_idle(self):
        pipe = Pipe()
        assert pipe.sender.next_wakeup() is None
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.sender.next_wakeup() == pytest.approx(0.1)


class TestRetransmission:
    def test_lost_frame_is_retransmitted_and_delivered(self):
        pipe = Pipe()
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.delivered == []
        pipe.tick(0.11)
        assert pipe.delivered == [b"x"]
        assert pipe.sender.retransmitted_frames == 1
        assert pipe.sender.idle

    def test_lost_ack_causes_duplicate_but_single_delivery(self):
        pipe = Pipe()
        pipe.drop_acks = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.delivered == [b"x"]
        pipe.tick(0.11)  # sender retransmits; receiver re-acks
        assert pipe.delivered == [b"x"]
        assert pipe.receiver.duplicate_frames == 1
        assert pipe.sender.idle

    def test_exponential_backoff(self):
        pipe = Pipe()
        pipe.drop_data = 100  # black hole
        pipe.sender.send(MessageKind.EVENT, b"x")
        pipe.tick(0.1)  # retry 1, rto -> 0.2
        assert pipe.sender.retransmitted_frames == 1
        pipe.tick(0.1)  # only 0.1 elapsed; not due yet
        assert pipe.sender.retransmitted_frames == 1
        pipe.tick(0.1)
        assert pipe.sender.retransmitted_frames == 2

    def test_failure_after_max_retries(self):
        pipe = Pipe()
        pipe.drop_data = 100
        pipe.sender.send(MessageKind.EVENT, b"x")
        for _ in range(10):
            pipe.tick(1.0)
        assert pipe.failed == [1]
        assert pipe.sender.failed_frames == 1
        assert pipe.sender.idle

    def test_retransmit_flag_set(self):
        pipe = Pipe()
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        pipe.tick(0.11)
        from repro.protocol.frames import FrameFlags

        assert pipe.wire_frames[1].flags & int(FrameFlags.RETRANSMIT)


class TestWindow:
    def test_backlog_drains_on_ack(self):
        # Window of 4: the 6 sends must all eventually arrive.
        pipe = Pipe()
        for i in range(6):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        assert pipe.delivered == [bytes([i]) for i in range(6)]

    def test_window_blocks_when_acks_missing(self):
        pipe = Pipe()
        pipe.drop_data = 100
        for i in range(6):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        # Only the window's worth went to the wire.
        assert len(pipe.wire_frames) == 4
        assert pipe.sender.unacked == 6


class TestOrdering:
    def feed(self, receiver, seqs):
        for seq in seqs:
            receiver.on_frame(
                Frame(
                    kind=MessageKind.EVENT,
                    source="tx",
                    channel=1,
                    seq=seq,
                    payload=str(seq).encode(),
                )
            )

    def test_ordered_mode_restores_order(self):
        delivered = []
        rx = ReliableReceiver(
            "tx", 1, emit_ack=lambda f: None, deliver=lambda f: delivered.append(f.seq)
        )
        self.feed(rx, [2, 3, 1, 5, 4])
        assert delivered == [1, 2, 3, 4, 5]

    def test_unordered_mode_delivers_immediately(self):
        delivered = []
        rx = ReliableReceiver(
            "tx",
            1,
            emit_ack=lambda f: None,
            deliver=lambda f: delivered.append(f.seq),
            ordered=False,
        )
        self.feed(rx, [2, 1, 3])
        assert delivered == [2, 1, 3]

    def test_unordered_mode_still_dedupes(self):
        delivered = []
        rx = ReliableReceiver(
            "tx",
            1,
            emit_ack=lambda f: None,
            deliver=lambda f: delivered.append(f.seq),
            ordered=False,
        )
        self.feed(rx, [1, 2, 2, 1, 3, 3])
        assert delivered == [1, 2, 3]

    def test_receiver_rejects_foreign_stream(self):
        rx = ReliableReceiver("tx", 1, emit_ack=lambda f: None, deliver=lambda f: None)
        with pytest.raises(ProtocolError):
            rx.on_frame(Frame(kind=MessageKind.EVENT, source="other", channel=1, seq=1))

    def test_acks_even_duplicates(self):
        acks = []
        rx = ReliableReceiver(
            "tx", 1, emit_ack=lambda f: acks.append(decode_ack(f.payload)), deliver=lambda f: None
        )
        self.feed(rx, [1, 1])
        assert acks == [[1], [1]]


class TestPolicyValidation:
    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(initial_rto=0)
        with pytest.raises(ValueError):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetransmitPolicy(window=0)


class TestRandomLoss:
    def test_full_delivery_under_heavy_random_loss(self):
        rng = SeededRng(99)
        pipe = Pipe(policy=RetransmitPolicy(initial_rto=0.05, window=8, max_retries=20))
        original_data = pipe._data_to_receiver

        def lossy_data(frame):
            pipe.wire_frames.append(frame)
            if not rng.chance(0.4):
                pipe.receiver.on_frame(frame)

        pipe.sender._emit = lossy_data
        payloads = [bytes([i]) for i in range(30)]
        for p in payloads:
            pipe.sender.send(MessageKind.EVENT, p)
        for _ in range(400):
            pipe.tick(0.05)
            if pipe.sender.idle:
                break
        assert pipe.delivered == payloads
        assert pipe.failed == []


class CoalescedPipe:
    """Sender/receiver pair with a simulated clock so the receiver's
    ACK-coalescing timer can fire."""

    def __init__(self, ack_delay=0.01, max_pending=64, policy=None):
        from repro.sim import Simulator

        self.sim = Simulator()
        self.delivered = []
        self.acks = []  # decoded seq lists, in emission order
        self.receiver = ReliableReceiver(
            source="tx",
            channel=1,
            emit_ack=self._ack_to_sender,
            deliver=lambda f: self.delivered.append(f.payload),
            ack_source="rx",
            ack_delay=ack_delay,
            timers=self.sim,
            max_pending_acks=max_pending,
        )
        self.sender = ReliableSender(
            clock=self.sim,
            source="tx",
            channel=1,
            emit=lambda f: self.receiver.on_frame(f),
            policy=policy or RetransmitPolicy(initial_rto=0.1, window=8),
        )

    def _ack_to_sender(self, frame):
        self.acks.append(decode_ack(frame.payload))
        self.sender.on_ack_frame(frame)


class TestAckCoalescing:
    def test_merges_seqs_into_one_ack(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        for i in range(5):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        # Nothing acked yet: the delay window is open.
        assert pipe.acks == []
        assert pipe.receiver.pending_ack_count == 5
        pipe.sim.run(until=0.02)
        assert pipe.acks == [[1, 2, 3, 4, 5]]
        assert pipe.sender.idle
        assert pipe.receiver.ack_frames_sent == 1

    def test_max_delay_bounds_ack_latency(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        pipe.sender.send(MessageKind.EVENT, b"x")
        pipe.sim.run(until=0.0099)
        assert pipe.acks == []
        pipe.sim.run(until=0.0101)
        assert pipe.acks == [[1]]

    def test_pending_cap_forces_early_flush(self):
        pipe = CoalescedPipe(ack_delay=10.0, max_pending=3)
        for i in range(7):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        # Two cap-triggered flushes at 3 pending; the 7th waits for a timer.
        assert pipe.acks == [[1, 2, 3], [4, 5, 6]]
        assert pipe.receiver.pending_ack_count == 1

    def test_take_pending_acks_piggyback_path(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        for i in range(3):
            pipe.sender.send(MessageKind.EVENT, bytes([i]))
        taken = pipe.receiver.take_pending_acks()
        assert len(taken) == 1
        assert taken[0].kind == MessageKind.ACK
        assert decode_ack(taken[0].payload) == [1, 2, 3]
        assert pipe.receiver.pending_ack_count == 0
        # The cancelled timer must not re-ack the same seqs later.
        pipe.sim.run(until=0.1)
        assert pipe.acks == []
        assert pipe.receiver.take_pending_acks() == []

    def test_duplicate_seqs_merge_once(self):
        pipe = CoalescedPipe(ack_delay=0.01)
        frame = Frame(
            kind=MessageKind.EVENT, source="tx", payload=b"x", channel=1, seq=1,
        )
        pipe.receiver.on_frame(frame)
        pipe.receiver.on_frame(frame)  # duplicate still triggers an ack
        pipe.sim.run(until=0.02)
        assert pipe.acks == [[1]]

    def test_zero_delay_keeps_seed_per_frame_acks(self):
        # ack_delay=0 must behave exactly like the seed: one immediate ACK
        # per data frame, no timer involvement.
        pipe = Pipe()
        acks = []
        original = pipe.receiver._emit_ack
        pipe.receiver._emit_ack = lambda f: (acks.append(decode_ack(f.payload)), original(f))
        pipe.sender.send(MessageKind.EVENT, b"a")
        pipe.sender.send(MessageKind.EVENT, b"b")
        assert acks == [[1], [2]]
        assert pipe.sender.idle

    def test_retransmit_timing_unchanged_when_uncoalesced(self):
        pipe = Pipe(policy=RetransmitPolicy(initial_rto=0.1, window=4, max_retries=3))
        pipe.drop_data = 1
        pipe.sender.send(MessageKind.EVENT, b"x")
        assert pipe.delivered == []
        pipe.tick(0.09)
        assert len(pipe.wire_frames) == 1  # RTO not yet expired
        pipe.tick(0.02)
        assert len(pipe.wire_frames) == 2  # retransmitted at ~0.1s as before
        assert pipe.delivered == [b"x"]

    def test_coalescing_needs_timers(self):
        with pytest.raises(ValueError):
            ReliableReceiver(
                "tx", 1, emit_ack=lambda f: None, deliver=lambda f: None,
                ack_delay=0.01,
            )


class TestBoundedBacklog:
    def make_sender(self, window=2, max_backlog=3):
        from repro.util import ManualClock

        clock = ManualClock()
        wire = []
        shed = []
        sender = ReliableSender(
            clock=clock,
            source="tx",
            channel=1,
            emit=wire.append,
            policy=RetransmitPolicy(
                initial_rto=0.1, window=window, max_backlog=max_backlog
            ),
            on_overflow=shed.append,
        )
        return clock, sender, wire, shed

    def test_sheds_beyond_backlog_bound(self):
        clock, sender, wire, shed = self.make_sender(window=2, max_backlog=3)
        seqs = [sender.send(MessageKind.EVENT, bytes([i])) for i in range(8)]
        # window(2) in flight + backlog(3) admitted; 3 shed with seq 0.
        assert seqs == [1, 2, 3, 4, 5, 0, 0, 0]
        assert sender.shed_frames == 3
        assert len(shed) == 3
        assert all(f.seq == 0 for f in shed)
        assert sender.unacked == 5

    def test_shedding_never_consumes_seqs(self):
        # The wedge hazard: a shed frame must not burn a sequence number,
        # or the ordered receiver waits forever on the gap.
        clock, sender, wire, shed = self.make_sender(window=1, max_backlog=1)
        assert sender.send(MessageKind.EVENT, b"a") == 1
        assert sender.send(MessageKind.EVENT, b"b") == 2
        assert sender.send(MessageKind.EVENT, b"c") == 0  # shed
        sender.on_acked([1])
        # The next admitted send continues the contiguous seq space.
        assert sender.send(MessageKind.EVENT, b"d") == 3

    def test_unbounded_backlog_by_default(self):
        clock, sender, wire, shed = self.make_sender(window=1, max_backlog=None)
        seqs = [sender.send(MessageKind.EVENT, bytes([i])) for i in range(50)]
        assert seqs == list(range(1, 51))
        assert sender.shed_frames == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(max_backlog=0)


def _data_frame(seq, source="tx", channel=1, payload=b"d"):
    from repro.protocol.frames import FrameFlags

    return Frame(
        kind=MessageKind.EVENT,
        source=source,
        payload=payload,
        channel=channel,
        seq=seq,
        flags=int(FrameFlags.RELIABLE),
    )


def _nack_frame(seqs, source="rx", channel=1):
    from repro.protocol.reliability import encode_nack

    return Frame(
        kind=MessageKind.NACK,
        source=source,
        payload=encode_nack(seqs),
        channel=channel,
    )


class TestNackRetransmit:
    """NACK handling works with or without hardening armed."""

    def make_sender(self, hardening=None, abuse=None):
        clock = ManualClock()
        wire = []
        sender = ReliableSender(
            clock=clock,
            source="tx",
            channel=1,
            emit=wire.append,
            policy=RetransmitPolicy(initial_rto=1.0, window=8),
            hardening=hardening,
            on_abuse=abuse,
        )
        return clock, sender, wire

    def test_nack_triggers_immediate_retransmit(self):
        clock, sender, wire = self.make_sender()
        sender.send(MessageKind.EVENT, b"a")
        sender.send(MessageKind.EVENT, b"b")
        del wire[:]
        sender.on_nack_frame(_nack_frame([1, 2]))
        assert [f.seq for f in wire] == [1, 2]
        from repro.protocol.frames import FrameFlags

        assert all(f.flags & int(FrameFlags.RETRANSMIT) for f in wire)
        assert sender.nack_retransmits == 2
        assert sender.retransmitted_frames == 2

    def test_stale_and_unknown_seqs_are_ignored(self):
        clock, sender, wire = self.make_sender()
        sender.send(MessageKind.EVENT, b"a")
        sender.on_acked([1])
        del wire[:]
        sender.on_nack_frame(_nack_frame([1, 99]))
        assert wire == []
        assert sender.stale_nacks == 2

    def test_non_nack_frame_rejected(self):
        clock, sender, wire = self.make_sender()
        with pytest.raises(ProtocolError):
            sender.on_nack_frame(_data_frame(1))


class TestNackStormSuppression:
    def make(self, **kw):
        from repro.protocol.reliability import ReliabilityHardening

        hardening = ReliabilityHardening(
            enabled=True, nack_rate=10.0, nack_burst=2.0,
            nack_penalty=0.5, nack_penalty_backoff=2.0, nack_penalty_max=4.0,
            **kw,
        )
        abuses = []
        clock = ManualClock()
        wire = []
        sender = ReliableSender(
            clock=clock,
            source="tx",
            channel=1,
            emit=wire.append,
            policy=RetransmitPolicy(initial_rto=10.0, window=64),
            hardening=hardening,
            on_abuse=abuses.append,
        )
        return clock, sender, wire, abuses

    def test_budget_exhaustion_opens_penalty_window(self):
        clock, sender, wire, abuses = self.make()
        sender.send(MessageKind.EVENT, b"a")
        del wire[:]
        # burst=2 NACKs honored, the third blows the budget.
        for _ in range(3):
            sender.on_nack_frame(_nack_frame([1]))
        assert sender.nack_retransmits == 2
        assert sender.suppressed_nacks == 1
        assert abuses.count("nack-flood") == 1
        # Inside the penalty window every NACK is ignored outright.
        for _ in range(10):
            sender.on_nack_frame(_nack_frame([1]))
        assert sender.nack_retransmits == 2
        assert sender.suppressed_nacks == 11

    def test_penalty_escalates_and_caps(self):
        clock, sender, wire, abuses = self.make()
        sender.send(MessageKind.EVENT, b"a")

        def blow_budget():
            while sender._nack_ignore_until <= clock.now():
                sender.on_nack_frame(_nack_frame([1]))
            return sender._nack_ignore_until - clock.now()

        assert blow_budget() == pytest.approx(0.5)
        clock.advance(1.0)
        assert blow_budget() == pytest.approx(1.0)
        clock.advance(2.0)
        assert blow_budget() == pytest.approx(2.0)
        clock.advance(3.0)
        assert blow_budget() == pytest.approx(4.0)
        clock.advance(5.0)
        assert blow_budget() == pytest.approx(4.0)  # capped

    def test_disabled_hardening_never_suppresses(self):
        clock, sender, wire, abuses = self.make()
        sender._hardening.enabled = False
        sender.send(MessageKind.EVENT, b"a")
        del wire[:]
        for _ in range(50):
            sender.on_nack_frame(_nack_frame([1]))
        assert sender.suppressed_nacks == 0
        assert sender.nack_retransmits == 50
        assert abuses == []


class TestAckAbuse:
    def make(self):
        from repro.protocol.reliability import ReliabilityHardening

        hardening = ReliabilityHardening(
            enabled=True, ack_rate=10.0, ack_burst=3.0
        )
        abuses = []
        clock = ManualClock()
        wire = []
        sender = ReliableSender(
            clock=clock,
            source="tx",
            channel=1,
            emit=wire.append,
            policy=RetransmitPolicy(initial_rto=10.0, window=64),
            hardening=hardening,
            on_abuse=abuses.append,
        )
        return clock, sender, wire, abuses

    def ack(self, seqs):
        return Frame(
            kind=MessageKind.ACK, source="rx", payload=encode_ack(seqs), channel=1
        )

    def test_ack_flood_suppressed_by_budget(self):
        clock, sender, wire, abuses = self.make()
        sender.send(MessageKind.EVENT, b"a")
        for _ in range(10):
            sender.on_ack_frame(self.ack([]))
        assert sender.suppressed_acks == 7  # burst=3 honored
        assert abuses.count("ack-flood") == 7

    def test_future_ack_rejected_frame_stays_in_flight(self):
        clock, sender, wire, abuses = self.make()
        sender.send(MessageKind.EVENT, b"a")
        sender.on_ack_frame(self.ack([999]))
        assert sender.future_acks == 1
        assert "future-ack" in abuses
        assert sender.unacked == 1  # the forged ack freed nothing

    def test_duplicate_ack_counted_stale(self):
        clock, sender, wire, abuses = self.make()
        sender.send(MessageKind.EVENT, b"a")
        sender.on_ack_frame(self.ack([1]))
        sender.on_ack_frame(self.ack([1]))
        assert sender.stale_acks == 1
        assert "stale-ack" in abuses
        assert sender.idle


class TestReplayDefense:
    def make(self, window=4, dup_rate=10.0, dup_burst=2.0):
        from repro.protocol.reliability import ReliabilityHardening

        hardening = ReliabilityHardening(
            enabled=True,
            replay_window=window,
            dup_ack_rate=dup_rate,
            dup_ack_burst=dup_burst,
        )
        abuses = []
        clock = ManualClock()
        acks = []
        delivered = []
        receiver = ReliableReceiver(
            source="tx",
            channel=1,
            emit_ack=acks.append,
            deliver=lambda f: delivered.append(f.seq),
            ordered=True,
            ack_source="rx",
            clock=clock,
            hardening=hardening,
            on_abuse=abuses.append,
        )
        return clock, receiver, acks, delivered, abuses

    def warm(self, receiver, upto):
        for seq in range(1, upto + 1):
            receiver.on_frame(_data_frame(seq))

    def test_ancient_replay_dropped_without_ack(self):
        clock, receiver, acks, delivered, abuses = self.make(window=4)
        self.warm(receiver, 10)  # expected -> 11
        del acks[:]
        receiver.on_frame(_data_frame(3))  # 3 < 11 - 4
        assert acks == []  # no re-ACK: amplification denied
        assert receiver.replayed_frames == 1
        assert abuses == ["replay"]
        assert delivered == list(range(1, 11))

    def test_horizon_seq_not_buffered(self):
        clock, receiver, acks, delivered, abuses = self.make(window=4)
        self.warm(receiver, 10)
        receiver.on_frame(_data_frame(50))  # >= 11 + 4
        assert receiver.horizon_drops == 1
        assert abuses[-1] == "horizon"
        assert 50 not in receiver._pending
        assert not receiver._pending

    def test_in_window_duplicate_reacked_on_budget(self):
        clock, receiver, acks, delivered, abuses = self.make(
            window=8, dup_burst=2.0
        )
        self.warm(receiver, 5)
        del acks[:]
        for _ in range(5):
            receiver.on_frame(_data_frame(4))  # in-window duplicate
        assert len(acks) == 2  # dup-ACK budget = burst 2
        assert receiver.suppressed_dup_acks == 3
        assert abuses.count("dup-ack") == 3
        assert receiver.duplicate_frames == 5
        assert delivered == [1, 2, 3, 4, 5]  # never re-delivered

    def test_disabled_hardening_keeps_seed_behavior(self):
        clock, receiver, acks, delivered, abuses = self.make(window=4)
        receiver._hardening.enabled = False
        self.warm(receiver, 10)
        del acks[:]
        for _ in range(20):
            receiver.on_frame(_data_frame(3))  # ancient dup, seed re-ACKs all
        assert len(acks) == 20
        assert receiver.replayed_frames == 0
        assert abuses == []
