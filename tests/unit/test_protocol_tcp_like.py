"""Tests for the TCP-behaviour baseline stream."""


from repro.protocol import TcpLikeReceiver, TcpLikeSender
from repro.protocol.frames import MessageKind
from repro.protocol.tcp_like import TCP_EXTRA_HEADER
from repro.util import ManualClock, SeededRng


class StreamPipe:
    def __init__(self, rto=0.2):
        self.clock = ManualClock()
        self.delivered = []
        self.drop_next = 0
        self.to_receiver = []
        self.receiver = TcpLikeReceiver(
            source="rx",
            channel=1,
            emit=self._to_sender,
            deliver=self.delivered.append,
        )
        self.sender = TcpLikeSender(
            clock=self.clock, source="tx", channel=1, emit=self._to_receiver, rto=rto
        )

    def _to_receiver(self, frame):
        self.to_receiver.append(frame)
        if self.drop_next > 0:
            self.drop_next -= 1
            return
        self.receiver.on_frame(frame)

    def _to_sender(self, frame):
        self.sender.on_frame(frame)

    def tick(self, dt):
        self.clock.advance(dt)
        self.sender.poll()


class TestHandshake:
    def test_first_send_triggers_syn(self):
        pipe = StreamPipe()
        pipe.sender.send(b"hello")
        kinds = [f.kind for f in pipe.to_receiver]
        assert kinds[0] == MessageKind.STREAM_SYN
        assert MessageKind.STREAM_SEGMENT in kinds
        assert pipe.delivered == [b"hello"]

    def test_single_handshake_for_many_messages(self):
        pipe = StreamPipe()
        for i in range(5):
            pipe.sender.send(bytes([i]))
        assert pipe.sender.handshake_frames == 1
        assert pipe.delivered == [bytes([i]) for i in range(5)]

    def test_lost_syn_is_retried(self):
        pipe = StreamPipe()
        pipe.drop_next = 1  # lose the SYN
        pipe.sender.send(b"x")
        assert pipe.delivered == []
        pipe.tick(0.25)
        assert pipe.delivered == [b"x"]
        assert pipe.sender.handshake_frames == 2


class TestDelivery:
    def test_in_order_delivery(self):
        pipe = StreamPipe()
        payloads = [bytes([i]) for i in range(10)]
        for p in payloads:
            pipe.sender.send(p)
        assert pipe.delivered == payloads
        assert pipe.sender.idle

    def test_go_back_n_on_loss(self):
        pipe = StreamPipe()
        pipe.sender.send(b"warmup")  # complete the handshake
        pipe.drop_next = 1  # lose the next segment
        pipe.sender.send(b"a")
        pipe.sender.send(b"b")
        pipe.sender.send(b"c")
        # b and c arrived out of order and are buffered, not delivered.
        assert pipe.delivered == [b"warmup"]
        pipe.tick(0.25)
        assert pipe.delivered == [b"warmup", b"a", b"b", b"c"]
        # Go-back-N retransmitted all three unacked segments, not just 'a'.
        assert pipe.sender.retransmitted_segments == 3

    def test_segments_carry_tcp_header_padding(self):
        pipe = StreamPipe()
        pipe.sender.send(b"zz")
        segment = [f for f in pipe.to_receiver if f.kind == MessageKind.STREAM_SEGMENT][0]
        assert len(segment.payload) == TCP_EXTRA_HEADER + 2

    def test_receiver_acks_every_segment(self):
        pipe = StreamPipe()
        for i in range(4):
            pipe.sender.send(bytes([i]))
        assert pipe.receiver.ack_frames == 4

    def test_heavy_random_loss_eventually_delivers(self):
        rng = SeededRng(3)
        pipe = StreamPipe(rto=0.05)
        real = pipe.receiver.on_frame

        def lossy(frame):
            pipe.to_receiver.append(frame)
            if frame.kind == MessageKind.STREAM_SYN or not rng.chance(0.3):
                real(frame)

        pipe.sender._emit = lossy
        payloads = [bytes([i]) for i in range(20)]
        for p in payloads:
            pipe.sender.send(p)
        for _ in range(300):
            pipe.tick(0.05)
            if pipe.sender.idle:
                break
        assert pipe.delivered == payloads
