"""Unit tests for the runtimes and the reactor."""

import threading
import time

import pytest

from repro import SimRuntime
from repro.runtime.reactor import Reactor
from repro.simnet.models import LinkModel
from repro.util.errors import ConfigurationError


class TestSimRuntime:
    def test_duplicate_container_rejected(self):
        runtime = SimRuntime()
        runtime.add_container("a")
        with pytest.raises(ConfigurationError):
            runtime.add_container("a")

    def test_container_lookup(self):
        runtime = SimRuntime()
        a = runtime.add_container("a")
        assert runtime.container("a") is a

    def test_late_container_starts_immediately(self):
        runtime = SimRuntime()
        runtime.add_container("a")
        runtime.start()
        runtime.run_for(0.5)
        b = runtime.add_container("b")
        runtime.run_for(0.1)
        assert b.running

    def test_settle_uses_announce_interval(self):
        runtime = SimRuntime()
        runtime.add_container("a", announce_interval=0.4)
        runtime.add_container("b", announce_interval=0.4)
        runtime.settle()
        assert runtime.sim.now() == pytest.approx(1.0, abs=0.1)  # 2.5 x 0.4

    def test_run_until_true_and_false(self):
        runtime = SimRuntime()
        runtime.add_container("a")
        runtime.start()
        hits = []
        runtime.sim.schedule(1.0, lambda: hits.append(1))
        assert runtime.run_until(lambda: bool(hits), timeout=5.0)
        assert not runtime.run_until(lambda: len(hits) > 5, timeout=1.0)

    def test_custom_link_and_seed(self):
        link = LinkModel(latency=0.1, jitter=0.0, bandwidth_bps=0.0)
        runtime = SimRuntime(seed=99, default_link=link)
        assert runtime.network.link_for("x", "y").latency == 0.1

    def test_stop_stops_all(self):
        runtime = SimRuntime()
        a = runtime.add_container("a")
        b = runtime.add_container("b")
        runtime.start()
        runtime.run_for(0.5)
        runtime.stop()
        assert not a.running and not b.running


class TestReactor:
    def test_post_and_call_blocking(self):
        reactor = Reactor()
        try:
            assert reactor.call_blocking(lambda: 21 * 2) == 42
        finally:
            reactor.stop()

    def test_call_blocking_propagates_exceptions(self):
        reactor = Reactor()
        try:
            with pytest.raises(ZeroDivisionError):
                reactor.call_blocking(lambda: 1 / 0)
        finally:
            reactor.stop()

    def test_timers_fire_in_order(self):
        reactor = Reactor()
        try:
            order = []
            reactor.schedule(0.05, lambda: order.append("late"))
            reactor.schedule(0.01, lambda: order.append("early"))
            deadline = time.monotonic() + 2.0
            while len(order) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert order == ["early", "late"]
        finally:
            reactor.stop()

    def test_cancelled_timer_does_not_fire(self):
        reactor = Reactor()
        try:
            hits = []
            handle = reactor.schedule(0.05, lambda: hits.append(1))
            handle.cancel()
            time.sleep(0.15)
            assert hits == []
        finally:
            reactor.stop()

    def test_schedule_after_stop_is_cancelled(self):
        reactor = Reactor()
        reactor.stop()
        handle = reactor.schedule(0.0, lambda: None)
        assert handle.cancelled

    def test_errors_collected(self):
        reactor = Reactor()
        try:
            reactor.post(lambda: 1 / 0)
            reactor.call_blocking(lambda: None)  # fence
            assert any(isinstance(e, ZeroDivisionError) for e in reactor.errors)
        finally:
            reactor.stop()

    def test_now_is_monotonic(self):
        reactor = Reactor()
        try:
            a = reactor.now()
            b = reactor.now()
            assert b >= a
        finally:
            reactor.stop()


class TestReactorWaitUntil:
    def test_already_true_returns_immediately(self):
        reactor = Reactor()
        try:
            start = time.monotonic()
            assert reactor.wait_until(lambda: True, timeout=5.0) is True
            assert time.monotonic() - start < 1.0
        finally:
            reactor.stop()

    def test_wakes_on_state_flip_without_polling(self):
        reactor = Reactor()
        try:
            box = {"ready": False}

            def flip():
                box["ready"] = True

            # Flip the state via a timer well before the timeout: the
            # watcher must wake the waiter right after the callback runs,
            # not at some poll granularity and not at the deadline.
            reactor.schedule(0.05, flip)
            start = time.monotonic()
            assert reactor.wait_until(lambda: box["ready"], timeout=10.0)
            assert time.monotonic() - start < 5.0
        finally:
            reactor.stop()

    def test_timeout_returns_final_predicate_value(self):
        reactor = Reactor()
        try:
            assert reactor.wait_until(lambda: False, timeout=0.1) is False
        finally:
            reactor.stop()

    def test_predicate_exception_propagates(self):
        reactor = Reactor()
        try:
            with pytest.raises(ZeroDivisionError):
                reactor.wait_until(lambda: 1 / 0, timeout=1.0)
        finally:
            reactor.stop()

    def test_predicate_runs_on_reactor_thread(self):
        reactor = Reactor()
        try:
            seen = []

            def predicate():
                seen.append(threading.current_thread().name)
                return True

            assert reactor.wait_until(predicate, timeout=2.0)
            assert set(seen) == {"reactor"}
        finally:
            reactor.stop()

    def test_many_waiters_all_wake(self):
        reactor = Reactor()
        try:
            box = {"n": 0}
            results = []

            def wait(threshold):
                results.append(reactor.wait_until(lambda: box["n"] >= threshold, 5.0))

            waiters = [
                threading.Thread(target=wait, args=(t,)) for t in (1, 2, 3)
            ]
            for w in waiters:
                w.start()
            time.sleep(0.05)
            for _ in range(3):
                reactor.post(lambda: box.__setitem__("n", box["n"] + 1))
            for w in waiters:
                w.join(timeout=5.0)
            assert results == [True, True, True]
        finally:
            reactor.stop()
