"""Tests for REP008 (wire-schema lockfile) and the static schema evaluator.

The committed ``schemas.lock.json`` is the compatibility contract: these
tests prove the static (AST-evaluated) fingerprints agree with the live
schema objects, that the committed lock is current, and that every drift
mode — field mutation, manual-layout change, new kind, removed kind,
header change — fails the rule on a mutated copy of the fixture tree.
"""

import json
import shutil
from pathlib import Path

from repro.analysis import Analyzer, schemas as schemalock
from repro.analysis.rules.rep008_schema_lock import SchemaLockRule
from repro.protocol.frames import MessageKind, header_fingerprint
from repro.protocol.wire_registry import KIND_SCHEMA_REFS, schema_for
from tests.unit.test_callgraph import FIXTURES

SRC_ROOT = Path(__file__).parent.parent.parent / "src"


def run_rep008(root: Path):
    analyzer = Analyzer(root, rules=[SchemaLockRule()])
    report = analyzer.run(paths=[root / "repro"])
    return [f for f in report.findings if f.rule == "REP008"]


def copy_fixture(tmp_path: Path) -> Path:
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "rep008_good", root)
    return root


def edit(root: Path, rel: str, old: str, new: str) -> None:
    path = root / rel
    text = path.read_text(encoding="utf-8")
    assert old in text, f"fixture drifted: {old!r} not in {rel}"
    path.write_text(text.replace(old, new), encoding="utf-8")


class TestRep008OnFixture:
    def test_clean_tree_matches_its_lock(self):
        assert run_rep008(FIXTURES / "rep008_good") == []

    def test_field_type_change_fails(self, tmp_path):
        root = copy_fixture(tmp_path)
        edit(root, "repro/wire.py", '("seq", UINT32)', '("seq", STRING)')
        findings = run_rep008(root)
        assert any(
            "MessageKind.DATA" in f.message and "mint a new MessageKind" in f.message
            for f in findings
        )
        # The locked and current shapes ride in the message for the diff.
        assert any("uint32 seq" in f.message and "string seq" in f.message
                   for f in findings)

    def test_field_reorder_fails(self, tmp_path):
        root = copy_fixture(tmp_path)
        edit(
            root,
            "repro/wire.py",
            '[("seq", UINT32), ("body", STRING)]',
            '[("body", STRING), ("seq", UINT32)]',
        )
        assert any("MessageKind.DATA" in f.message for f in run_rep008(root))

    def test_manual_layout_change_fails(self, tmp_path):
        root = copy_fixture(tmp_path)
        edit(root, "repro/protocol/ping.py", '"<I"', '"<Q"')
        assert any("MessageKind.PING" in f.message for f in run_rep008(root))

    def test_new_kind_without_lock_entry_fails(self, tmp_path):
        root = copy_fixture(tmp_path)
        edit(root, "repro/protocol/frames.py", "DATA = 2", "DATA = 2\n    EXTRA = 3")
        findings = run_rep008(root)
        # Unmapped in the registry AND absent from the lock: both surface.
        assert any("MessageKind.EXTRA" in f.message for f in findings)

    def test_removed_kind_fails(self, tmp_path):
        root = copy_fixture(tmp_path)
        edit(root, "repro/protocol/frames.py", "    DATA = 2\n", "")
        assert any(
            "MessageKind.DATA" in f.message and "no longer exists" in f.message
            for f in run_rep008(root)
        )

    def test_header_format_change_fails(self, tmp_path):
        root = copy_fixture(tmp_path)
        edit(root, "repro/protocol/frames.py", '"<2sBBBHI"', '"<2sBBBHQ"')
        assert any("frame header layout changed" in f.message
                   for f in run_rep008(root))

    def test_missing_lockfile_fails(self, tmp_path):
        root = copy_fixture(tmp_path)
        (root / "schemas.lock.json").unlink()
        assert any("no schemas.lock.json" in f.message for f in run_rep008(root))

    def test_tree_without_registry_is_out_of_scope(self):
        assert run_rep008(FIXTURES / "interproc_taint") == []


class TestStaticEvaluatorAgainstRuntime:
    def test_static_fingerprints_match_live_schemas(self):
        project = load_project_src()
        lock = schemalock.compute_lock(project)
        assert lock is not None and not lock["unmapped"]
        for kind in MessageKind:
            entry = lock["kinds"][kind.name]
            datatype = schema_for(kind.name)
            if datatype is None:
                assert entry["layout"] == "manual"
            else:
                assert entry["fingerprint"] == datatype.fingerprint(), kind.name
                assert entry["describe"] == datatype.describe()

    def test_static_header_fingerprint_matches_runtime(self):
        project = load_project_src()
        frames = project.file("repro/protocol/frames.py")
        assert schemalock.static_header_fingerprint(frames) == header_fingerprint()

    def test_every_kind_is_mapped(self):
        assert {k.name for k in MessageKind} <= set(KIND_SCHEMA_REFS)


class TestCommittedLockIsCurrent:
    def test_repo_lockfile_matches_the_tree(self):
        project = load_project_src()
        current = schemalock.compute_lock(project)
        committed = json.loads(
            (SRC_ROOT.parent / "schemas.lock.json").read_text(encoding="utf-8")
        )
        assert committed["header"] == current["header"]
        current_kinds = {
            name: entry["fingerprint"] for name, entry in current["kinds"].items()
        }
        committed_kinds = {
            name: entry["fingerprint"]
            for name, entry in committed["kinds"].items()
        }
        assert committed_kinds == current_kinds, (
            "schemas.lock.json is stale — regenerate deliberately with "
            "`repro.cli check --update-schema-lock`"
        )


def load_project_src():
    from repro.analysis.context import Project, SourceFile

    files = [
        SourceFile.load(path, SRC_ROOT)
        for path in sorted((SRC_ROOT / "repro").rglob("*.py"))
        if "__pycache__" not in path.parts
    ]
    return Project(root=SRC_ROOT, files=files)
