"""Fragmentation/reassembly tests."""

import pytest

from repro.protocol import Fragmenter, Reassembler
from repro.protocol.frames import Frame, MessageKind
from repro.util.errors import ProtocolError


def big_frame(size):
    return Frame(kind=MessageKind.RPC_REQUEST, source="c1", payload=b"z" * size).encode()


class TestFragmenter:
    def test_small_message_single_fragment(self):
        frag = Fragmenter("c1", mtu=1400)
        frames = frag.fragment(b"hello")
        assert len(frames) == 1
        assert frames[0].kind == MessageKind.FRAGMENT

    def test_split_sizes_respect_mtu(self):
        frag = Fragmenter("c1", mtu=200)
        encoded = big_frame(1000)
        frames = frag.fragment(encoded)
        assert len(frames) > 1
        for frame in frames:
            assert len(frame.encode()) <= 200

    def test_mtu_too_small_rejected(self):
        with pytest.raises(ProtocolError):
            Fragmenter("c1", mtu=10)

    def test_message_ids_differ(self):
        frag = Fragmenter("c1", mtu=200)
        a = frag.fragment(big_frame(500))
        b = frag.fragment(big_frame(500))
        assert a[0].payload[:4] != b[0].payload[:4]


class TestReassembler:
    def round_trip(self, mtu, size, shuffle=None):
        frag = Fragmenter("c1", mtu=mtu)
        encoded = big_frame(size)
        frames = frag.fragment(encoded)
        if shuffle:
            shuffle(frames)
        reasm = Reassembler()
        results = [reasm.on_fragment(f, now=0.0) for f in frames]
        completed = [r for r in results if r is not None]
        assert len(completed) == 1
        assert completed[0] == encoded
        inner = Frame.decode(completed[0])
        assert inner.payload == b"z" * size

    def test_in_order_reassembly(self):
        self.round_trip(mtu=200, size=1000)

    def test_out_of_order_reassembly(self):
        self.round_trip(mtu=200, size=1000, shuffle=lambda fs: fs.reverse())

    def test_interleaved_messages(self):
        frag = Fragmenter("c1", mtu=200)
        m1, m2 = big_frame(400), big_frame(500)
        f1, f2 = frag.fragment(m1), frag.fragment(m2)
        reasm = Reassembler()
        done = []
        for pair in zip(f1, f2):
            for frame in pair:
                result = reasm.on_fragment(frame, now=0.0)
                if result:
                    done.append(result)
        for leftover in f2[len(f1):]:
            result = reasm.on_fragment(leftover, now=0.0)
            if result:
                done.append(result)
        assert sorted(done, key=len) == sorted([m1, m2], key=len)

    def test_duplicate_fragment_is_harmless(self):
        frag = Fragmenter("c1", mtu=200)
        frames = frag.fragment(big_frame(500))
        reasm = Reassembler()
        reasm.on_fragment(frames[0], now=0.0)
        reasm.on_fragment(frames[0], now=0.0)
        result = None
        for frame in frames[1:]:
            result = reasm.on_fragment(frame, now=0.0) or result
        assert result is not None

    def test_expiry_drops_incomplete(self):
        frag = Fragmenter("c1", mtu=200)
        frames = frag.fragment(big_frame(1000))
        reasm = Reassembler(timeout=1.0)
        reasm.on_fragment(frames[0], now=0.0)
        assert reasm.pending == 1
        assert reasm.expire(now=2.0) == 1
        assert reasm.pending == 0
        assert reasm.expired_messages == 1

    def test_expiry_keeps_fresh(self):
        frag = Fragmenter("c1", mtu=200)
        frames = frag.fragment(big_frame(1000))
        reasm = Reassembler(timeout=1.0)
        reasm.on_fragment(frames[0], now=5.0)
        assert reasm.expire(now=5.5) == 0
        assert reasm.pending == 1

    def test_bad_fragments_rejected(self):
        reasm = Reassembler()
        with pytest.raises(ProtocolError):
            reasm.on_fragment(
                Frame(kind=MessageKind.EVENT, source="c1", payload=b""), now=0.0
            )
        with pytest.raises(ProtocolError):
            reasm.on_fragment(
                Frame(kind=MessageKind.FRAGMENT, source="c1", payload=b"xx"), now=0.0
            )

    def test_total_mismatch_rejected(self):
        import struct

        header_a = struct.pack("<IHH", 1, 0, 3)
        header_b = struct.pack("<IHH", 1, 1, 4)
        reasm = Reassembler()
        reasm.on_fragment(
            Frame(kind=MessageKind.FRAGMENT, source="c1", payload=header_a + b"a"),
            now=0.0,
        )
        with pytest.raises(ProtocolError, match="total"):
            reasm.on_fragment(
                Frame(kind=MessageKind.FRAGMENT, source="c1", payload=header_b + b"b"),
                now=0.0,
            )
