"""Tests for the C-like schema parser and the schema registry."""

import pytest

from repro.encoding import (
    FLOAT64,
    INT32,
    SchemaRegistry,
    StructType,
    UnionType,
    VectorType,
    parse_type,
)
from repro.encoding.schema import default_registry
from repro.util.errors import ConfigurationError, EncodingError


class TestParser:
    def test_primitive(self):
        assert parse_type("float64") == FLOAT64

    def test_vector_suffix(self):
        assert parse_type("int32[]") == VectorType(INT32)
        assert parse_type("int32[5]") == VectorType(INT32, 5)
        assert parse_type("int32[2][3]") == VectorType(VectorType(INT32, 2), 3)

    def test_struct(self):
        t = parse_type("struct P { float64 x; float64 y; }")
        assert isinstance(t, StructType)
        assert t.name == "P"
        assert [f[0] for f in t.fields] == ["x", "y"]

    def test_c_style_field_array(self):
        t = parse_type("struct S { float64 samples[4]; }")
        assert t.fields[0][1] == VectorType(FLOAT64, 4)

    def test_union(self):
        t = parse_type("union R { int32 ok; string err; }")
        assert isinstance(t, UnionType)
        assert t.tag_index("err") == 1

    def test_nested_composite(self):
        t = parse_type(
            "struct Outer { struct Inner { int32 a; } inner; int32 b; }"
        )
        assert isinstance(t.fields[0][1], StructType)

    def test_describe_round_trips(self):
        declarations = [
            "struct P { float64 x; float64 y; }",
            "union R { int32 ok; string err; }",
            "int32[3]",
            "struct S { int8[] raw; struct Q { bool f; } q; }",
        ]
        for decl in declarations:
            t = parse_type(decl)
            assert parse_type(t.describe()) == t

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "floaty",
            "struct P { }",
            "struct P { float64 x }",
            "struct P { float64 x; ",
            "int32[-1]",
            "int32[x]",
            "int32 extra",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises((EncodingError, ValueError)):
            parse_type(bad)


class TestRegistry:
    def test_register_and_get(self):
        reg = SchemaRegistry()
        t = reg.register_text("Point", "struct Point { float64 x; float64 y; }")
        assert reg.get("Point") == t
        assert reg.contains("Point")
        assert "Point" in reg.names()

    def test_typedef_resolution(self):
        reg = SchemaRegistry()
        reg.register_text("Point", "struct Point { float64 x; float64 y; }")
        t = reg.register_text("Track", "struct Track { Point points[]; }")
        assert t.fields[0][1] == VectorType(reg.get("Point"))

    def test_conflicting_registration_rejected(self):
        reg = SchemaRegistry()
        reg.register_text("P", "struct P { float64 x; }")
        with pytest.raises(ConfigurationError):
            reg.register_text("P", "struct P { int32 x; }")

    def test_idempotent_registration_allowed(self):
        reg = SchemaRegistry()
        reg.register_text("P", "struct P { float64 x; }")
        reg.register_text("P", "struct P { float64 x; }")

    def test_unknown_schema(self):
        with pytest.raises(ConfigurationError):
            SchemaRegistry().get("Nope")

    def test_default_registry_has_wellknown_schemas(self):
        reg = default_registry()
        for name in ["Position", "Attitude", "PhotoEvent", "Detection", "Alarm"]:
            assert reg.contains(name)
