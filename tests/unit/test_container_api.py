"""Unit tests for the ServiceContainer's service-management API (§3)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, two_containers

from repro import Service
from repro.container import ServiceState
from repro.util.errors import ConfigurationError, ServiceError


class TestInstallStartStop:
    def test_install_before_start_defers_on_start(self):
        runtime, a, _ = two_containers()
        started = []
        svc = ProbeService("svc", lambda s: started.append(s.ctx.now()))
        a.install_service(svc)
        assert a.service_state("svc") == ServiceState.INSTALLED
        runtime.start()
        runtime.run_for(0.1)
        assert a.service_state("svc") == ServiceState.RUNNING
        assert len(started) == 1

    def test_install_after_start_runs_immediately(self):
        runtime, a, _ = two_containers()
        runtime.start()
        runtime.run_for(0.5)
        svc = ProbeService("late")
        a.install_service(svc)
        assert a.service_state("late") == ServiceState.RUNNING

    def test_duplicate_install_rejected(self):
        runtime, a, _ = two_containers()
        a.install_service(ProbeService("svc"))
        with pytest.raises(ConfigurationError):
            a.install_service(ProbeService("svc"))

    def test_stop_service_calls_on_stop_and_withdraws(self):
        runtime, a, b = two_containers()
        stopped = []

        class Stoppable(Service):
            def __init__(self):
                super().__init__("stoppable")

            def on_start(self):
                self.ctx.provide_event("stop.evt")

            def on_stop(self):
                stopped.append(True)

        a.install_service(Stoppable())
        runtime.start()
        runtime.run_for(2.0)
        assert b.directory.providers_of_event("stop.evt")
        a.stop_service("stoppable")
        assert stopped == [True]
        assert a.service_state("stoppable") == ServiceState.STOPPED
        runtime.run_for(1.5)
        assert not b.directory.providers_of_event("stop.evt")

    def test_unknown_service_rejected(self):
        runtime, a, _ = two_containers()
        with pytest.raises(ServiceError):
            a.start_service("ghost")
        with pytest.raises(ServiceError):
            a.service_state("ghost")

    def test_failing_on_start_isolates(self):
        runtime, a, _ = two_containers()

        class Bad(Service):
            def __init__(self):
                super().__init__("bad")

            def on_start(self):
                raise RuntimeError("broken init")

        a.install_service(Bad())
        a.install_service(ProbeService("good"))
        runtime.start()
        runtime.run_for(0.1)
        assert a.service_state("bad") == ServiceState.FAILED
        assert a.service_state("good") == ServiceState.RUNNING
        record = [r for r in a.services() if r.name == "bad"][0]
        assert "broken init" in record.failure_reason

    def test_double_container_start_rejected(self):
        runtime, a, _ = two_containers()
        runtime.start()
        runtime.run_for(0.1)
        with pytest.raises(ConfigurationError):
            a.start()

    def test_stop_is_idempotent(self):
        runtime, a, _ = two_containers()
        runtime.start()
        runtime.run_for(0.1)
        a.stop()
        a.stop()  # second stop is a no-op
        assert not a.running


class TestAnnounceCoalescing:
    def test_burst_of_provisions_one_extra_announce(self):
        runtime, a, b = two_containers()
        runtime.start()
        runtime.run_for(0.5)

        announce_count = {"n": 0}
        original = a._send_announce

        def counting():
            announce_count["n"] += 1
            original()

        a._send_announce = counting

        def setup(s):
            for i in range(10):
                s.ctx.provide_event(f"burst.e{i}")

        a.install_service(ProbeService("bursty", setup))
        runtime.run_for(0.1)
        # 10 provisions coalesced into one announce (the install's start
        # also schedules one, so allow 2).
        assert announce_count["n"] <= 2


class TestEmergency:
    def test_emergency_handlers_invoked(self):
        runtime, a, _ = two_containers()
        seen = []
        a.on_emergency(seen.append)
        a.emergency("fuel low")
        assert seen == ["fuel low"]
        assert a.emergencies == ["fuel low"]

    def test_service_can_register_emergency_handler(self):
        runtime, a, _ = two_containers()
        svc = ProbeService("svc", lambda s: s.ctx.on_emergency(
            lambda reason: s.results.append(reason)
        ))
        a.install_service(svc)
        runtime.start()
        runtime.run_for(0.1)
        a.emergency("engine out")
        assert svc.results == ["engine out"]


class TestServiceContextResources:
    def test_context_storage_and_devices(self):
        runtime, a, _ = two_containers()

        class Greedy(Service):
            def __init__(self):
                super().__init__("greedy")

            def on_start(self):
                self.ctx.allocate_storage(1000)
                self.ctx.acquire_device("gimbal")

        a.install_service(Greedy())
        runtime.start()
        runtime.run_for(0.1)
        assert a.resources.storage_held_by("greedy") == 1000
        assert a.resources.device_owner("gimbal") == "greedy"
        a.stop_service("greedy")
        assert a.resources.storage_held_by("greedy") == 0
        assert a.resources.device_owner("gimbal") is None

    def test_failed_service_releases_resources(self):
        runtime, a, _ = two_containers()

        class Holder(Service):
            def __init__(self):
                super().__init__("holder")

            def on_start(self):
                self.ctx.acquire_device("radio")
                self.ctx.every(0.1, lambda: 1 / 0)

        a.install_service(Holder())
        runtime.start()
        runtime.run_for(0.5)
        assert a.service_state("holder") == ServiceState.FAILED
        assert a.resources.device_owner("radio") is None
