"""Unit tests for the observability layer: tracer, span trees, the unified
metrics registry, the flight recorder, and the Tally-over-registry bridge."""

import json

import pytest

from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    Span,
    TraceContext,
    Tracer,
    build_span_tree,
    format_span_tree,
)
from repro.util import ManualClock
from repro.util.stats import Tally


class TestTracer:
    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer("c1", ManualClock())
        assert tracer.enabled is False
        span = tracer.start_span("op", "test")
        assert span is None
        tracer.finish(span)  # must tolerate None
        assert tracer.spans == []
        assert Tracer.context_of(None) is None

    def test_root_span_mints_a_new_trace(self):
        clock = ManualClock()
        tracer = Tracer("c1", clock, enabled=True)
        span = tracer.start_span("op", "test", key="v")
        assert span.trace_id == "c1-t1"
        assert span.span_id == "c1-s1"
        assert span.parent_id == ""
        assert span.attrs == {"key": "v"}
        assert not span.finished
        clock.advance(1.5)
        tracer.finish(span)
        assert span.finished
        assert span.duration == pytest.approx(1.5)

    def test_explicit_parent_joins_its_trace(self):
        tracer = Tracer("c2", ManualClock(), enabled=True)
        remote = TraceContext(trace_id="c1-t1", span_id="c1-s1")
        child = tracer.start_span("op", "test", parent=remote)
        assert child.trace_id == "c1-t1"
        assert child.parent_id == "c1-s1"
        assert child.span_id == "c2-s1"

    def test_ambient_context_parents_new_spans(self):
        tracer = Tracer("c1", ManualClock(), enabled=True)
        outer = tracer.start_span("outer", "test")
        with tracer.activate(outer.context()):
            inner = tracer.start_span("inner", "test")
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
        # Context is restored on exit: the next span is a fresh root.
        after = tracer.start_span("after", "test")
        assert after.parent_id == ""
        assert after.trace_id != outer.trace_id

    def test_activate_none_keeps_surrounding_context(self):
        tracer = Tracer("c1", ManualClock(), enabled=True)
        outer = tracer.start_span("outer", "test")
        with tracer.activate(outer.context()):
            with tracer.activate(None):
                assert tracer.current == outer.context()

    def test_finish_is_idempotent(self):
        clock = ManualClock()
        tracer = Tracer("c1", clock, enabled=True)
        span = tracer.start_span("op", "test")
        clock.advance(1.0)
        tracer.finish(span)
        clock.advance(1.0)
        tracer.finish(span)
        assert span.duration == pytest.approx(1.0)

    def test_ids_are_deterministic_per_tracer(self):
        def run():
            tracer = Tracer("c1", ManualClock(), enabled=True)
            for _ in range(3):
                tracer.finish(tracer.start_span("op", "test"))
            return [s.to_dict() for s in tracer.spans]

        assert run() == run()


class TestSpanTree:
    def _span(self, span_id, parent_id, start, container="c1"):
        return Span(
            trace_id="t", span_id=span_id, parent_id=parent_id,
            name=f"op-{span_id}", kind="test", container=container,
            start=start, end=start + 0.1,
        )

    def test_builds_nested_tree_sorted_by_start(self):
        spans = [
            self._span("s1", "", 0.0),
            self._span("s3", "s1", 2.0),
            self._span("s2", "s1", 1.0),
            self._span("s4", "s2", 3.0),
        ]
        roots = build_span_tree(spans)
        assert len(roots) == 1
        children = roots[0]["children"]
        assert [c["span_id"] for c in children] == ["s2", "s3"]
        assert [c["span_id"] for c in children[0]["children"]] == ["s4"]

    def test_unknown_parent_becomes_root_not_dropped(self):
        orphan = self._span("s9", "never-collected", 1.0)
        roots = build_span_tree([orphan])
        assert [r["span_id"] for r in roots] == ["s9"]

    def test_format_renders_depth_and_duration(self):
        spans = [self._span("s1", "", 0.0), self._span("s2", "s1", 1.0, "c2")]
        lines = format_span_tree(build_span_tree(spans))
        assert len(lines) == 2
        assert lines[0].startswith("t=0.000000 [c1]")
        assert lines[1].startswith("  t=1.000000 [c2]")
        assert "100.000 ms" in lines[0]


class TestMetricsRegistry:
    def test_instruments_are_identity_objects(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", a="1") is not registry.counter("x", a="2")
        assert registry.counter("x", a="1", b="2") is registry.counter(
            "x", b="2", a="1"
        )

    def test_reads_never_create(self):
        registry = MetricsRegistry()
        assert registry.counter_value("missing") == 0
        assert registry.gauge_value("missing") == 0.0
        assert registry.histogram_values("missing") == []
        assert registry.snapshot() == {}

    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("sent", kind="EVENT").inc(3)
        registry.gauge("depth").set(7.5)
        for v in (1.0, 2.0, 3.0):
            registry.histogram("lat").observe(v)
        snap = registry.snapshot()
        assert snap["sent{kind=EVENT}"] == 3
        assert snap["depth"] == 7.5
        assert snap["lat"]["n"] == 3
        assert snap["lat"]["mean"] == pytest.approx(2.0)

    def test_absorb_adds_labels_and_accumulates(self):
        fleet = MetricsRegistry()
        for cid, count in (("a", 2), ("b", 5)):
            local = MetricsRegistry()
            local.counter("calls").inc(count)
            local.histogram("lat").observe(float(count))
            fleet.absorb(local, container=cid)
        snap = fleet.snapshot()
        assert snap["calls{container=a}"] == 2
        assert snap["calls{container=b}"] == 5
        assert snap["lat{container=a}"]["n"] == 1
        # Absorbing twice accumulates counters (they are monotonic).
        local = MetricsRegistry()
        local.counter("calls").inc(1)
        fleet.absorb(local, container="a")
        assert fleet.counter_value("calls", container="a") == 3

    def test_snapshot_is_deterministically_ordered(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.gauge("m").set(1)
        # Ordered by (instrument kind, name, labels): counters, then gauges.
        assert list(registry.snapshot()) == ["a", "z", "m"]


class TestFlightRecorder:
    def test_ring_is_bounded_but_counts_everything(self):
        recorder = FlightRecorder(ManualClock(), capacity=4)
        for i in range(10):
            recorder.record("tx", seq=i)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert [e["seq"] for e in recorder.dump()] == [6, 7, 8, 9]

    def test_entries_are_timestamped_oldest_first(self):
        clock = ManualClock()
        recorder = FlightRecorder(clock)
        recorder.record("lifecycle", service="s1", state="running")
        clock.advance(2.0)
        recorder.record("escalation", service="s1")
        dump = recorder.dump()
        assert [e["t"] for e in dump] == [0.0, 2.0]
        assert dump[0]["category"] == "lifecycle"

    def test_dump_json_round_trips(self):
        recorder = FlightRecorder(ManualClock(), capacity=2)
        recorder.record("tx", kind="EVENT", bytes=12)
        doc = json.loads(recorder.dump_json())
        assert doc["capacity"] == 2
        assert doc["recorded"] == 1
        assert doc["entries"][0]["kind"] == "EVENT"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(ManualClock(), capacity=0)


class TestTallyOverRegistry:
    def test_tally_writes_through_to_registry(self):
        registry = MetricsRegistry()
        tally = Tally(registry=registry, prefix="supervision.")
        tally.incr("restarts")
        tally.incr("restarts", 2)
        assert registry.counter_value("supervision.restarts") == 3
        # The tally's own snapshot stays unprefixed for existing callers.
        assert tally.snapshot()["restarts"] == 3

    def test_tally_series_become_histograms(self):
        registry = MetricsRegistry()
        tally = Tally(registry=registry, prefix="supervision.")
        tally.observe("downtime", 1.0)
        tally.observe("downtime", 3.0)
        assert registry.histogram_values("supervision.downtime") == [1.0, 3.0]
        assert tally.snapshot()["downtime"]["n"] == 2

    def test_standalone_tally_owns_a_registry(self):
        tally = Tally()
        tally.incr("x")
        assert tally.snapshot()["x"] == 1
        assert tally.registry.counter_value("x") == 1
