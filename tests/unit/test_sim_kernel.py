"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.sim import Simulator
from repro.sim.kernel import _ScheduledEvent
from repro.util.rng import SeededRng


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda lbl=label: order.append(lbl))
        sim.run()
        assert order == list("abcde")

    def test_now_tracks_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now()))
        sim.schedule(2.5, lambda: seen.append(sim.now()))
        sim.run()
        assert seen == [0.5, 2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        hits = []

        def first():
            hits.append(sim.now())
            sim.schedule(1.0, lambda: hits.append(sim.now()))

        sim.schedule(1.0, first)
        sim.run()
        assert hits == [1.0, 2.0]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.call_soon(lambda: seen.append(sim.now()))

        sim.schedule(4.0, outer)
        sim.run()
        assert seen == [4.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        hits = []
        handle = sim.schedule(1.0, lambda: hits.append(1))
        handle.cancel()
        sim.run()
        assert hits == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep.when == 1.0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_keeps_accounting(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        # Cancelling a fired timer is a no-op for pending but still flips
        # the handle (retransmit loops cancel unconditionally on success).
        handle.cancel()
        assert handle.cancelled
        assert sim.pending == 0

    def test_mass_cancellation_compacts_queue(self):
        sim = Simulator()
        hits = []
        keepers = [
            sim.schedule(float(i) + 0.5, lambda i=i: hits.append(i))
            for i in range(10)
        ]
        victims = [sim.schedule(float(i), lambda: hits.append(-1)) for i in range(500)]
        for handle in victims:
            handle.cancel()
        # Cancelled entries outnumber live ones — the heap must have shed them.
        assert sim.pending == 10
        assert len(sim._queue) < 100
        sim.run()
        assert hits == list(range(10))
        assert all(h.cancelled for h in victims)
        assert not any(k.cancelled for k in keepers)

    def test_pending_is_consistent_through_run(self):
        sim = Simulator()
        for i in range(50):
            sim.schedule(float(i), lambda: None)
        cancelled = [sim.schedule(float(i) + 0.25, lambda: None) for i in range(50)]
        for handle in cancelled:
            handle.cancel()
        assert sim.pending == 50
        sim.run()
        assert sim.pending == 0
        assert sim.events_executed == 50

    def test_cancel_during_run_keeps_order_and_counts(self):
        sim = Simulator()
        order = []
        later = sim.schedule(5.0, lambda: order.append("late"))

        def first():
            order.append("first")
            later.cancel()

        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]
        assert sim.pending == 0


class TestRunBounds:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=2.0)
        assert hits == [1]
        assert sim.now() == 2.0
        sim.run()
        assert hits == [1, 5]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now() == 7.0

    def test_run_for_is_relative(self):
        sim = Simulator(start=10.0)
        sim.run_for(2.5)
        assert sim.now() == 12.5

    def test_max_events_bound(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: hits.append(i))
        sim.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_not_reentrant(self):
        sim = Simulator()
        error = {}

        def nested():
            try:
                sim.run()
            except RuntimeError as exc:
                error["raised"] = str(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert "reentrant" in error["raised"]

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 4


class TestHotPathAtScale:
    """Fleet-scale guarantees of the kernel hot path."""

    def test_schedule_fire_orders_like_schedule_at(self):
        # The fire-and-forget fast path must interleave with handle-bearing
        # timers exactly by (time, insertion order).
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_fire(1.0, lambda: order.append("b"))
        sim.schedule_at(1.0, lambda: order.append("c"))
        sim.schedule_fire(0.5, lambda: order.append("d"))
        sim.run()
        assert order == ["d", "a", "b", "c"]

    def test_schedule_fire_rejects_past(self):
        sim = Simulator(start=3.0)
        with pytest.raises(ValueError):
            sim.schedule_fire(2.0, lambda: None)

    def test_compaction_with_interleaved_cancels_at_scale(self):
        # A retransmit-heavy mission cancels timers by the thousands,
        # interleaved with live events. The heap must shed them, keep the
        # survivors in exact order, and keep `pending` truthful throughout.
        sim = Simulator()
        rng = SeededRng(42)
        hits = []
        live = {}
        handles = {}
        for i in range(5000):
            when = rng.uniform(0.0, 100.0)
            handles[i] = sim.schedule(when, lambda i=i: hits.append(i))
            live[i] = when
        order = list(range(5000))
        rng.shuffle(order)
        for i in order[:4500]:
            handles[i].cancel()
            del live[i]
        assert sim.pending == len(live) == 500
        # Compaction must have bounded the physical queue.
        assert len(sim._queue) < 2 * 500 + 64
        sim.run()
        expected = [i for i, _ in sorted(live.items(), key=lambda kv: (kv[1], kv[0]))]
        assert hits == expected
        assert sim.pending == 0

    def test_batch_tie_break_is_deterministic(self):
        # Two identical schedules of a same-instant batch (mixed fast-path
        # and handle-path inserts) must fire in the same total order.
        def run_once():
            sim = Simulator()
            order = []
            for i in range(200):
                if i % 3 == 0:
                    sim.schedule_fire(1.0, lambda i=i: order.append(i))
                else:
                    sim.schedule_at(1.0, lambda i=i: order.append(i))
            sim.run()
            return order

        first, second = run_once(), run_once()
        assert first == second == list(range(200))

    def test_schedule_n_events_costs_n_log_n_comparisons(self):
        # Counter-based guard: pushing and popping N randomly-timed events
        # must stay within a small constant of N log2 N element
        # comparisons — the heap is not allowed to degenerate.
        n = 4096
        counts = {"lt": 0}
        original = _ScheduledEvent.__lt__

        def counting_lt(self, other):
            counts["lt"] += 1
            return original(self, other)

        _ScheduledEvent.__lt__ = counting_lt
        try:
            sim = Simulator()
            rng = SeededRng(7)
            for _ in range(n):
                sim.schedule_fire(rng.uniform(0.0, 1000.0), lambda: None)
            sim.run()
        finally:
            _ScheduledEvent.__lt__ = original
        assert sim.events_executed == n
        bound = 4 * n * math.log2(n)
        assert counts["lt"] <= bound, (
            f"{counts['lt']} comparisons for {n} events exceeds "
            f"O(N log N) bound {bound:.0f}"
        )
