"""Unit tests for the simulated network substrate."""

import pytest

from repro.sim import Simulator
from repro.simnet import Address, GroupName, LinkModel, Packet, SimNetwork
from repro.simnet.addressing import (
    CONTROL_GROUP,
    file_group,
    variable_group,
)
from repro.simnet.models import PERFECT_LINK, RADIO_LINK
from repro.simnet.packet import WIRE_OVERHEAD_BYTES
from repro.util import SeededRng, TransportError


def make_net(loss=0.0, latency=0.001, bandwidth=0.0, seed=1):
    sim = Simulator()
    link = LinkModel(latency=latency, jitter=0.0, loss=loss, bandwidth_bps=bandwidth)
    net = SimNetwork(sim, SeededRng(seed), default_link=link)
    return sim, net


class TestAddressing:
    def test_address_str(self):
        assert str(Address("node-a", 4000)) == "node-a:4000"

    def test_address_validation(self):
        with pytest.raises(ValueError):
            Address("", 1)
        with pytest.raises(ValueError):
            Address("a", 70000)

    def test_group_name_prefix_enforced(self):
        with pytest.raises(ValueError):
            GroupName("var.gps")
        assert variable_group("gps.position") == "mcast.var.gps.position"
        assert file_group("photo.1") == "mcast.file.photo.1"
        assert CONTROL_GROUP.startswith("mcast.")

    def test_addresses_are_hashable_and_ordered(self):
        a, b = Address("a", 1), Address("a", 2)
        assert a < b
        assert len({a, b, Address("a", 1)}) == 2


class TestUnicastDelivery:
    def test_packet_arrives_after_latency(self):
        sim, net = make_net(latency=0.01)
        a, b = net.attach("a"), net.attach("b")
        got = []
        b.set_receiver(lambda p: got.append((sim.now(), p.payload)))
        a.send(Packet(Address("a", 1), Address("b", 2), b"hello"))
        sim.run()
        assert got == [(pytest.approx(0.01), b"hello")]

    def test_unknown_destination_silently_dropped(self):
        sim, net = make_net()
        a = net.attach("a")
        a.send(Packet(Address("a", 1), Address("ghost", 2), b"x"))
        sim.run()
        assert net.stats.deliveries.packets == 0
        assert net.stats.drops_down.packets == 1

    def test_source_must_match_nic(self):
        _, net = make_net()
        a = net.attach("a")
        net.attach("b")
        with pytest.raises(TransportError):
            a.send(Packet(Address("b", 1), Address("a", 2), b"x"))

    def test_mtu_enforced(self):
        sim, net = make_net()
        a = net.attach("a")
        net.attach("b")
        with pytest.raises(TransportError):
            a.send(Packet(Address("a", 1), Address("b", 2), b"x" * 2000))

    def test_self_send_loops_back(self):
        sim, net = make_net(latency=0.01)
        a = net.attach("a")
        got = []
        a.set_receiver(lambda p: got.append(p.payload))
        a.send(Packet(Address("a", 1), Address("a", 2), b"self"))
        sim.run()
        assert got == [b"self"]


class TestMulticast:
    def test_group_members_all_receive(self):
        sim, net = make_net()
        group = GroupName("mcast.test")
        src = net.attach("src")
        got = {}
        for name in ["r1", "r2", "r3"]:
            nic = net.attach(name)
            nic.join(group)
            nic.set_receiver(lambda p, n=name: got.setdefault(n, p.payload))
        src.send(Packet(Address("src", 1), group, b"data"))
        sim.run()
        assert got == {"r1": b"data", "r2": b"data", "r3": b"data"}

    def test_multicast_counts_one_emission(self):
        sim, net = make_net()
        group = GroupName("mcast.test")
        src = net.attach("src")
        for name in ["r1", "r2", "r3", "r4"]:
            net.attach(name).join(group)
        src.send(Packet(Address("src", 1), group, b"data"))
        sim.run()
        assert net.stats.emissions.packets == 1
        assert net.stats.deliveries.packets == 4

    def test_sender_not_in_group_does_not_loop_back(self):
        sim, net = make_net()
        group = GroupName("mcast.test")
        src = net.attach("src")
        got = []
        src.set_receiver(lambda p: got.append(p))
        net.attach("r1").join(group)
        src.send(Packet(Address("src", 1), group, b"data"))
        sim.run()
        assert got == []

    def test_sender_in_group_hears_own_packets(self):
        sim, net = make_net()
        group = GroupName("mcast.test")
        src = net.attach("src")
        src.join(group)
        got = []
        src.set_receiver(lambda p: got.append(p.payload))
        src.send(Packet(Address("src", 1), group, b"data"))
        sim.run()
        assert got == [b"data"]

    def test_leave_stops_delivery(self):
        sim, net = make_net()
        group = GroupName("mcast.test")
        src, r1 = net.attach("src"), net.attach("r1")
        got = []
        r1.set_receiver(lambda p: got.append(p))
        r1.join(group)
        r1.leave(group)
        src.send(Packet(Address("src", 1), group, b"data"))
        sim.run()
        assert got == []
        assert net.stats.drops_nomember.packets == 1


class TestLossAndFaults:
    def test_total_loss_drops_everything(self):
        sim, net = make_net(loss=1.0)
        a, b = net.attach("a"), net.attach("b")
        got = []
        b.set_receiver(lambda p: got.append(p))
        for _ in range(10):
            a.send(Packet(Address("a", 1), Address("b", 2), b"x"))
        sim.run()
        assert got == []
        assert net.stats.drops_loss.packets == 10

    def test_partial_loss_is_roughly_calibrated(self):
        sim, net = make_net(loss=0.3, seed=11)
        a, b = net.attach("a"), net.attach("b")
        got = []
        b.set_receiver(lambda p: got.append(p))
        for _ in range(2000):
            a.send(Packet(Address("a", 1), Address("b", 2), b"x"))
        sim.run()
        assert 1250 < len(got) < 1550  # ~70% of 2000

    def test_down_node_receives_nothing(self):
        sim, net = make_net()
        a, b = net.attach("a"), net.attach("b")
        got = []
        b.set_receiver(lambda p: got.append(p))
        net.set_node_up("b", False)
        a.send(Packet(Address("a", 1), Address("b", 2), b"x"))
        sim.run()
        assert got == []
        net.set_node_up("b", True)
        a.send(Packet(Address("a", 1), Address("b", 2), b"y"))
        sim.run()
        assert [p.payload for p in got] == [b"y"]

    def test_down_node_cannot_send(self):
        sim, net = make_net()
        a, b = net.attach("a"), net.attach("b")
        got = []
        b.set_receiver(lambda p: got.append(p))
        net.set_node_up("a", False)
        a.send(Packet(Address("a", 1), Address("b", 2), b"x"))
        sim.run()
        assert got == []


class TestBandwidth:
    def test_serialization_delay_orders_back_to_back_sends(self):
        # 1000-byte payloads at 1 Mbit/s: (1000+42)*8 / 1e6 = ~8.3 ms each.
        sim, net = make_net(latency=0.0, bandwidth=1_000_000.0)
        a, b = net.attach("a"), net.attach("b")
        times = []
        b.set_receiver(lambda p: times.append(sim.now()))
        for _ in range(3):
            a.send(Packet(Address("a", 1), Address("b", 2), b"x" * 1000))
        sim.run()
        per_packet = (1000 + WIRE_OVERHEAD_BYTES) * 8 / 1_000_000.0
        assert times == [
            pytest.approx(per_packet),
            pytest.approx(2 * per_packet),
            pytest.approx(3 * per_packet),
        ]

    def test_infinite_bandwidth_means_no_serialization(self):
        sim, net = make_net(latency=0.0, bandwidth=0.0)
        a, b = net.attach("a"), net.attach("b")
        times = []
        b.set_receiver(lambda p: times.append(sim.now()))
        a.send(Packet(Address("a", 1), Address("b", 2), b"x" * 1000))
        sim.run()
        assert times == [0.0]


class TestLinkModels:
    def test_link_override_applies(self):
        sim, net = make_net(latency=0.001)
        a, b = net.attach("a"), net.attach("b")
        net.set_link("a", "b", LinkModel(latency=0.5, jitter=0.0, bandwidth_bps=0.0))
        times = []
        b.set_receiver(lambda p: times.append(sim.now()))
        a.send(Packet(Address("a", 1), Address("b", 2), b"x"))
        sim.run()
        assert times == [pytest.approx(0.5)]

    def test_model_validation(self):
        with pytest.raises(ValueError):
            LinkModel(loss=1.5)
        with pytest.raises(ValueError):
            LinkModel(latency=-1)
        with pytest.raises(ValueError):
            LinkModel(mtu=0)

    def test_preset_links_are_sane(self):
        assert PERFECT_LINK.loss == 0.0
        assert RADIO_LINK.loss > 0.0
        assert RADIO_LINK.bandwidth_bps < PERFECT_LINK.mtu * 8 * 1000

    def test_deterministic_replay(self):
        def run(seed):
            sim, net = make_net(loss=0.2, seed=seed)
            a, b = net.attach("a"), net.attach("b")
            got = []
            b.set_receiver(lambda p: got.append(p.payload))
            for i in range(50):
                a.send(Packet(Address("a", 1), Address("b", 2), bytes([i])))
            sim.run()
            return got

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestTrace:
    def test_trace_records_deliveries(self):
        sim, net = make_net()
        a, b = net.attach("a"), net.attach("b")
        b.set_receiver(lambda p: None)
        trace = net.enable_trace()
        a.send(Packet(Address("a", 1), Address("b", 2), b"one"))
        a.send(Packet(Address("a", 1), Address("b", 2), b"two"))
        sim.run()
        assert [p.payload for p in trace] == [b"one", b"two"]
        assert all(p.delivered_at >= p.sent_at for p in trace)


class TestGroupMembershipSafety:
    def test_group_members_returns_a_copy(self):
        # Regression: group_members used to hand out the live set; a caller
        # mutating it corrupted membership (and now would desync the reach
        # cache as well).
        sim, net = make_net()
        a, b = net.attach("a"), net.attach("b")
        group = GroupName("mcast.var.x")
        a.join(group)
        b.join(group)
        members = net.group_members(group)
        members.clear()
        assert net.group_members(group) == {"a", "b"}

    def test_group_members_copy_is_independent_per_call(self):
        sim, net = make_net()
        net.attach("a").join(GroupName("mcast.var.x"))
        first = net.group_members(GroupName("mcast.var.x"))
        second = net.group_members(GroupName("mcast.var.x"))
        assert first == second and first is not second


class TestZones:
    def make_zoned(self, isolation=True):
        sim, net = make_net(latency=0.001)
        got = {}
        group = GroupName("mcast.control.zone-test")
        for node in ("a1", "a2", "b1", "free"):
            nic = net.attach(node)
            got[node] = []
            nic.set_receiver(lambda p, n=node: got[n].append(p.payload))
            nic.join(group)
        net.add_node_to_zone("a1", "za")
        net.add_node_to_zone("a2", "za")
        net.add_node_to_zone("b1", "zb")
        net.set_zone_isolation(isolation)
        return sim, net, got, group

    def test_isolation_scopes_multicast_to_shared_zones(self):
        sim, net, got, group = self.make_zoned()
        net.attach("a1").send(Packet(Address("a1", 1), group, b"hi"))
        sim.run()
        assert got["a2"] == [b"hi"]  # same zone
        assert got["b1"] == []  # different zone
        assert got["free"] == [b"hi"]  # unzoned hears everything

    def test_unzoned_sender_reaches_all(self):
        sim, net, got, group = self.make_zoned()
        net.attach("free").send(Packet(Address("free", 1), group, b"yo"))
        sim.run()
        assert got["a1"] == got["a2"] == got["b1"] == [b"yo"]

    def test_relay_bridges_two_zones(self):
        sim, net, got, group = self.make_zoned()
        net.add_node_to_zone("b1", "za")  # b1 becomes a relay into za
        net.attach("a1").send(Packet(Address("a1", 1), group, b"x"))
        sim.run()
        assert got["b1"] == [b"x"]
        assert net.node_zones("b1") == {"za", "zb"}

    def test_isolation_off_keeps_full_reach(self):
        sim, net, got, group = self.make_zoned(isolation=False)
        net.attach("a1").send(Packet(Address("a1", 1), group, b"hi"))
        sim.run()
        assert got["b1"] == [b"hi"]

    def test_unicast_never_zone_filtered(self):
        sim, net, got, group = self.make_zoned()
        net.attach("a1").send(Packet(Address("a1", 1), Address("b1", 2), b"uni"))
        sim.run()
        assert got["b1"] == [b"uni"]

    def test_zone_change_invalidates_reach_cache(self):
        sim, net, got, group = self.make_zoned()
        net.attach("a1").send(Packet(Address("a1", 1), group, b"one"))
        sim.run()
        assert got["b1"] == []
        net.add_node_to_zone("a1", "zb")  # now shares a zone with b1
        net.attach("a1").send(Packet(Address("a1", 1), group, b"two"))
        sim.run()
        assert got["b1"] == [b"two"]


class TestOptimizedPathParity:
    def test_optimized_and_reference_traces_match(self):
        def run(optimized):
            sim = Simulator()
            link = LinkModel(latency=0.002, jitter=0.0005, loss=0.1)
            net = SimNetwork(sim, SeededRng(11), default_link=link,
                             optimized=optimized)
            group = GroupName("mcast.var.y")
            for node in ("a", "b", "c", "d"):
                nic = net.attach(node)
                nic.set_receiver(lambda p: None)
                nic.join(group)
            trace = net.enable_trace()
            a = net.attach("a")
            for i in range(40):
                a.send(Packet(Address("a", 1), group, bytes([i])))
                a.send(Packet(Address("a", 1), Address("c", 2), bytes([i])))
            sim.run()
            return [
                (p.source, p.destination, p.payload, p.sent_at, p.delivered_at)
                for p in trace
            ]

        assert run(True) == run(False)
