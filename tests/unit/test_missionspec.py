"""Tests for mission specifications, the CLI, and on-change publication."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro import SimRuntime
from repro.flight import WaypointAction
from repro.flight.missionspec import build_mission, load_mission_spec
from repro.util.errors import ConfigurationError

SURVEY_DOC = {
    "name": "t-survey",
    "origin": {"lat": 41.0, "lon": 2.0, "alt": 280},
    "cruise_speed": 22.0,
    "plan": {"type": "survey", "rows": 1, "row_length_m": 400, "photos_per_row": 1},
    "mission": {"photo_prefix": "px", "detection_threshold": 0.4},
    "camera": {"default_features": 1, "features_at": {"1": 5}},
}


class TestLoadSpec:
    def test_from_dict(self):
        spec = load_mission_spec(SURVEY_DOC)
        assert spec.name == "t-survey"
        assert spec.origin.alt == 280
        assert spec.cruise_speed == 22.0
        assert spec.photo_prefix == "px"
        assert spec.camera_features == {1: 5}
        assert len(spec.plan.photo_waypoints) == 1

    def test_from_json_text(self):
        spec = load_mission_spec(json.dumps(SURVEY_DOC))
        assert spec.name == "t-survey"

    def test_from_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(SURVEY_DOC))
        spec = load_mission_spec(path)
        assert spec.name == "t-survey"

    def test_waypoint_plan(self):
        doc = {
            "name": "wp",
            "origin": {"lat": 41.0, "lon": 2.0},
            "plan": {
                "type": "waypoints",
                "waypoints": [
                    {"lat": 41.0, "lon": 2.0},
                    {"lat": 41.01, "lon": 2.0, "action": "take_photo", "radius": 40},
                ],
            },
        }
        spec = load_mission_spec(doc)
        assert len(spec.plan) == 2
        assert spec.plan.waypoint(1).action == WaypointAction.TAKE_PHOTO
        assert spec.plan.waypoint(1).capture_radius_m == 40

    def test_loiter_plan(self):
        doc = {
            "name": "loiter",
            "origin": {"lat": 41.0, "lon": 2.0},
            "plan": {"type": "loiter", "radius_m": 300, "points": 6, "laps": 2},
        }
        spec = load_mission_spec(doc)
        assert len(spec.plan) == 12

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("name"),
            lambda d: d.pop("origin"),
            lambda d: d.pop("plan"),
            lambda d: d["plan"].update(type="teleport"),
            lambda d: d["plan"].update(type="loiter", points=2),
        ],
    )
    def test_invalid_documents_rejected(self, mutate):
        doc = json.loads(json.dumps(SURVEY_DOC))
        mutate(doc)
        with pytest.raises(ConfigurationError):
            load_mission_spec(doc)

    def test_bad_waypoint_action_rejected(self):
        doc = {
            "name": "x",
            "origin": {"lat": 41.0, "lon": 2.0},
            "plan": {
                "type": "waypoints",
                "waypoints": [{"lat": 41.0, "lon": 2.0, "action": "explode"}],
            },
        }
        with pytest.raises(ConfigurationError, match="unknown action"):
            load_mission_spec(doc)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid mission JSON"):
            load_mission_spec("{not json")


class TestBuildMission:
    def test_spec_flies_to_completion(self):
        runtime = SimRuntime(seed=3)
        spec = load_mission_spec(SURVEY_DOC)
        services = build_mission(runtime, spec)
        runtime.start()
        assert runtime.run_until(lambda: services["mission"].complete, timeout=300.0)
        runtime.run_for(3.0)
        assert services["camera"].photos_taken == 1
        assert services["storage"].stored_names() == ["px.1"]
        # Waypoint 1 has 5 embedded features: a detection must fire.
        assert services["video"].detections == 1

    def test_shipped_example_missions_parse(self):
        root = Path(__file__).resolve().parent.parent.parent / "examples" / "missions"
        for mission_file in sorted(root.glob("*.json")):
            spec = load_mission_spec(mission_file)
            assert len(spec.plan) > 0


class TestCli:
    def test_validate_command(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.json"
        path.write_text(json.dumps(SURVEY_DOC))
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "t-survey" in out
        assert "photo waypoints" in out

    def test_fly_command(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.json"
        path.write_text(json.dumps(SURVEY_DOC))
        assert main(["fly", str(path), "--seed", "2", "--timeout", "300"]) == 0
        out = capsys.readouterr().out
        assert "completed: True" in out

    def test_error_paths(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["validate", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestPublishOnChange:
    def make(self):
        from repro.encoding.schema import parse_type

        schema = parse_type("struct V { float64 x; string mode; }")
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("chg.var", schema)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("chg.var"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        return runtime, pub, sub

    def test_first_value_always_publishes(self):
        runtime, pub, sub = self.make()
        assert pub.handle.publish_on_change({"x": 1.0, "mode": "a"}) is True

    def test_identical_value_suppressed(self):
        runtime, pub, sub = self.make()
        pub.handle.publish_on_change({"x": 1.0, "mode": "a"})
        assert pub.handle.publish_on_change({"x": 1.0, "mode": "a"}) is False
        runtime.run_for(0.5)
        assert len(sub.values_of("chg.var")) == 1

    def test_deadband_suppresses_small_numeric_drift(self):
        runtime, pub, sub = self.make()
        pub.handle.publish_on_change({"x": 1.0, "mode": "a"}, deadband=0.5)
        assert pub.handle.publish_on_change({"x": 1.2, "mode": "a"}, deadband=0.5) is False
        assert pub.handle.publish_on_change({"x": 1.6, "mode": "a"}, deadband=0.5) is True

    def test_non_numeric_change_always_substantial(self):
        runtime, pub, sub = self.make()
        pub.handle.publish_on_change({"x": 1.0, "mode": "a"}, deadband=10.0)
        assert pub.handle.publish_on_change({"x": 1.0, "mode": "b"}, deadband=10.0) is True

    def test_changed_substantially_helper(self):
        from repro.primitives.variables import _changed_substantially as chg

        assert chg(1.0, 1.4, 0.5) is False
        assert chg(1.0, 1.6, 0.5) is True
        assert chg(True, False, 10.0) is True
        assert chg([1.0, 2.0], [1.0, 2.4], 0.5) is False
        assert chg([1.0, 2.0], [1.0, 2.9], 0.5) is True
        assert chg([1.0], [1.0, 2.0], 0.5) is True
        assert chg({"a": 1.0}, {"b": 1.0}, 0.5) is True
        assert chg(("tag", 1.0), ("tag", 1.2), 0.5) is False
        assert chg(("tag", 1.0), ("other", 1.0), 0.5) is True
