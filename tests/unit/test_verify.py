"""Unit tests for the runtime-verification subsystem (repro.verify).

The property suite (tests/property/test_verify_properties.py) pins
compiled-vs-naive equivalence on arbitrary streams; these tests pin the
*intended* semantics on hand-written cases — so a bug that breaks both
engines identically still fails here — plus the engine routing, the
fleet wiring into recorder/metrics, per-container self-arming, and the
CLI front end.
"""

import json

import pytest

from repro.observability.probes import MonitorEvent
from repro.util.errors import ConfigurationError
from repro.verify.compiler import compile_spec
from repro.verify.interp import NaiveMonitor
from repro.verify.library import standard_specs, variable_validity
from repro.verify.monitor import FleetMonitor, MonitorEngine
from repro.verify.spec import (
    GLOBAL,
    Spec,
    Until,
    always,
    at_most_once,
    event,
    never,
    response,
    until,
)


def evt(kind, name="n", t=0.0, container="c1", key=None, **attrs):
    return MonitorEvent(kind, name, container, t, key=key, attrs=attrs)


def spec_of(formula, key=None, name="s", severity="error"):
    return Spec(name=name, owner="tests", formula=formula, key=key,
                severity=severity)


def run_compiled(spec, events, end=None):
    got = []
    automaton = compile_spec(spec, got.append)
    for e in events:
        if e.kind in spec.kinds():
            automaton.step(e)
    if end is not None:
        automaton.finish(end)
    return automaton, got


class TestSpecLanguage:
    def test_event_requires_kind(self):
        with pytest.raises(ConfigurationError):
            event("")

    def test_pattern_narrowing(self):
        p = event("var.serve", name="gps", band=2,
                  where=lambda e: e.time > 1.0)
        assert p.matches(evt("var.serve", "gps", t=2.0, band=2))
        assert not p.matches(evt("var.publish", "gps", t=2.0, band=2))
        assert not p.matches(evt("var.serve", "imu", t=2.0, band=2))
        assert not p.matches(evt("var.serve", "gps", t=2.0, band=1))
        assert not p.matches(evt("var.serve", "gps", t=0.5, band=2))

    def test_always_requires_callable(self):
        with pytest.raises(ConfigurationError):
            always(event("x"), that="not-callable")

    def test_response_bound_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            response(event("a"), event("b"), within=0.0)

    def test_spec_requires_name_owner_and_known_severity(self):
        formula = never(event("x"))
        with pytest.raises(ConfigurationError):
            Spec(name="", owner="o", formula=formula)
        with pytest.raises(ConfigurationError):
            Spec(name="n", owner="", formula=formula)
        with pytest.raises(ConfigurationError):
            Spec(name="n", owner="o", formula=formula, severity="fatal")

    def test_at_most_once_is_self_release_until(self):
        f = at_most_once(event("x"))
        assert isinstance(f, Until)
        assert f.allowed == f.release == event("x")

    def test_kinds_deduplicated_in_order(self):
        s = spec_of(response(event("rpc.call"), event("rpc.call")))
        assert s.kinds() == ("rpc.call",)
        s2 = spec_of(until(event("a"), event("b")))
        assert s2.kinds() == ("a", "b")


class TestCompiledSemantics:
    def test_never_fires_with_attribution(self):
        _, got = run_compiled(spec_of(never(event("boom"))),
                              [evt("boom", t=3.5, container="uav-7")])
        assert len(got) == 1
        v = got[0]
        assert (v.spec, v.reason, v.time, v.container) == (
            "s", "never", 3.5, "uav-7")
        assert v.event is not None and v.event.kind == "boom"

    def test_always_predicate(self):
        s = spec_of(always(event("m"), that=lambda e: e.attrs["ok"]))
        _, got = run_compiled(s, [evt("m", ok=True), evt("m", t=1.0, ok=False)])
        assert [(v.reason, v.time) for v in got] == [("always", 1.0)]

    def test_response_at_exactly_deadline_counts(self):
        s = spec_of(response(event("q"), event("r"), within=1.0))
        _, got = run_compiled(s, [evt("q", "k", t=0.0), evt("r", "k", t=1.0)],
                              end=5.0)
        assert got == []

    def test_response_timeout_stamped_at_deadline(self):
        s = spec_of(response(event("q"), event("r"), within=1.0))
        _, got = run_compiled(
            s, [evt("q", "k", t=0.0, container="asker"),
                evt("r", "k", t=2.0, container="replier")], end=5.0)
        assert len(got) == 1
        v = got[0]
        # Violation is stamped at the missed deadline and attributed to
        # the container that armed the obligation, not the late replier.
        assert (v.reason, v.time, v.container) == ("response-timeout", 1.0,
                                                   "asker")

    def test_earliest_trigger_holds_the_deadline(self):
        s = spec_of(response(event("q"), event("r"), within=1.0))
        _, got = run_compiled(
            s, [evt("q", "k", t=0.0), evt("q", "k", t=0.9),
                evt("r", "k", t=1.5)], end=5.0)
        # The second trigger does not re-arm; one violation at t=1.0.
        assert [(v.reason, v.time) for v in got] == [("response-timeout", 1.0)]

    def test_discharge_then_rearm_within_one_stream(self):
        s = spec_of(response(event("q"), event("r"), within=1.0))
        _, got = run_compiled(
            s, [evt("q", "k", t=0.0), evt("r", "k", t=0.5),
                evt("q", "k", t=0.6)], end=5.0)
        assert [(v.reason, v.time) for v in got] == [("response-timeout", 1.6)]

    def test_unbounded_response_never_times_out(self):
        s = spec_of(response(event("q"), event("r")))
        automaton, got = run_compiled(s, [evt("q", "k", t=0.0)], end=1e9)
        assert got == []
        assert automaton.pending_obligations() == [("k", None)]

    def test_until_violates_after_release_and_release_wins_ties(self):
        s = spec_of(until(event("use"), event("close")))
        _, got = run_compiled(
            s, [evt("use", "k", t=0.0), evt("close", "k", t=1.0),
                evt("use", "k", t=2.0)])
        assert [(v.reason, v.time) for v in got] == [("until", 2.0)]
        # at_most_once: the first occurrence is the release (release wins
        # when both patterns match); only repeats violate.
        s2 = spec_of(at_most_once(event("fire")))
        _, got2 = run_compiled(
            s2, [evt("fire", "k", t=0.0), evt("fire", "k", t=1.0),
                 evt("fire", "k", t=2.0)])
        assert [(v.time) for v in got2] == [1.0, 2.0]

    def test_per_key_scoping_isolates_obligations(self):
        s = spec_of(response(event("q"), event("r"), within=1.0))
        _, got = run_compiled(
            s, [evt("q", "a", t=0.0), evt("q", "b", t=0.2),
                evt("r", "a", t=0.5)], end=5.0)
        assert [(v.reason, v.key) for v in got] == [("response-timeout", "b")]

    def test_global_key_collapses_instances(self):
        s = spec_of(response(event("q"), event("r"), within=1.0), key=GLOBAL)
        _, got = run_compiled(
            s, [evt("q", "a", t=0.0), evt("r", "b", t=0.5)], end=5.0)
        assert got == []

    def test_string_and_callable_keys(self):
        s = spec_of(at_most_once(event("d")), key="slot")
        _, got = run_compiled(
            s, [evt("d", t=0.0, slot=1), evt("d", t=1.0, slot=2),
                evt("d", t=2.0, slot=1)])
        assert [(v.key, v.time) for v in got] == [(1, 2.0)]
        s2 = spec_of(at_most_once(event("d")),
                     key=lambda e: (e.container, e.name))
        _, got2 = run_compiled(
            s2, [evt("d", "x", t=0.0, container="c1"),
                 evt("d", "x", t=1.0, container="c2"),
                 evt("d", "x", t=2.0, container="c1")])
        assert [(v.key, v.time) for v in got2] == [(("c1", "x"), 2.0)]

    def test_finish_is_strict_about_the_boundary(self):
        s = spec_of(response(event("q"), event("r"), within=1.0))
        automaton, got = run_compiled(s, [evt("q", "k", t=0.0)], end=1.0)
        # deadline == now stays pending: truncation never manufactures one.
        assert got == []
        assert automaton.pending_obligations() == [("k", 1.0)]
        automaton.finish(1.0001)
        assert [(v.reason, v.time) for v in got] == [("response-timeout", 1.0)]
        assert automaton.pending_obligations() == []

    def test_violation_severity_follows_the_spec(self):
        s = spec_of(never(event("x")), severity="warning")
        _, got = run_compiled(s, [evt("x")])
        assert got[0].severity == "warning"

    def test_naive_interpreter_skips_unrouted_kinds(self):
        mon = NaiveMonitor(spec_of(never(event("x"))))
        mon.observe(evt("y"))
        assert mon.violations == []
        mon.observe(evt("x"))
        assert [v.reason for v in mon.violations] == ["never"]


class TestMonitorEngine:
    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(ConfigurationError):
            MonitorEngine([spec_of(never(event("a"))),
                           spec_of(never(event("b")))])

    def test_routing_only_steps_matching_kinds(self):
        engine = MonitorEngine([spec_of(never(event("bad")))])
        engine.observe(evt("good"))
        engine.observe(evt("bad", t=1.0))
        assert engine.events_observed == 2
        assert [(v.spec, v.time) for v in engine.violations] == [("s", 1.0)]

    def test_on_violation_callback_and_pending(self):
        seen = []
        engine = MonitorEngine(
            [spec_of(response(event("q"), event("r"), within=2.0))],
            on_violation=seen.append)
        engine.observe(evt("q", "k", t=0.0))
        assert engine.pending() == {"s": [("k", 2.0)]}
        engine.finish(10.0)
        assert len(seen) == 1 and seen[0].reason == "response-timeout"
        assert engine.pending() == {}


SCHEMA = None  # built lazily to keep encoding imports out of pure-spec tests


def _schema():
    global SCHEMA
    if SCHEMA is None:
        from repro.encoding.types import FLOAT64, StructType

        SCHEMA = StructType("S", [("x", FLOAT64)])
    return SCHEMA


class TestFleetMonitorLive:
    def _stale_serve_fleet(self, monkeypatch):
        """A two-container fleet where the serve-freshness predicate is
        broken: .latest() hands out arbitrarily stale samples."""
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import two_containers

        from repro.primitives.variables import VariableManager

        runtime, a, b = two_containers(seed=5)
        pub = a.variables.provide("gps", _schema(), validity=0.5)
        monitor = runtime.enable_verification([variable_validity()])
        runtime.start()
        runtime.run_for(2.0)
        sub = b.variables.subscribe("gps")
        pub.publish({"x": 1.0})
        runtime.run_for(3.0)  # sample is now 3 s old, validity 0.5 s
        monkeypatch.setattr(VariableManager, "_fresh",
                            lambda self, sub, validity, age: True)
        assert sub.latest() == {"x": 1.0}  # the bug serves the stale value
        return runtime, b, sub, monitor

    def test_clean_fleet_has_no_violations(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import two_containers

        runtime, a, b = two_containers(seed=4)
        pub = a.variables.provide("gps", _schema(), validity=5.0)
        monitor = runtime.enable_verification(standard_specs())
        runtime.start()
        runtime.run_for(2.0)
        sub = b.variables.subscribe("gps")
        pub.publish({"x": 2.5})
        runtime.run_for(1.0)
        assert sub.latest() == {"x": 2.5}
        report = runtime.verification_report()
        assert report["violations"] == []
        assert report["events_observed"] > 0
        assert len(report["specs"]) == 5

    def test_stale_serve_is_caught_and_fanned_out(self, monkeypatch):
        runtime, b, _, monitor = self._stale_serve_fleet(monkeypatch)
        runtime.verification_report()
        assert len(monitor.violations) == 1
        v = monitor.violations[0]
        assert (v.spec, v.key, v.container, v.reason) == (
            "var-validity", "gps", "b", "always")
        entries = [e for e in b.recorder.dump()
                   if e["category"] == "verify.violation"]
        assert len(entries) == 1 and entries[0]["spec"] == "var-validity"
        snapshot = b.metrics.snapshot()
        assert snapshot[
            "verify_violations{severity=error,spec=var-validity}"] == 1

    def test_violation_carries_ambient_trace_context(self, monkeypatch):
        runtime, b, sub, monitor = self._stale_serve_fleet(monkeypatch)
        b.tracer.enabled = True
        span = b.tracer.start_span("stale-read", kind="test")
        with b.tracer.activate(span.context()):
            sub.latest()
        b.tracer.finish(span)
        runtime.verification_report()
        traced = [v for v in monitor.violations if v.trace_id is not None]
        assert traced
        assert traced[-1].span_id == span.span_id

    def test_container_self_arms_from_config(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import two_containers

        runtime, a, b = two_containers(seed=6, verification="standard")
        runtime.start()
        runtime.run_for(1.0)
        assert a.monitor is not None and b.monitor is not None
        assert a.probes.enabled
        runtime.stop()

    def test_verification_off_keeps_probes_dormant(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import two_containers

        runtime, a, b = two_containers(seed=6)
        runtime.start()
        runtime.run_for(1.0)
        assert a.monitor is None
        assert not a.probes.enabled
        runtime.stop()

    def test_config_rejects_unknown_verification_mode(self):
        from repro.container.config import ContainerConfig

        with pytest.raises(ConfigurationError):
            ContainerConfig(container_id="c", node="n", verification="extreme")


MISSION_DOC = {
    "name": "verify-smoke",
    "origin": {"lat": 41.0, "lon": 2.0, "alt": 280},
    "cruise_speed": 22.0,
    "plan": {"type": "survey", "rows": 1, "row_length_m": 400,
             "photos_per_row": 1},
    "mission": {"photo_prefix": "px", "detection_threshold": 0.4},
    "camera": {"default_features": 1},
}


class TestCliVerify:
    def test_verify_command_clean_mission(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.json"
        path.write_text(json.dumps(MISSION_DOC), encoding="utf-8")
        code = main(["verify", str(path), "--seed", "3",
                     "--timeout", "300", "--json"])
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert code == 0
        assert doc["completed"] is True
        assert doc["violations"] == []
        assert doc["events_observed"] > 0
        assert {s["name"] for s in doc["specs"]} >= {
            "var-validity", "invocation-termination"}

    def test_verify_command_human_output(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.json"
        path.write_text(json.dumps(MISSION_DOC), encoding="utf-8")
        code = main(["verify", str(path), "--seed", "3", "--timeout", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no violations" in out
        assert "spec var-validity" in out
