"""Unit tests for the FlightGear-style telemetry codec and bridge service."""

import pytest

from repro.telemetry import GenericProtocol, TelemetryField
from repro.telemetry.generic import FLIGHTGEAR_POSITION_PROTOCOL
from repro.util.errors import EncodingError

FIELDS = [
    TelemetryField("lat", "double", "%.6f"),
    TelemetryField("alt", "float", "%.1f"),
    TelemetryField("count", "int"),
    TelemetryField("armed", "bool"),
]

VALUES = {"lat": 41.275123, "alt": 300.5, "count": 42, "armed": True}


class TestAsciiMode:
    def test_encode_shape(self):
        protocol = GenericProtocol(FIELDS)
        frame = protocol.encode(VALUES)
        assert frame == b"41.275123,300.5,42,1\n"

    def test_round_trip(self):
        protocol = GenericProtocol(FIELDS)
        decoded = protocol.decode(protocol.encode(VALUES))
        assert decoded["lat"] == pytest.approx(41.275123)
        assert decoded["count"] == 42
        assert decoded["armed"] is True

    def test_custom_separator(self):
        protocol = GenericProtocol(FIELDS, separator="\t")
        assert b"\t" in protocol.encode(VALUES)

    def test_missing_field_rejected(self):
        protocol = GenericProtocol(FIELDS)
        with pytest.raises(EncodingError, match="missing"):
            protocol.encode({"lat": 1.0})

    def test_field_count_mismatch_on_decode(self):
        protocol = GenericProtocol(FIELDS)
        with pytest.raises(EncodingError):
            protocol.decode(b"1.0,2.0\n")

    def test_string_field(self):
        protocol = GenericProtocol([TelemetryField("id", "string", "%s")])
        assert protocol.decode(protocol.encode({"id": "UAV-1"})) == {"id": "UAV-1"}


class TestBinaryMode:
    def test_round_trip(self):
        protocol = GenericProtocol(FIELDS, binary=True)
        decoded = protocol.decode(protocol.encode(VALUES))
        assert decoded["lat"] == pytest.approx(41.275123)
        assert decoded["alt"] == pytest.approx(300.5, abs=0.01)
        assert decoded["count"] == 42
        assert decoded["armed"] is True

    def test_frame_size_fixed(self):
        protocol = GenericProtocol(FIELDS, binary=True)
        assert protocol.frame_size == 8 + 4 + 4 + 1
        assert len(protocol.encode(VALUES)) == protocol.frame_size

    def test_truncated_rejected(self):
        protocol = GenericProtocol(FIELDS, binary=True)
        with pytest.raises(EncodingError):
            protocol.decode(protocol.encode(VALUES)[:-1])

    def test_string_fields_refused_in_binary(self):
        with pytest.raises(ValueError):
            GenericProtocol([TelemetryField("id", "string")], binary=True)


class TestValidation:
    def test_empty_protocol_rejected(self):
        with pytest.raises(ValueError):
            GenericProtocol([])

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            TelemetryField("x", "quaternion")

    def test_builtin_position_protocol(self):
        frame = FLIGHTGEAR_POSITION_PROTOCOL.encode(
            {
                "latitude-deg": 41.0,
                "longitude-deg": 2.0,
                "altitude-ft": 984.0,
                "heading-deg": 270.0,
                "airspeed-kt": 48.6,
            }
        )
        decoded = FLIGHTGEAR_POSITION_PROTOCOL.decode(frame)
        assert decoded["latitude-deg"] == pytest.approx(41.0)


class TestTelemetryServiceIntegration:
    def test_bridge_emits_flightgear_frames(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import settle

        from repro import SimRuntime
        from repro.flight import GeoPoint, KinematicUav, survey_plan
        from repro.services import GpsService
        from repro.telemetry import InMemoryTelemetrySink, TelemetryService

        runtime = SimRuntime(seed=2)
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)
        fcs = runtime.add_container("fcs")
        gcs = runtime.add_container("gcs")
        fcs.install_service(GpsService(KinematicUav(plan)))
        sink = InMemoryTelemetrySink()
        bridge = TelemetryService(sink, max_rate_hz=5.0)
        gcs.install_service(bridge)
        settle(runtime, 10.0)
        assert bridge.frames_sent > 20
        decoded = FLIGHTGEAR_POSITION_PROTOCOL.decode(sink.frames[-1])
        assert decoded["latitude-deg"] == pytest.approx(41.275, abs=0.05)
        assert decoded["altitude-ft"] == pytest.approx(300 * 3.28084, rel=0.01)
