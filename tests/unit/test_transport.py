"""Tests for the Transport subsystem: sim binding, in-proc hub, frame adapter."""

import pytest

from repro.protocol.frames import Frame, MessageKind
from repro.sim import Simulator
from repro.simnet import Address, GroupName, LinkModel, SimNetwork
from repro.transport import FrameTransport, InProcHub, SimTransport
from repro.util import SeededRng
from repro.util.errors import TransportError


def make_sim_pair(loss=0.0, mtu=1472):
    sim = Simulator()
    net = SimNetwork(
        sim,
        SeededRng(1),
        default_link=LinkModel(latency=0.001, jitter=0.0, loss=loss, bandwidth_bps=0.0, mtu=mtu),
    )
    ta = SimTransport(net, "a")
    tb = SimTransport(net, "b")
    return sim, net, ta, tb


class TestSimTransport:
    def test_unicast_bytes(self):
        sim, _, ta, tb = make_sim_pair()
        got = []
        ta.open(5000, lambda data, src: None)
        tb.open(5000, lambda data, src: got.append((data, src)))
        ta.send_bytes(Address("b", 5000), b"ping")
        sim.run()
        assert got == [(b"ping", Address("a", 5000))]

    def test_port_filtering(self):
        sim, _, ta, tb = make_sim_pair()
        got = []
        ta.open(5000, lambda d, s: None)
        tb.open(5000, lambda d, s: got.append(d))
        ta.send_bytes(Address("b", 9999), b"wrong port")
        sim.run()
        assert got == []

    def test_multicast(self):
        sim, net, ta, tb = make_sim_pair()
        tc = SimTransport(net, "c")
        got = []
        ta.open(5000, lambda d, s: None)
        tb.open(5000, lambda d, s: got.append(("b", d)))
        tc.open(5000, lambda d, s: got.append(("c", d)))
        group = GroupName("mcast.test")
        tb.join(group)
        tc.join(group)
        ta.send_bytes(group, b"fan")
        sim.run()
        assert sorted(got) == [("b", b"fan"), ("c", b"fan")]

    def test_send_before_open_rejected(self):
        _, _, ta, _ = make_sim_pair()
        with pytest.raises(TransportError):
            ta.send_bytes(Address("b", 5000), b"x")

    def test_double_open_rejected(self):
        _, _, ta, _ = make_sim_pair()
        ta.open(5000, lambda d, s: None)
        with pytest.raises(TransportError):
            ta.open(5001, lambda d, s: None)

    def test_close_stops_delivery(self):
        sim, _, ta, tb = make_sim_pair()
        got = []
        ta.open(5000, lambda d, s: None)
        tb.open(5000, lambda d, s: got.append(d))
        tb.close()
        ta.send_bytes(Address("b", 5000), b"x")
        sim.run()
        assert got == []


class TestInProcTransport:
    def test_unicast(self):
        hub = InProcHub()
        ta, tb = hub.create_transport("a"), hub.create_transport("b")
        got = []
        ta.open(1, lambda d, s: None)
        tb.open(1, lambda d, s: got.append((d, s)))
        ta.send_bytes(Address("b", 1), b"hello")
        assert got == [(b"hello", Address("a", 1))]

    def test_multicast_excludes_sender(self):
        hub = InProcHub()
        ta, tb = hub.create_transport("a"), hub.create_transport("b")
        got = []
        ta.open(1, lambda d, s: got.append(("a", d)))
        tb.open(1, lambda d, s: got.append(("b", d)))
        group = GroupName("mcast.x")
        ta.join(group)
        tb.join(group)
        ta.send_bytes(group, b"m")
        assert got == [("b", b"m")]

    def test_duplicate_bind_rejected(self):
        hub = InProcHub()
        hub.create_transport("a").open(1, lambda d, s: None)
        with pytest.raises(TransportError):
            hub.create_transport("a").open(1, lambda d, s: None)

    def test_unknown_destination_dropped(self):
        hub = InProcHub()
        ta = hub.create_transport("a")
        ta.open(1, lambda d, s: None)
        ta.send_bytes(Address("ghost", 1), b"x")  # must not raise

    def test_deferred_dispatcher(self):
        pending = []
        hub = InProcHub(dispatcher=pending.append)
        ta, tb = hub.create_transport("a"), hub.create_transport("b")
        got = []
        ta.open(1, lambda d, s: None)
        tb.open(1, lambda d, s: got.append(d))
        ta.send_bytes(Address("b", 1), b"x")
        assert got == []
        for thunk in pending:
            thunk()
        assert got == [b"x"]


class TestFrameTransport:
    def make_frame_pair(self, mtu=1472, loss=0.0):
        sim, net, ra, rb = make_sim_pair(mtu=mtu, loss=loss)
        fa = FrameTransport(ra, clock=sim, source="ca")
        fb = FrameTransport(rb, clock=sim, source="cb")
        return sim, fa, fb

    def test_small_frame_round_trip(self):
        sim, fa, fb = self.make_frame_pair()
        got = []
        fa.open(5000, lambda f, s: None)
        fb.open(5000, lambda f, s: got.append((f, s)))
        frame = Frame(kind=MessageKind.EVENT, source="ca", payload=b"evt", seq=3)
        fa.send(Address("b", 5000), frame)
        sim.run()
        assert len(got) == 1
        assert got[0][0].payload == b"evt"
        assert got[0][0].seq == 3
        assert fa.fragmented_messages == 0

    def test_large_frame_is_fragmented_and_reassembled(self):
        sim, fa, fb = self.make_frame_pair(mtu=300)
        got = []
        fa.open(5000, lambda f, s: None)
        fb.open(5000, lambda f, s: got.append(f))
        payload = bytes(range(256)) * 8  # 2048 B > 300 B MTU
        fa.send(Address("b", 5000), Frame(kind=MessageKind.RPC_REQUEST, source="ca", payload=payload))
        sim.run()
        assert fa.fragmented_messages == 1
        assert len(got) == 1
        assert got[0].payload == payload
        assert got[0].kind == MessageKind.RPC_REQUEST

    def test_malformed_datagram_counted_not_raised(self):
        sim, fa, fb = self.make_frame_pair()
        errors = []
        fb._on_protocol_error = lambda exc, src: errors.append(exc)
        fb.open(5000, lambda f, s: None)
        fa._raw.open(5000, lambda d, s: None)
        fa._raw.send_bytes(Address("b", 5000), b"garbage!")
        sim.run()
        assert fb.malformed_datagrams == 1
        assert len(errors) == 1

    def test_lost_fragment_never_delivers_then_expires(self):
        sim, fa, fb = self.make_frame_pair(mtu=300)
        got = []
        fa.open(5000, lambda f, s: None)
        fb.open(5000, lambda f, s: got.append(f))
        # Monkeypatch raw send to drop the second fragment.
        sent = {"count": 0}
        original = fa._raw.send_bytes

        def lossy(dest, payload):
            sent["count"] += 1
            if sent["count"] == 2:
                return
            original(dest, payload)

        fa._raw.send_bytes = lossy
        fa.send(Address("b", 5000), Frame(kind=MessageKind.RPC_REQUEST, source="ca", payload=b"z" * 2000))
        sim.run()
        assert got == []
        assert fb._reassembler.pending == 1
        fb.on_tick(now=100.0)
        assert fb._reassembler.pending == 0
