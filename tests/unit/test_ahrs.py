"""Unit tests for the AHRS service."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.services import GpsService
from repro.services.ahrs import VAR_ATTITUDE, AhrsService


def make_runtime(rows=1):
    runtime = SimRuntime(seed=3)
    plan = survey_plan(GeoPoint(41.275, 1.985), rows=rows, photos_per_row=0)
    uav = KinematicUav(plan)
    node = runtime.add_container("fcs")
    node.install_service(GpsService(uav, rate_hz=10.0))  # steps the airframe
    node.install_service(AhrsService(uav, rate_hz=10.0))
    probe = ProbeService("probe", lambda s: s.watch_variable(VAR_ATTITUDE))
    runtime.add_container("obs").install_service(probe)
    runtime.start()
    return runtime, probe


class TestAhrs:
    def test_publishes_attitude(self):
        runtime, probe = make_runtime()
        runtime.run_for(5.0)
        samples = probe.values_of(VAR_ATTITUDE)
        assert len(samples) > 20
        for sample in samples:
            assert {"roll", "pitch", "yaw", "timestamp"} == set(sample)
            assert 0.0 <= sample["yaw"] < 360.0

    def test_banks_in_turns(self):
        runtime, probe = make_runtime(rows=2)  # row turnaround forces a turn
        runtime.run_for(60.0)
        rolls = [abs(v["roll"]) for v in probe.values_of(VAR_ATTITUDE)]
        # Straight legs are nearly level; the turn shows real bank.
        assert min(rolls) < 2.0
        assert max(rolls) > 10.0

    def test_pitch_stays_near_level(self):
        runtime, probe = make_runtime()
        runtime.run_for(10.0)
        pitches = [v["pitch"] for v in probe.values_of(VAR_ATTITUDE)]
        assert all(abs(p) < 2.0 for p in pitches)

    def test_rate_validation(self):
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)
        with pytest.raises(ValueError):
            AhrsService(KinematicUav(plan), rate_hz=0)
