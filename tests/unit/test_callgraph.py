"""Unit tests for the project call graph (repro.analysis.callgraph)."""

from pathlib import Path

from repro.analysis.callgraph import build_callgraph, module_name
from repro.analysis.context import Project, SourceFile

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def load_project(fixture: str) -> Project:
    root = FIXTURES / fixture
    files = [
        SourceFile.load(path, root)
        for path in sorted(root.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]
    return Project(root=root, files=files)


class TestModuleName:
    def test_plain_module(self):
        assert module_name("repro/container/gossip.py") == "repro.container.gossip"

    def test_package_init(self):
        assert module_name("repro/app/__init__.py") == "repro.app"


class TestResolution:
    def test_from_import_call_resolves_across_modules(self):
        graph = build_callgraph(load_project("interproc_taint"))
        callees = {
            s.callee
            for s in graph.callees("repro.services.camera.CameraService.on_photo")
        }
        assert "repro.app.util.settle" in callees

    def test_local_function_call_resolves(self):
        graph = build_callgraph(load_project("interproc_taint"))
        callees = {s.callee for s in graph.callees("repro.app.util.settle")}
        assert callees == {"repro.app.util._retry"}

    def test_self_method_call_resolves(self):
        graph = build_callgraph(load_project("rep007_bad"))
        callees = {s.callee for s in graph.callees("repro.app.locks.Pair.forward")}
        assert "repro.app.locks.Pair._grab_b" in callees

    def test_unresolvable_call_adds_no_edge(self):
        # sock.sendall resolves to no project function: conservative
        # under-approximation, the graph stays silent.
        graph = build_callgraph(load_project("interproc_taint"))
        assert graph.callees("repro.app.util.flush_socket") == []


class TestEntryPoints:
    def test_service_functions_and_handlers_are_entries(self):
        graph = build_callgraph(load_project("interproc_taint"))
        entries = {f.qualname for f in graph.entry_points()}
        assert "repro.services.camera.CameraService.on_photo" in entries
        assert "repro.services.camera.CameraService.handle_clean" in entries
        # Helpers outside repro/services/ with non-handler names are not.
        assert "repro.app.util.settle" not in entries
        assert "repro.app.util._retry" not in entries

    def test_dunder_methods_are_not_entries(self):
        graph = build_callgraph(load_project("interproc_taint"))
        entries = {f.qualname for f in graph.entry_points()}
        assert "repro.services.camera.CameraService.__init__" not in entries
