"""Manager-level unit tests for the four primitives, on a fake host.

These hit edge cases the integration suite can't steer precisely: stale
sample rejection, empty initial responses, unknown datatypes, straggler
dropping, provision withdrawal, offers formatting.
"""

import pytest

from repro.analysis.sanitizers.payload import PayloadSanitizer
from repro.container.config import ContainerConfig
from repro.container.directory import Directory
from repro.encoding.binary import BinaryCodec
from repro.encoding.types import FLOAT64, INT32, STRING, StructType
from repro.observability import FlightRecorder, MetricsRegistry, ProbeBus, Tracer
from repro.primitives import wire
from repro.primitives.events import EventManager
from repro.primitives.filetransfer import FileTransferManager
from repro.primitives.invocation import InvocationManager
from repro.primitives.variables import VariableManager
from repro.protocol.frames import Frame, MessageKind
from repro.sim import Simulator
from repro.util.errors import ConfigurationError, NameResolutionError

SCHEMA = StructType("S", [("x", FLOAT64)])


class FakeHost:
    """A minimal PrimitiveHost that records every outbound interaction."""

    def __init__(self, container_id="local"):
        self.sim = Simulator()
        self._id = container_id
        self.codec = BinaryCodec()
        self.config = ContainerConfig(container_id=container_id, node="n")
        self.directory = Directory(self.sim, container_id, liveness_timeout=1.0)
        self.tracer = Tracer(container_id, self.sim)
        self.probes = ProbeBus(container_id, self.sim)
        self.metrics = MetricsRegistry()
        self.recorder = FlightRecorder(self.sim)
        self.payload_sanitizer = PayloadSanitizer()
        self.unicasts = []  # (peer, frame)
        self.reliables = []  # (peer, kind, payload)
        self.tcp_payloads = []
        self.groups_sent = []  # (group, frame)
        self.joined = []
        self.left = []
        self.submitted = []  # (label, fn) — executed immediately
        self.announces = 0
        self.emergencies = []

    # PrimitiveHost protocol -------------------------------------------------
    @property
    def id(self):
        return self._id

    @property
    def clock(self):
        return self.sim

    @property
    def timers(self):
        return self.sim

    def submit(self, label, fn):
        self.submitted.append(label)
        fn()

    def send_unicast(self, peer, frame):
        self.unicasts.append((peer, frame))
        return True

    def send_reliable(self, peer, kind, payload):
        self.reliables.append((peer, kind, payload))

    def send_tcp_stream(self, peer, payload):
        self.tcp_payloads.append((peer, payload))

    def send_group(self, group, frame):
        self.groups_sent.append((group, frame))

    def join_group(self, group):
        self.joined.append(group)

    def leave_group(self, group):
        self.left.append(group)

    def announce_soon(self):
        self.announces += 1

    def emergency(self, reason):
        self.emergencies.append(reason)

    # test helper ------------------------------------------------------------
    def add_remote(self, container, **offers):
        doc = {
            "container": container,
            "node": container,
            "port": 47000,
            "incarnation": 1,
            "services": [],
            "variables": offers.get("variables", []),
            "events": offers.get("events", []),
            "functions": offers.get("functions", []),
            "files": offers.get("files", []),
        }
        self.directory.handle_announce(doc)


class TestVariableManagerUnits:
    def test_duplicate_provision_rejected(self):
        host = FakeHost()
        mgr = VariableManager(host)
        mgr.provide("v", SCHEMA)
        with pytest.raises(ConfigurationError):
            mgr.provide("v", SCHEMA)

    def test_offers_format(self):
        host = FakeHost()
        mgr = VariableManager(host)
        mgr.provide("b", SCHEMA, validity=2.0, period=0.1)
        mgr.provide("a", SCHEMA)
        offers = mgr.offers()
        assert [o["name"] for o in offers] == ["a", "b"]
        assert offers[1]["validity"] == 2.0
        assert offers[1]["datatype"] == SCHEMA.describe()

    def test_stale_sample_rejected(self):
        host = FakeHost()
        host.add_remote(
            "pub",
            variables=[{"name": "v", "datatype": SCHEMA.describe(), "validity": 0.0, "period": 0.0}],
        )
        mgr = VariableManager(host)
        got = []
        mgr.subscribe("v", on_sample=lambda val, t: got.append(val["x"]))
        newer = wire.encode(
            wire.VAR_SAMPLE_SCHEMA,
            {"name": "v", "timestamp": 10.0,
             "value": host.codec.encode(SCHEMA, {"x": 2.0})},
        )
        older = wire.encode(
            wire.VAR_SAMPLE_SCHEMA,
            {"name": "v", "timestamp": 5.0,
             "value": host.codec.encode(SCHEMA, {"x": 1.0})},
        )
        mgr.on_sample_frame(Frame(kind=MessageKind.VAR_SAMPLE, source="pub", payload=newer))
        mgr.on_sample_frame(Frame(kind=MessageKind.VAR_SAMPLE, source="pub", payload=older))
        assert got == [2.0]  # the out-of-date sample was suppressed

    def test_sample_with_unknown_datatype_dropped(self):
        host = FakeHost()
        mgr = VariableManager(host)
        got = []
        mgr.subscribe("mystery", on_sample=lambda v, t: got.append(v))
        payload = wire.encode(
            wire.VAR_SAMPLE_SCHEMA, {"name": "mystery", "timestamp": 1.0, "value": b"xx"}
        )
        mgr.on_sample_frame(
            Frame(kind=MessageKind.VAR_SAMPLE, source="ghost", payload=payload)
        )
        assert got == []  # best-effort semantics: silently dropped

    def test_initial_request_without_value(self):
        host = FakeHost()
        mgr = VariableManager(host)
        mgr.provide("v", SCHEMA)  # provided but never published
        request = wire.encode(
            wire.VAR_INITIAL_REQUEST_SCHEMA, {"name": "v", "subscriber": "sub"}
        )
        mgr.on_initial_request(
            Frame(kind=MessageKind.VAR_INITIAL_REQUEST, source="sub", payload=request)
        )
        peer, frame = host.unicasts[-1]
        doc = wire.decode(wire.VAR_INITIAL_RESPONSE_SCHEMA, frame.payload)
        assert peer == "sub"
        assert doc["has_value"] is False

    def test_empty_initial_response_ignored(self):
        host = FakeHost()
        mgr = VariableManager(host)
        got = []
        mgr.subscribe("v", on_sample=lambda v, t: got.append(v))
        response = wire.encode(
            wire.VAR_INITIAL_RESPONSE_SCHEMA,
            {"name": "v", "timestamp": 0.0, "has_value": False, "value": b""},
        )
        mgr.on_initial_response(
            Frame(kind=MessageKind.VAR_INITIAL_RESPONSE, source="pub", payload=response)
        )
        assert got == []

    def test_withdraw_service_drops_all(self):
        host = FakeHost()
        mgr = VariableManager(host)
        mgr.provide("v1", SCHEMA, service="svc")
        mgr.provide("v2", SCHEMA, service="svc")
        mgr.provide("keep", SCHEMA, service="other")
        mgr.withdraw_service("svc")
        assert [o["name"] for o in mgr.offers()] == ["keep"]

    def test_subscription_joins_and_leaves_group(self):
        host = FakeHost()
        mgr = VariableManager(host)
        sub = mgr.subscribe("v", on_sample=lambda v, t: None)
        assert host.joined == ["mcast.var.v"]
        sub.cancel()
        assert host.left == ["mcast.var.v"]


class TestEventManagerUnits:
    def test_raise_with_no_subscribers_sends_nothing(self):
        host = FakeHost()
        mgr = EventManager(host)
        pub = mgr.provide("e", STRING)
        pub.raise_event("quiet")
        assert host.reliables == []
        assert pub.raised_events == 1

    def test_subscribe_frame_updates_subscriber_set(self):
        host = FakeHost()
        mgr = EventManager(host)
        pub = mgr.provide("e", STRING)
        payload = wire.encode(
            wire.EVENT_SUBSCRIBE_SCHEMA,
            {"name": "e", "subscriber": "remote", "subscribe": True},
        )
        mgr.on_subscribe_frame(
            Frame(kind=MessageKind.EVENT_SUBSCRIBE, source="remote", payload=payload)
        )
        assert pub.subscribers == {"remote"}
        payload = wire.encode(
            wire.EVENT_SUBSCRIBE_SCHEMA,
            {"name": "e", "subscriber": "remote", "subscribe": False},
        )
        mgr.on_subscribe_frame(
            Frame(kind=MessageKind.EVENT_SUBSCRIBE, source="remote", payload=payload)
        )
        assert pub.subscribers == set()

    def test_event_sent_once_per_remote_subscriber(self):
        host = FakeHost()
        mgr = EventManager(host)
        pub = mgr.provide("e", STRING)
        pub.subscribers.update({"r1", "r2"})
        pub.raise_event("x")
        peers = sorted(peer for peer, kind, _ in host.reliables)
        assert peers == ["r1", "r2"]

    def test_tcp_mapping_used_when_configured(self):
        host = FakeHost()
        host.config = ContainerConfig(
            container_id="local", node="n", event_mapping="tcp"
        )
        mgr = EventManager(host)
        pub = mgr.provide("e", STRING)
        pub.subscribers.add("r1")
        pub.raise_event("x")
        assert host.reliables == []
        assert len(host.tcp_payloads) == 1

    def test_signal_event_has_empty_payload(self):
        host = FakeHost()
        mgr = EventManager(host)
        pub = mgr.provide("sig")
        pub.subscribers.add("r1")
        pub.raise_event()
        _, _, payload = host.reliables[0]
        doc = wire.decode(wire.EVENT_MESSAGE_SCHEMA, payload)
        assert doc["value"] == b""

    def test_subscriber_down_cleans_sets(self):
        host = FakeHost()
        mgr = EventManager(host)
        pub = mgr.provide("e", STRING)
        pub.subscribers.update({"dead", "alive"})
        mgr.on_subscriber_down("dead")
        assert pub.subscribers == {"alive"}


class TestInvocationManagerUnits:
    def make_remote_offer(self, host, container="srv"):
        host.add_remote(
            container,
            functions=[{"name": "f", "params": ["int32"], "result": "int32"}],
        )

    def test_no_provider_fails_fast_with_emergency(self):
        host = FakeHost()
        mgr = InvocationManager(host)
        errors = []
        mgr.call("f", (1,), on_error=errors.append)
        assert len(errors) == 1
        assert isinstance(errors[0], NameResolutionError)
        assert host.emergencies

    def test_request_payload_shape(self):
        host = FakeHost()
        self.make_remote_offer(host)
        mgr = InvocationManager(host)
        mgr.call("f", (41,))
        peer, kind, payload = host.reliables[0]
        assert peer == "srv"
        assert kind == MessageKind.RPC_REQUEST
        doc = wire.decode(wire.RPC_REQUEST_SCHEMA, payload)
        assert doc["function"] == "f"

    def test_response_for_unknown_call_ignored(self):
        host = FakeHost()
        mgr = InvocationManager(host)
        payload = wire.encode(
            wire.RPC_RESPONSE_SCHEMA,
            {"call_id": "call-999", "ok": True, "error": "", "result": b""},
        )
        mgr.on_response_frame(
            Frame(kind=MessageKind.RPC_RESPONSE, source="srv", payload=payload)
        )  # must not raise

    def test_request_for_missing_function_answers_error(self):
        host = FakeHost()
        mgr = InvocationManager(host)
        payload = wire.encode(
            wire.RPC_REQUEST_SCHEMA,
            {"call_id": "c1", "function": "ghost", "args": b""},
        )
        mgr.on_request_frame(
            Frame(kind=MessageKind.RPC_REQUEST, source="caller", payload=payload)
        )
        peer, kind, response = host.reliables[0]
        doc = wire.decode(wire.RPC_RESPONSE_SCHEMA, response)
        assert peer == "caller"
        assert doc["ok"] is False
        assert "ghost" in doc["error"]

    def test_malformed_args_reported_not_crashing(self):
        host = FakeHost()
        mgr = InvocationManager(host)
        mgr.provide("f", lambda x: x, params=[INT32], result=INT32)
        payload = wire.encode(
            wire.RPC_REQUEST_SCHEMA,
            {"call_id": "c2", "function": "f", "args": b"\x01"},  # truncated
        )
        mgr.on_request_frame(
            Frame(kind=MessageKind.RPC_REQUEST, source="caller", payload=payload)
        )
        _, _, response = host.reliables[0]
        doc = wire.decode(wire.RPC_RESPONSE_SCHEMA, response)
        assert doc["ok"] is False
        assert "bad arguments" in doc["error"]

    def test_round_robin_cycles_providers(self):
        host = FakeHost()
        self.make_remote_offer(host, "s1")
        self.make_remote_offer(host, "s2")
        mgr = InvocationManager(host)
        for _ in range(4):
            mgr.call("f", (1,))
        peers = [peer for peer, _, _ in host.reliables]
        assert sorted(set(peers)) == ["s1", "s2"]
        assert peers.count("s1") == peers.count("s2") == 2

    def test_duplicate_provision_rejected(self):
        host = FakeHost()
        mgr = InvocationManager(host)
        mgr.provide("f", lambda: None)
        with pytest.raises(ConfigurationError):
            mgr.provide("f", lambda: None)


class TestFileManagerUnits:
    def test_straggler_dropped_after_max_rounds(self):
        host = FakeHost()
        host.config = ContainerConfig(
            container_id="local", node="n", file_max_rounds=2,
            file_chunk_interval=0.0, file_status_timeout=0.01,
        )
        mgr = FileTransferManager(host)
        mgr.publish("res", b"x" * 100)
        subscribe = wire.encode(
            wire.FILE_SUBSCRIBE_SCHEMA,
            {"name": "res", "subscriber": "silent", "revision": 1},
        )
        mgr.on_subscribe_frame(
            Frame(kind=MessageKind.FILE_SUBSCRIBE, source="silent", payload=subscribe)
        )
        host.sim.run_for(5.0)  # chunk sends + repeated silent polls
        assert mgr.dropped_stragglers == 1
        assert host.emergencies
        session = mgr._sessions["res"]
        assert not session.pending

    def test_unknown_resource_subscribe_ignored(self):
        host = FakeHost()
        mgr = FileTransferManager(host)
        subscribe = wire.encode(
            wire.FILE_SUBSCRIBE_SCHEMA,
            {"name": "nothing", "subscriber": "x", "revision": 0},
        )
        mgr.on_subscribe_frame(
            Frame(kind=MessageKind.FILE_SUBSCRIBE, source="x", payload=subscribe)
        )
        assert mgr._sessions == {}

    def test_offers_reflect_revisions(self):
        host = FakeHost()
        mgr = FileTransferManager(host)
        mgr.publish("res", b"one")
        mgr.publish("res", b"two")
        offers = mgr.offers()
        assert offers == [
            {"name": "res", "revision": 2, "size": 3,
             "chunk_size": host.config.file_chunk_size}
        ]

    def test_nack_triggers_selective_round(self):
        host = FakeHost()
        host.config = ContainerConfig(
            container_id="local", node="n",
            file_chunk_size=10, file_chunk_interval=0.0, file_status_timeout=0.01,
        )
        mgr = FileTransferManager(host)
        mgr.publish("res", b"0123456789" * 5)  # 5 chunks
        subscribe = wire.encode(
            wire.FILE_SUBSCRIBE_SCHEMA,
            {"name": "res", "subscriber": "rx", "revision": 1},
        )
        mgr.on_subscribe_frame(
            Frame(kind=MessageKind.FILE_SUBSCRIBE, source="rx", payload=subscribe)
        )
        host.sim.run_for(0.005)  # transfer phase done (interval 0)
        chunk_count_initial = sum(
            1 for g, f in host.groups_sent if f.kind == MessageKind.FILE_CHUNK
        )
        assert chunk_count_initial == 5
        nack = wire.encode(
            wire.FILE_NACK_SCHEMA,
            {"name": "res", "subscriber": "rx", "revision": 1,
             "missing": [{"start": 1, "end": 2}]},
        )
        mgr.on_completion_nack_frame(
            Frame(kind=MessageKind.FILE_COMPLETION_NACK, source="rx", payload=nack)
        )
        host.sim.run_for(0.05)  # status timeout fires, round 2 runs
        chunks = [
            wire.decode(wire.FILE_CHUNK_SCHEMA, f.payload)["index"]
            for g, f in host.groups_sent
            if f.kind == MessageKind.FILE_CHUNK
        ]
        assert chunks[5:7] == [1, 2]  # only the missing chunks were resent

    def test_empty_file_has_one_chunk(self):
        from repro.primitives.filetransfer import FileResource

        resource = FileResource(name="r", data=b"", revision=1, chunk_size=100)
        assert resource.total_chunks == 1
        assert resource.chunk(0) == b""
