"""Unit tests for the name-management directory (§3)."""

import pytest

from repro.container.directory import Directory
from repro.container.records import (
    decode_announce,
    decode_bye,
    decode_heartbeat,
    encode_announce,
    encode_bye,
    encode_heartbeat,
)
from repro.simnet.addressing import Address
from repro.util import ManualClock


def announce_doc(container="remote", node="n1", port=47000, incarnation=1, **kw):
    doc = {
        "container": container,
        "node": node,
        "port": port,
        "incarnation": incarnation,
        "services": ["svc"],
        "failed_services": [],
        "variables": [],
        "events": [],
        "functions": [],
        "files": [],
    }
    doc.update(kw)
    return doc


def heartbeat_doc(container="remote", node="n1", port=47000, incarnation=1, load=0,
                  restarts=0):
    return {
        "container": container,
        "node": node,
        "port": port,
        "incarnation": incarnation,
        "load": load,
        "restarts": restarts,
    }


@pytest.fixture
def setup():
    clock = ManualClock()
    directory = Directory(clock, local_container="local", liveness_timeout=1.0)
    return clock, directory


class TestControlPlaneCodecs:
    def test_announce_round_trip(self):
        doc = announce_doc(
            variables=[{"name": "v", "datatype": "float64", "validity": 1.0, "period": 0.1}],
            events=[{"name": "e", "datatype": ""}],
            functions=[{"name": "f", "params": ["int32"], "result": "int32"}],
            files=[{"name": "r", "revision": 2, "size": 100, "chunk_size": 64}],
        )
        assert decode_announce(encode_announce(doc)) == doc

    def test_heartbeat_round_trip(self):
        doc = heartbeat_doc(load=17)
        assert decode_heartbeat(encode_heartbeat(doc)) == doc

    def test_bye_round_trip(self):
        assert decode_bye(encode_bye("c9")) == "c9"


class TestAnnounceHandling:
    def test_first_announce_fires_up(self, setup):
        clock, directory = setup
        ups = []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.handle_announce(announce_doc())
        assert ups == ["remote"]
        assert directory.address_of("remote") == Address("n1", 47000)

    def test_own_announce_ignored(self, setup):
        _, directory = setup
        assert directory.handle_announce(announce_doc(container="local")) is None
        assert directory.record("local") is None

    def test_repeat_announce_is_quiet(self, setup):
        _, directory = setup
        ups, changes = [], []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.on_offers_changed(lambda r: changes.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_announce(announce_doc())
        assert ups == ["remote"]
        assert changes == []

    def test_offer_change_fires_changed(self, setup):
        _, directory = setup
        changes = []
        directory.on_offers_changed(lambda r: changes.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_announce(
            announce_doc(events=[{"name": "new.evt", "datatype": ""}])
        )
        assert changes == ["remote"]

    def test_incarnation_change_fires_restart(self, setup):
        _, directory = setup
        restarts = []
        directory.on_container_restart(lambda r: restarts.append(r.incarnation))
        directory.handle_announce(announce_doc(incarnation=1))
        directory.handle_announce(announce_doc(incarnation=2))
        assert restarts == [2]


class TestHeartbeatHandling:
    def test_heartbeat_refreshes_last_seen(self, setup):
        clock, directory = setup
        directory.handle_announce(announce_doc())
        clock.advance(0.9)
        directory.handle_heartbeat(heartbeat_doc(load=3))
        assert directory.check_liveness() == []
        assert directory.record("remote").load == 3

    def test_heartbeat_before_announce_creates_minimal_record(self, setup):
        _, directory = setup
        ups = []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.handle_heartbeat(heartbeat_doc())
        assert ups == ["remote"]
        assert directory.record("remote").events == {}

    def test_heartbeat_incarnation_change_fires_restart(self, setup):
        _, directory = setup
        restarts = []
        directory.on_container_restart(lambda r: restarts.append(r.incarnation))
        directory.handle_announce(announce_doc(incarnation=1))
        directory.handle_heartbeat(heartbeat_doc(incarnation=2))
        assert restarts == [2]


class TestFailureDetection:
    def test_liveness_timeout_marks_dead(self, setup):
        clock, directory = setup
        downs = []
        directory.on_container_down(lambda r: downs.append(r.container))
        directory.handle_announce(announce_doc())
        clock.advance(1.5)
        dead = directory.check_liveness()
        assert [r.container for r in dead] == ["remote"]
        assert downs == ["remote"]
        assert directory.address_of("remote") is None

    def test_down_fires_once(self, setup):
        clock, directory = setup
        downs = []
        directory.on_container_down(lambda r: downs.append(r.container))
        directory.handle_announce(announce_doc())
        clock.advance(2.0)
        directory.check_liveness()
        clock.advance(2.0)
        directory.check_liveness()
        assert downs == ["remote"]

    def test_bye_marks_dead_immediately(self, setup):
        _, directory = setup
        downs = []
        directory.on_container_down(lambda r: downs.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_bye("remote")
        assert downs == ["remote"]

    def test_stale_heartbeat_after_bye_ignored(self, setup):
        _, directory = setup
        directory.handle_announce(announce_doc())
        directory.handle_bye("remote")
        directory.handle_heartbeat(heartbeat_doc())  # same incarnation
        assert not directory.record("remote").alive

    def test_fresh_announce_after_bye_revives(self, setup):
        _, directory = setup
        ups = []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_bye("remote")
        directory.handle_announce(announce_doc())
        assert ups == ["remote", "remote"]
        assert directory.record("remote").alive


class TestProviderQueries:
    def test_providers_filtered_by_offer_and_liveness(self, setup):
        clock, directory = setup
        directory.handle_announce(
            announce_doc(
                container="p1",
                variables=[{"name": "v", "datatype": "float64", "validity": 0.0, "period": 0.0}],
                events=[{"name": "e", "datatype": ""}],
                functions=[{"name": "f", "params": [], "result": ""}],
                files=[{"name": "r", "revision": 1, "size": 0, "chunk_size": 1}],
            )
        )
        directory.handle_announce(announce_doc(container="p2"))
        assert [r.container for r in directory.providers_of_variable("v")] == ["p1"]
        assert [r.container for r in directory.providers_of_event("e")] == ["p1"]
        assert [r.container for r in directory.providers_of_function("f")] == ["p1"]
        assert [r.container for r in directory.providers_of_file("r")] == ["p1"]
        directory.handle_bye("p1")
        assert directory.providers_of_variable("v") == []

    def test_live_containers_sorted(self, setup):
        _, directory = setup
        for name in ["zeta", "alpha", "mid"]:
            directory.handle_announce(announce_doc(container=name))
        assert [r.container for r in directory.live_containers()] == [
            "alpha",
            "mid",
            "zeta",
        ]
