"""Unit tests for the name-management directory (§3)."""

import pytest

from repro.container.directory import Directory
from repro.container.records import (
    decode_announce,
    decode_bye,
    decode_heartbeat,
    encode_announce,
    encode_bye,
    encode_heartbeat,
)
from repro.simnet.addressing import Address
from repro.util import ManualClock


def announce_doc(container="remote", node="n1", port=47000, incarnation=1, **kw):
    doc = {
        "container": container,
        "node": node,
        "port": port,
        "incarnation": incarnation,
        "services": ["svc"],
        "failed_services": [],
        "variables": [],
        "events": [],
        "functions": [],
        "files": [],
    }
    doc.update(kw)
    return doc


def heartbeat_doc(container="remote", node="n1", port=47000, incarnation=1, load=0,
                  restarts=0):
    return {
        "container": container,
        "node": node,
        "port": port,
        "incarnation": incarnation,
        "load": load,
        "restarts": restarts,
    }


@pytest.fixture
def setup():
    clock = ManualClock()
    directory = Directory(clock, local_container="local", liveness_timeout=1.0)
    return clock, directory


class TestControlPlaneCodecs:
    def test_announce_round_trip(self):
        doc = announce_doc(
            variables=[{"name": "v", "datatype": "float64", "validity": 1.0, "period": 0.1}],
            events=[{"name": "e", "datatype": ""}],
            functions=[{"name": "f", "params": ["int32"], "result": "int32"}],
            files=[{"name": "r", "revision": 2, "size": 100, "chunk_size": 64}],
        )
        assert decode_announce(encode_announce(doc)) == doc

    def test_heartbeat_round_trip(self):
        doc = heartbeat_doc(load=17)
        assert decode_heartbeat(encode_heartbeat(doc)) == doc

    def test_bye_round_trip(self):
        assert decode_bye(encode_bye("c9")) == "c9"


class TestAnnounceHandling:
    def test_first_announce_fires_up(self, setup):
        clock, directory = setup
        ups = []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.handle_announce(announce_doc())
        assert ups == ["remote"]
        assert directory.address_of("remote") == Address("n1", 47000)

    def test_own_announce_ignored(self, setup):
        _, directory = setup
        assert directory.handle_announce(announce_doc(container="local")) is None
        assert directory.record("local") is None

    def test_repeat_announce_is_quiet(self, setup):
        _, directory = setup
        ups, changes = [], []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.on_offers_changed(lambda r: changes.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_announce(announce_doc())
        assert ups == ["remote"]
        assert changes == []

    def test_offer_change_fires_changed(self, setup):
        _, directory = setup
        changes = []
        directory.on_offers_changed(lambda r: changes.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_announce(
            announce_doc(events=[{"name": "new.evt", "datatype": ""}])
        )
        assert changes == ["remote"]

    def test_incarnation_change_fires_restart(self, setup):
        _, directory = setup
        restarts = []
        directory.on_container_restart(lambda r: restarts.append(r.incarnation))
        directory.handle_announce(announce_doc(incarnation=1))
        directory.handle_announce(announce_doc(incarnation=2))
        assert restarts == [2]


class TestHeartbeatHandling:
    def test_heartbeat_refreshes_last_seen(self, setup):
        clock, directory = setup
        directory.handle_announce(announce_doc())
        clock.advance(0.9)
        directory.handle_heartbeat(heartbeat_doc(load=3))
        assert directory.check_liveness() == []
        assert directory.record("remote").load == 3

    def test_heartbeat_before_announce_creates_minimal_record(self, setup):
        _, directory = setup
        ups = []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.handle_heartbeat(heartbeat_doc())
        assert ups == ["remote"]
        assert directory.record("remote").events == {}

    def test_heartbeat_incarnation_change_fires_restart(self, setup):
        _, directory = setup
        restarts = []
        directory.on_container_restart(lambda r: restarts.append(r.incarnation))
        directory.handle_announce(announce_doc(incarnation=1))
        directory.handle_heartbeat(heartbeat_doc(incarnation=2))
        assert restarts == [2]


class TestFailureDetection:
    def test_liveness_timeout_marks_dead(self, setup):
        clock, directory = setup
        downs = []
        directory.on_container_down(lambda r: downs.append(r.container))
        directory.handle_announce(announce_doc())
        clock.advance(1.5)
        dead = directory.check_liveness()
        assert [r.container for r in dead] == ["remote"]
        assert downs == ["remote"]
        assert directory.address_of("remote") is None

    def test_down_fires_once(self, setup):
        clock, directory = setup
        downs = []
        directory.on_container_down(lambda r: downs.append(r.container))
        directory.handle_announce(announce_doc())
        clock.advance(2.0)
        directory.check_liveness()
        clock.advance(2.0)
        directory.check_liveness()
        assert downs == ["remote"]

    def test_bye_marks_dead_immediately(self, setup):
        _, directory = setup
        downs = []
        directory.on_container_down(lambda r: downs.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_bye("remote")
        assert downs == ["remote"]

    def test_stale_heartbeat_after_bye_ignored(self, setup):
        _, directory = setup
        directory.handle_announce(announce_doc())
        directory.handle_bye("remote")
        directory.handle_heartbeat(heartbeat_doc())  # same incarnation
        assert not directory.record("remote").alive

    def test_fresh_announce_after_bye_revives(self, setup):
        _, directory = setup
        ups = []
        directory.on_container_up(lambda r: ups.append(r.container))
        directory.handle_announce(announce_doc())
        directory.handle_bye("remote")
        directory.handle_announce(announce_doc())
        assert ups == ["remote", "remote"]
        assert directory.record("remote").alive


class TestProviderQueries:
    def test_providers_filtered_by_offer_and_liveness(self, setup):
        clock, directory = setup
        directory.handle_announce(
            announce_doc(
                container="p1",
                variables=[{"name": "v", "datatype": "float64", "validity": 0.0, "period": 0.0}],
                events=[{"name": "e", "datatype": ""}],
                functions=[{"name": "f", "params": [], "result": ""}],
                files=[{"name": "r", "revision": 1, "size": 0, "chunk_size": 1}],
            )
        )
        directory.handle_announce(announce_doc(container="p2"))
        assert [r.container for r in directory.providers_of_variable("v")] == ["p1"]
        assert [r.container for r in directory.providers_of_event("e")] == ["p1"]
        assert [r.container for r in directory.providers_of_function("f")] == ["p1"]
        assert [r.container for r in directory.providers_of_file("r")] == ["p1"]
        directory.handle_bye("p1")
        assert directory.providers_of_variable("v") == []

    def test_live_containers_sorted(self, setup):
        _, directory = setup
        for name in ["zeta", "alpha", "mid"]:
            directory.handle_announce(announce_doc(container=name))
        assert [r.container for r in directory.live_containers()] == [
            "alpha",
            "mid",
            "zeta",
        ]


class TestDeterministicOrderAndIndexes:
    def test_live_containers_sorted_by_id(self, setup):
        clock, directory = setup
        for name in ("zulu", "alpha", "mike", "bravo"):
            directory.handle_announce(announce_doc(container=name, node=name))
        names = [r.container for r in directory.live_containers()]
        assert names == ["alpha", "bravo", "mike", "zulu"]
        # Repeat reads (now served from the L1 cache) keep the order.
        assert [r.container for r in directory.live_containers()] == names

    def test_live_cache_invalidated_by_every_mutation(self, setup):
        clock, directory = setup
        directory.handle_announce(announce_doc(container="a", node="na"))
        directory.handle_announce(announce_doc(container="b", node="nb"))
        assert len(directory.live_containers()) == 2
        directory.handle_bye("a")
        assert [r.container for r in directory.live_containers()] == ["b"]
        # Re-announce replaces the record object; the cache must not hold
        # the stale one.
        directory.handle_announce(
            announce_doc(container="b", node="nb", services=["other"])
        )
        assert directory.live_containers()[0].services == ["other"]

    def test_providers_cache_tracks_offer_changes(self, setup):
        clock, directory = setup
        var = {"name": "gps", "datatype": "float64", "validity": 0.0, "period": 0.1}
        directory.handle_announce(announce_doc(container="a", node="na",
                                               variables=[var]))
        assert [r.container for r in directory.providers_of_variable("gps")] == ["a"]
        directory.handle_announce(announce_doc(container="a", node="na",
                                               variables=[]))
        assert directory.providers_of_variable("gps") == []

    def test_container_at_uses_index_and_survives_address_change(self, setup):
        clock, directory = setup
        directory.handle_announce(announce_doc(container="a", node="n1"))
        assert directory.container_at(Address("n1", 47000)) == "a"
        # The container moves nodes: old address must stop resolving.
        directory.handle_announce(announce_doc(container="a", node="n2",
                                               incarnation=2))
        assert directory.container_at(Address("n1", 47000)) is None
        assert directory.container_at(Address("n2", 47000)) == "a"

    def test_container_at_ignores_dead_records(self, setup):
        clock, directory = setup
        directory.handle_announce(announce_doc(container="a", node="n1"))
        directory.handle_bye("a")
        assert directory.container_at(Address("n1", 47000)) is None


class TestStrictLivenessReads:
    @pytest.fixture
    def strict(self):
        clock = ManualClock()
        directory = Directory(clock, local_container="local",
                              liveness_timeout=1.0, strict_liveness_reads=True)
        return clock, directory

    def test_reads_never_serve_past_timeout(self, strict):
        clock, directory = strict
        var = {"name": "gps", "datatype": "float64", "validity": 0.0, "period": 0.1}
        directory.handle_announce(announce_doc(variables=[var]))
        assert directory.address_of("remote") is not None
        # Time passes; no heartbeat, and crucially no housekeeping sweep.
        clock.advance(1.5)
        assert directory.address_of("remote") is None
        assert directory.live_containers() == []
        assert directory.providers_of_variable("gps") == []
        # The record itself still exists (the sweep owns the down callback).
        assert directory.record("remote") is not None

    def test_heartbeat_revives_strict_reads(self, strict):
        clock, directory = strict
        directory.handle_announce(announce_doc())
        clock.advance(1.5)
        assert directory.address_of("remote") is None
        directory.handle_heartbeat(heartbeat_doc())
        assert directory.address_of("remote") == Address("n1", 47000)

    def test_default_mode_trusts_the_sweep(self, setup):
        clock, directory = setup
        directory.handle_announce(announce_doc())
        clock.advance(5.0)
        # Seed behavior: between sweeps, reads still serve the record.
        assert directory.address_of("remote") is not None
        directory.check_liveness()
        assert directory.address_of("remote") is None


class TestZoneSummaries:
    def summary(self, zone="zb", origin="relay-b", version=1, members=()):
        return {
            "zone": zone,
            "origin": origin,
            "version": version,
            "members": list(members),
        }

    def member(self, container, node=None, port=47000, alive=1):
        return {
            "container": container,
            "node": node or container,
            "port": port,
            "incarnation": 1,
            "alive": alive,
        }

    def test_apply_and_address_fallback(self, setup):
        clock, directory = setup
        applied = directory.apply_zone_summary(
            self.summary(members=[self.member("uav-b1")])
        )
        assert applied
        assert directory.known_zones() == ["zb"]
        # No full record, but the summary still routes.
        assert directory.record("uav-b1") is None
        assert directory.address_of("uav-b1") == Address("uav-b1", 47000)

    def test_stale_versions_rejected(self, setup):
        clock, directory = setup
        assert directory.apply_zone_summary(
            self.summary(version=3, members=[self.member("uav-b1")])
        )
        assert not directory.apply_zone_summary(
            self.summary(version=2, members=[self.member("uav-b2")])
        )
        assert directory.address_of("uav-b2") is None

    def test_newer_summary_replaces_membership(self, setup):
        clock, directory = setup
        directory.apply_zone_summary(
            self.summary(version=1, members=[self.member("uav-b1")])
        )
        directory.apply_zone_summary(
            self.summary(version=2, members=[self.member("uav-b2")])
        )
        assert directory.address_of("uav-b1") is None
        assert directory.address_of("uav-b2") is not None

    def test_dead_members_do_not_route(self, setup):
        clock, directory = setup
        directory.apply_zone_summary(
            self.summary(members=[self.member("uav-b1", alive=0)])
        )
        assert directory.address_of("uav-b1") is None

    def test_full_record_wins_over_summary(self, setup):
        clock, directory = setup
        directory.apply_zone_summary(
            self.summary(members=[self.member("remote", node="wrong")])
        )
        directory.handle_announce(announce_doc())
        assert directory.address_of("remote") == Address("n1", 47000)
