"""Unit tests for the type system (PEPt Presentation)."""

import pytest

from repro.encoding import (
    BOOL,
    BYTES,
    FLOAT64,
    INT8,
    INT32,
    STRING,
    UINT8,
    UINT16,
    PrimitiveType,
    StructType,
    UnionType,
    VectorType,
)
from repro.util.errors import EncodingError


class TestPrimitives:
    def test_bool_accepts_only_bool(self):
        BOOL.validate(True)
        with pytest.raises(EncodingError):
            BOOL.validate(1)

    def test_int_range_checks(self):
        INT8.validate(127)
        INT8.validate(-128)
        with pytest.raises(EncodingError):
            INT8.validate(128)
        with pytest.raises(EncodingError):
            UINT8.validate(-1)
        UINT16.validate(65535)
        with pytest.raises(EncodingError):
            UINT16.validate(65536)

    def test_bool_is_not_an_int(self):
        with pytest.raises(EncodingError):
            INT32.validate(True)

    def test_float_accepts_ints(self):
        FLOAT64.validate(3)
        FLOAT64.validate(3.14)
        with pytest.raises(EncodingError):
            FLOAT64.validate("3.14")

    def test_string_and_bytes(self):
        STRING.validate("hola")
        with pytest.raises(EncodingError):
            STRING.validate(b"hola")
        BYTES.validate(b"\x00\x01")
        BYTES.validate(bytearray(b"x"))
        with pytest.raises(EncodingError):
            BYTES.validate("x")

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            PrimitiveType("complex128")

    def test_describe_round_trip_name(self):
        assert INT32.describe() == "int32"
        assert repr(FLOAT64).endswith("float64>")


class TestVectors:
    def test_variable_length(self):
        v = VectorType(INT32)
        v.validate([1, 2, 3])
        v.validate([])
        with pytest.raises(EncodingError):
            v.validate("not a list")

    def test_fixed_length(self):
        v = VectorType(FLOAT64, length=3)
        v.validate([1.0, 2.0, 3.0])
        with pytest.raises(EncodingError):
            v.validate([1.0, 2.0])

    def test_element_errors_carry_index(self):
        v = VectorType(INT8)
        with pytest.raises(EncodingError, match="element 1"):
            v.validate([1, 999])

    def test_describe(self):
        assert VectorType(INT32).describe() == "int32[]"
        assert VectorType(INT32, 4).describe() == "int32[4]"

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            VectorType(INT32, length=-1)


class TestStructs:
    def test_exact_field_set_required(self):
        s = StructType("P", [("x", FLOAT64), ("y", FLOAT64)])
        s.validate({"x": 1.0, "y": 2.0})
        with pytest.raises(EncodingError, match="missing"):
            s.validate({"x": 1.0})
        with pytest.raises(EncodingError, match="unexpected"):
            s.validate({"x": 1.0, "y": 2.0, "z": 3.0})

    def test_nested_error_paths(self):
        s = StructType("P", [("pos", VectorType(FLOAT64, 2))])
        with pytest.raises(EncodingError, match="P.pos"):
            s.validate({"pos": [1.0]})

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            StructType("P", [("x", FLOAT64), ("x", FLOAT64)])

    def test_empty_struct_rejected(self):
        with pytest.raises(ValueError):
            StructType("P", [])

    def test_equality_is_structural(self):
        a = StructType("P", [("x", FLOAT64)])
        b = StructType("P", [("x", FLOAT64)])
        c = StructType("P", [("x", INT32)])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)


class TestUnions:
    def test_tagged_value(self):
        u = UnionType("R", [("ok", INT32), ("err", STRING)])
        u.validate(("ok", 5))
        u.validate(("err", "boom"))
        with pytest.raises(EncodingError, match="unknown tag"):
            u.validate(("warn", 1))

    def test_value_shape(self):
        u = UnionType("R", [("ok", INT32)])
        with pytest.raises(EncodingError):
            u.validate("ok")
        with pytest.raises(EncodingError):
            u.validate(("ok", "not an int"))

    def test_tag_index(self):
        u = UnionType("R", [("a", INT32), ("b", STRING)])
        assert u.tag_index("b") == 1
        with pytest.raises(EncodingError):
            u.tag_index("c")

    def test_duplicate_tags_rejected(self):
        with pytest.raises(ValueError):
            UnionType("R", [("a", INT32), ("a", STRING)])
