"""Codec tests: binary and JSON round-trips, error handling, pluggability."""

import pytest

from repro.encoding import (
    BOOL,
    BYTES,
    FLOAT32,
    FLOAT64,
    INT8,
    INT32,
    INT64,
    STRING,
    UINT64,
    BinaryCodec,
    CompiledCodec,
    JsonCodec,
    StructType,
    UnionType,
    VectorType,
    get_codec,
)
from repro.encoding.schema import POSITION_SCHEMA
from repro.util.errors import ConfigurationError, EncodingError

BINARY = BinaryCodec()
COMPILED = CompiledCodec()
JSON_ = JsonCodec()
CODECS = [BINARY, COMPILED, JSON_]

NESTED = StructType(
    "Telemetry",
    [
        ("id", INT32),
        ("name", STRING),
        ("ok", BOOL),
        ("samples", VectorType(FLOAT64)),
        ("fixed", VectorType(INT8, 3)),
        ("result", UnionType("R", [("value", FLOAT64), ("error", STRING)])),
        ("blob", BYTES),
    ],
)

NESTED_VALUE = {
    "id": -7,
    "name": "façade ✈",
    "ok": True,
    "samples": [0.0, -1.5, 2.25],
    "fixed": [1, -2, 3],
    "result": ("error", "sensor saturated"),
    "blob": b"\x00\xff\x10",
}


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
class TestRoundTrips:
    def test_primitives(self, codec):
        for datatype, value in [
            (BOOL, True),
            (BOOL, False),
            (INT32, -123456),
            (INT64, 1 << 40),
            (UINT64, (1 << 64) - 1),
            (FLOAT64, 3.141592653589793),
            (STRING, "héllo ✈"),
            (STRING, ""),
            (BYTES, b""),
            (BYTES, bytes(range(256))),
        ]:
            assert codec.decode(datatype, codec.encode(datatype, value)) == value

    def test_nested_struct(self, codec):
        encoded = codec.encode(NESTED, NESTED_VALUE)
        assert codec.decode(NESTED, encoded) == NESTED_VALUE

    def test_position_schema(self, codec):
        value = {
            "lat": 41.275,
            "lon": 1.985,
            "alt": 300.0,
            "ground_speed": 22.5,
            "heading": 180.0,
            "timestamp": 12.75,
        }
        assert codec.decode(POSITION_SCHEMA, codec.encode(POSITION_SCHEMA, value)) == value

    def test_encode_validates_first(self, codec):
        with pytest.raises(EncodingError):
            codec.encode(INT8, 4096)

    def test_empty_vector(self, codec):
        v = VectorType(INT32)
        assert codec.decode(v, codec.encode(v, [])) == []

    def test_float32_round_trip_within_precision(self, codec):
        encoded = codec.encode(FLOAT32, 1.5)
        assert codec.decode(FLOAT32, encoded) == 1.5


class TestBinarySpecifics:
    def test_compactness_vs_json(self):
        b = BINARY.encode(NESTED, NESTED_VALUE)
        j = JSON_.encode(NESTED, NESTED_VALUE)
        assert len(b) < len(j)

    def test_trailing_bytes_rejected(self):
        encoded = BINARY.encode(INT32, 5)
        with pytest.raises(EncodingError, match="trailing"):
            BINARY.decode(INT32, encoded + b"\x00")

    def test_truncated_payload_rejected(self):
        encoded = BINARY.encode(STRING, "hello")
        with pytest.raises(EncodingError, match="truncated"):
            BINARY.decode(STRING, encoded[:-2])

    def test_insane_length_prefix_rejected(self):
        # uint32 max as a string length must not attempt the allocation.
        with pytest.raises(EncodingError):
            BINARY.decode(STRING, b"\xff\xff\xff\xff")

    def test_union_bad_tag_index_rejected(self):
        u = UnionType("R", [("a", INT32)])
        with pytest.raises(EncodingError, match="out of range"):
            BINARY.decode(u, b"\x09\x00\x00\x00\x00")

    def test_fixed_vector_has_no_length_prefix(self):
        fixed = VectorType(INT8, 4)
        variable = VectorType(INT8)
        assert len(BINARY.encode(fixed, [1, 2, 3, 4])) + 4 == len(
            BINARY.encode(variable, [1, 2, 3, 4])
        )


class TestCompiledSpecifics:
    """The compiled codec is wire-identical to the interpreter — same bytes,
    same values, same rejections."""

    def test_bytes_identical_on_nested_schema(self):
        assert COMPILED.encode(NESTED, NESTED_VALUE) == BINARY.encode(
            NESTED, NESTED_VALUE
        )

    def test_trailing_bytes_rejected(self):
        encoded = COMPILED.encode(INT32, 5)
        with pytest.raises(EncodingError, match="trailing"):
            COMPILED.decode(INT32, encoded + b"\x00")

    def test_truncated_payload_rejected(self):
        encoded = COMPILED.encode(NESTED, NESTED_VALUE)
        for cut in range(len(encoded)):
            with pytest.raises(EncodingError):
                COMPILED.decode(NESTED, encoded[:cut])

    def test_insane_length_prefix_rejected(self):
        with pytest.raises(EncodingError):
            COMPILED.decode(STRING, b"\xff\xff\xff\xff")

    def test_union_bad_tag_index_rejected(self):
        u = UnionType("R", [("a", INT32)])
        with pytest.raises(EncodingError, match="out of range"):
            COMPILED.decode(u, b"\x09\x00\x00\x00\x00")

    def test_fixed_vector_wrong_length_rejected(self):
        # Two wrong-length fixed vectors whose element counts compensate
        # must not silently pack into valid-looking bytes.
        schema = StructType(
            "S", [("a", VectorType(INT8, 2)), ("b", VectorType(INT8, 2))]
        )
        with pytest.raises(EncodingError):
            COMPILED.encode(schema, {"a": [1], "b": [2, 3, 4]})

    def test_decode_accepts_memoryview(self):
        encoded = COMPILED.encode(NESTED, NESTED_VALUE)
        assert COMPILED.decode(NESTED, memoryview(encoded)) == NESTED_VALUE

    def test_decode_prefix_matches_interpreter(self):
        encoded = BINARY.encode(NESTED, NESTED_VALUE) + b"\xab\xcd"
        assert COMPILED.decode_prefix(NESTED, encoded) == BINARY.decode_prefix(
            NESTED, encoded
        )


class TestJsonSpecifics:
    def test_output_is_valid_json(self):
        import json

        doc = json.loads(JSON_.encode(NESTED, NESTED_VALUE))
        assert doc["name"] == "façade ✈"
        assert doc["result"] == {"tag": "error", "value": "sensor saturated"}

    def test_garbage_rejected(self):
        with pytest.raises(EncodingError):
            JSON_.decode(INT32, b"{not json")

    def test_non_finite_floats_rejected(self):
        with pytest.raises(EncodingError):
            JSON_.encode(FLOAT64, float("nan"))

    def test_bad_hex_rejected(self):
        with pytest.raises(EncodingError):
            JSON_.decode(BYTES, b'"zz"')

    def test_decode_validates_shape(self):
        with pytest.raises(EncodingError):
            JSON_.decode(VectorType(INT32), b'"not a list"')


class TestRegistry:
    def test_builtin_codecs_registered(self):
        assert get_codec("binary").name == "binary"
        assert get_codec("json").name == "json"
        assert get_codec("compiled").name == "compiled"

    def test_unknown_codec(self):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            get_codec("protobuf")
