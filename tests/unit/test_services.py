"""Unit tests for the standard avionics services (single-container)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime
from repro.container import ServiceState
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.imaging import decode_pgm
from repro.services import (
    CameraService,
    GpsService,
    StorageService,
    VideoProcessingService,
)
from repro.services.names import (
    DEV_CAMERA,
    EVT_PHOTO_TAKEN,
    FN_CAMERA_CONFIGURE,
    FN_STORAGE_DELETE,
    FN_STORAGE_LIST,
    FN_STORAGE_READ,
    FN_STORAGE_STORE,
    VAR_POSITION,
    photo_resource,
)


def single_node(*services, seed=1):
    runtime = SimRuntime(seed=seed)
    node = runtime.add_container("node")
    for service in services:
        node.install_service(service)
    runtime.start()
    runtime.run_for(1.0)
    return runtime, node


class TestGpsService:
    def test_publishes_at_requested_rate(self):
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)
        gps = GpsService(KinematicUav(plan), rate_hz=10.0)
        probe = ProbeService("probe", lambda s: s.watch_variable(VAR_POSITION))
        runtime, _ = single_node(gps, probe)
        runtime.run_for(5.0)
        # ~10 Hz for ~6 s.
        assert 50 <= len(probe.samples) <= 62

    def test_positions_advance_along_plan(self):
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)
        gps = GpsService(KinematicUav(plan), rate_hz=5.0)
        probe = ProbeService("probe", lambda s: s.watch_variable(VAR_POSITION))
        runtime, _ = single_node(gps, probe)
        runtime.run_for(20.0)
        values = probe.values_of(VAR_POSITION)
        assert values[0] != values[-1]
        assert all(v["ground_speed"] == 25.0 for v in values)

    def test_rate_validation(self):
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)
        with pytest.raises(ValueError):
            GpsService(KinematicUav(plan), rate_hz=0)

    def test_stop_stops_publishing(self):
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)
        gps = GpsService(KinematicUav(plan), rate_hz=10.0)
        probe = ProbeService("probe", lambda s: s.watch_variable(VAR_POSITION))
        runtime, node = single_node(gps, probe)
        runtime.run_for(2.0)
        node.stop_service("gps")
        count = len(probe.samples)
        runtime.run_for(2.0)
        assert len(probe.samples) == count


class TestCameraService:
    def make(self, **kw):
        camera = CameraService(**kw)
        probe = ProbeService("probe", lambda s: (
            s.watch_event(EVT_PHOTO_TAKEN),
            s.watch_file(photo_resource("p", 3)),
        ))
        runtime, node = single_node(camera, probe)
        return runtime, node, camera, probe

    def test_holds_camera_device(self):
        runtime, node, camera, _ = self.make()
        assert node.resources.device_owner(DEV_CAMERA) == "camera"

    def test_configure_then_photo(self):
        runtime, node, camera, probe = self.make(default_features=2)
        probe.call_recorded(FN_CAMERA_CONFIGURE, ("p", 64, 64))
        runtime.run_for(0.5)
        assert probe.results == [True]
        # Drive the photo request into the camera directly (no MC here).
        request = {"waypoint": 3, "lat": 41.0, "lon": 2.0, "resource": "p.3"}
        camera._on_photo_request(request, 0.0)
        runtime.run_for(1.0)
        assert camera.photos_taken == 1
        assert len(probe.events_of(EVT_PHOTO_TAKEN)) == 1
        name, data, revision = probe.files[0]
        image = decode_pgm(data)
        assert image.shape == (64, 64)

    def test_photo_before_configure_ignored(self):
        runtime, node, camera, probe = self.make()
        camera._on_photo_request(
            {"waypoint": 1, "lat": 0.0, "lon": 0.0, "resource": "x"}, 0.0
        )
        runtime.run_for(1.0)
        assert camera.photos_taken == 0

    def test_bad_configure_rejected(self):
        runtime, node, camera, probe = self.make()
        probe.call_recorded(FN_CAMERA_CONFIGURE, ("p", -1, 64))
        runtime.run_for(0.5)
        assert probe.results == [False]


class TestStorageService:
    def test_store_read_list_delete(self):
        storage = StorageService()
        probe = ProbeService("probe")
        runtime, node = single_node(storage, probe)
        probe.call_recorded(FN_STORAGE_STORE, ("obj.x",))
        runtime.run_for(0.5)
        probe.ctx.publish_file("obj.x", b"payload bytes")
        runtime.run_for(0.5)
        assert storage.stored_names() == ["obj.x"]
        probe.call_recorded(FN_STORAGE_READ, ("obj.x",))
        runtime.run_for(0.5)
        assert probe.results[-1] == b"payload bytes"
        probe.call_recorded(FN_STORAGE_LIST)
        runtime.run_for(0.5)
        assert probe.results[-1] == ["obj.x"]
        probe.call_recorded(FN_STORAGE_DELETE, ("obj.x",))
        runtime.run_for(0.5)
        assert probe.results[-1] is True
        assert storage.stored_names() == []

    def test_read_missing_reports_error(self):
        storage = StorageService()
        probe = ProbeService("probe")
        runtime, _ = single_node(storage, probe)
        probe.call_recorded(FN_STORAGE_READ, ("ghost",))
        runtime.run_for(0.5)
        assert len(probe.errors) == 1

    def test_storage_quota_respected(self):
        runtime = SimRuntime(seed=1)
        from repro.container.resources import ResourceLimits

        node = runtime.add_container("node")
        node.resources._limits = ResourceLimits(storage_bytes=10)
        storage = StorageService()
        probe = ProbeService("probe")
        node.install_service(storage)
        node.install_service(probe)
        runtime.start()
        runtime.run_for(1.0)
        probe.call_recorded(FN_STORAGE_STORE, ("big",))
        runtime.run_for(0.5)
        probe.ctx.publish_file("big", b"x" * 100)  # exceeds the 10-byte quota
        runtime.run_for(0.5)
        # The storage service failed on the quota error; isolated, reported.
        assert node.service_state("storage") == ServiceState.FAILED

    def test_variable_log_readable_as_json(self):
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)
        storage = StorageService()
        probe = ProbeService("probe")
        gps = GpsService(KinematicUav(plan), rate_hz=5.0)
        runtime, _ = single_node(storage, probe, gps)
        probe.call_recorded("storage.log_variable", (VAR_POSITION,))
        runtime.run_for(3.0)
        probe.call_recorded(FN_STORAGE_READ, (VAR_POSITION,))
        runtime.run_for(0.5)
        log = json.loads(probe.results[-1])
        assert len(log) >= 10
        assert "value" in log[0]


class TestVideoProcessingService:
    def test_detection_above_threshold(self):
        from repro.imaging import encode_pgm, generate_image
        from repro.services.names import EVT_DETECTION, FN_VIDEO_PROCESS

        video = VideoProcessingService(processing_delay=0.01)
        probe = ProbeService("probe", lambda s: s.watch_event(EVT_DETECTION))
        runtime, _ = single_node(video, probe)
        probe.call_recorded(FN_VIDEO_PROCESS, ("frame.hot", 0.2))
        runtime.run_for(0.5)
        probe.ctx.publish_file("frame.hot", encode_pgm(generate_image(1, features=5)))
        runtime.run_for(1.0)
        assert video.frames_processed == 1
        assert video.detections == 1
        assert len(probe.events_of(EVT_DETECTION)) == 1

    def test_empty_frame_no_detection(self):
        from repro.imaging import encode_pgm, generate_image
        from repro.services.names import EVT_DETECTION, FN_VIDEO_PROCESS

        video = VideoProcessingService(processing_delay=0.01)
        probe = ProbeService("probe", lambda s: s.watch_event(EVT_DETECTION))
        runtime, _ = single_node(video, probe)
        probe.call_recorded(FN_VIDEO_PROCESS, ("frame.cold", 0.2))
        runtime.run_for(0.5)
        probe.ctx.publish_file("frame.cold", encode_pgm(generate_image(1, features=0)))
        runtime.run_for(1.0)
        assert video.frames_processed == 1
        assert video.detections == 0
        assert probe.events_of(EVT_DETECTION) == []
