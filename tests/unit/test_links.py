"""Unit tests for the per-peer reliable-links managers."""


from repro.container.links import RELIABLE_CHANNEL, ReliableLinks, TcpLinks
from repro.protocol.frames import Frame, MessageKind
from repro.protocol.reliability import RetransmitPolicy
from repro.sim import Simulator


class LinkPair:
    """Two ReliableLinks instances wired back to back through the sim."""

    def __init__(self, drop_next=0):
        self.sim = Simulator()
        self.delivered_a = []
        self.delivered_b = []
        self.failures = []
        self.drop_next = drop_next
        self.a = ReliableLinks(
            clock=self.sim, timers=self.sim, local="a",
            send_to_peer=self._a_to_peer,
            deliver=lambda f: self.delivered_a.append(f),
            on_peer_failure=lambda peer, f: self.failures.append((peer, f)),
            policy=RetransmitPolicy(initial_rto=0.05, max_retries=3),
        )
        self.b = ReliableLinks(
            clock=self.sim, timers=self.sim, local="b",
            send_to_peer=self._b_to_peer,
            deliver=lambda f: self.delivered_b.append(f),
            policy=RetransmitPolicy(initial_rto=0.05, max_retries=3),
        )

    def _a_to_peer(self, peer, frame):
        assert peer == "b"
        if self.drop_next > 0:
            self.drop_next -= 1
            return
        self.sim.call_soon(lambda: self.b.on_frame(frame))

    def _b_to_peer(self, peer, frame):
        assert peer == "a"
        self.sim.call_soon(lambda: self.a.on_frame(frame))


class TestReliableLinks:
    def test_round_trip_delivery(self):
        pair = LinkPair()
        pair.a.send("b", MessageKind.EVENT, b"hi")
        pair.sim.run()
        assert [f.payload for f in pair.delivered_b] == [b"hi"]
        assert pair.a.pending_to("b") == 0

    def test_loss_recovered_by_retransmission(self):
        pair = LinkPair(drop_next=1)
        pair.a.send("b", MessageKind.EVENT, b"lost then found")
        pair.sim.run(until=1.0)
        assert [f.payload for f in pair.delivered_b] == [b"lost then found"]

    def test_persistent_loss_reports_failure(self):
        pair = LinkPair(drop_next=100)
        pair.a.send("b", MessageKind.EVENT, b"doomed")
        pair.sim.run(until=10.0)
        assert pair.delivered_b == []
        assert len(pair.failures) == 1
        assert pair.failures[0][0] == "b"

    def test_bidirectional_streams_independent(self):
        pair = LinkPair()
        pair.a.send("b", MessageKind.EVENT, b"a->b")
        pair.b.send("a", MessageKind.EVENT, b"b->a")
        pair.sim.run()
        assert [f.payload for f in pair.delivered_b] == [b"a->b"]
        assert [f.payload for f in pair.delivered_a] == [b"b->a"]

    def test_non_reliable_channel_ignored(self):
        pair = LinkPair()
        frame = Frame(kind=MessageKind.VAR_SAMPLE, source="x", channel=0)
        assert pair.a.on_frame(frame) is False

    def test_reset_peer_fails_pending(self):
        pair = LinkPair(drop_next=100)
        pair.a.send("b", MessageKind.EVENT, b"in flight")
        pair.a.reset_peer("b")
        assert len(pair.failures) == 1
        assert pair.a.peers() == []

    def test_ordered_delivery_across_kinds(self):
        pair = LinkPair()
        pair.a.send("b", MessageKind.EVENT, b"1")
        pair.a.send("b", MessageKind.RPC_REQUEST, b"2")
        pair.a.send("b", MessageKind.FILE_SUBSCRIBE, b"3")
        pair.sim.run()
        assert [f.payload for f in pair.delivered_b] == [b"1", b"2", b"3"]
        kinds = [f.kind for f in pair.delivered_b]
        assert kinds == [
            MessageKind.EVENT,
            MessageKind.RPC_REQUEST,
            MessageKind.FILE_SUBSCRIBE,
        ]


class TestTcpLinks:
    def make_pair(self):
        sim = Simulator()
        delivered = []
        links_box = {}

        def a_to_peer(peer, frame):
            sim.call_soon(lambda: links_box["b"].on_frame(frame))

        def b_to_peer(peer, frame):
            sim.call_soon(lambda: links_box["a"].on_frame(frame))

        links_box["a"] = TcpLinks(
            clock=sim, timers=sim, local="a", send_to_peer=a_to_peer,
            deliver=lambda peer, payload: delivered.append((peer, payload)),
        )
        links_box["b"] = TcpLinks(
            clock=sim, timers=sim, local="b", send_to_peer=b_to_peer,
            deliver=lambda peer, payload: delivered.append((peer, payload)),
        )
        return sim, links_box["a"], links_box["b"], delivered

    def test_stream_delivery_with_handshake(self):
        sim, a, b, delivered = self.make_pair()
        a.send("b", b"first")
        a.send("b", b"second")
        sim.run(until=2.0)
        assert delivered == [("a", b"first"), ("a", b"second")]

    def test_wrong_channel_ignored(self):
        sim, a, b, delivered = self.make_pair()
        frame = Frame(kind=MessageKind.STREAM_SEGMENT, source="a", channel=RELIABLE_CHANNEL)
        assert b.on_frame(frame) is False

    def test_reset_peer_clears_state(self):
        sim, a, b, delivered = self.make_pair()
        a.send("b", b"x")
        sim.run(until=1.0)
        a.reset_peer("b")
        assert "b" not in a._senders
