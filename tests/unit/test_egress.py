"""Unit tests for the priority egress shaper (§4.2/§7 extension)."""

import pytest

from repro.container.egress import DEFAULT_BANDS, EgressShaper
from repro.protocol.frames import Frame, MessageKind
from repro.sim import Simulator


def make_shaper(rate_bps=None, burst=1600):
    sim = Simulator()
    sent = []
    shaper = EgressShaper(
        clock=sim,
        timers=sim,
        send=lambda dest, frame: sent.append((sim.now(), frame)),
        rate_bps=rate_bps,
        burst_bytes=burst,
    )
    return sim, shaper, sent


def frame(kind, size=0):
    return Frame(kind=kind, source="c", payload=b"z" * size)


class TestPassthrough:
    def test_disabled_shaper_sends_inline(self):
        sim, shaper, sent = make_shaper(rate_bps=None)
        shaper.send("dest", frame(MessageKind.FILE_CHUNK, 1000))
        assert len(sent) == 1
        assert shaper.passthrough_frames == 1
        assert not shaper.enabled


class TestTokenBucket:
    def test_paces_to_rate(self):
        # 8000 bit/s = 1000 B/s; 485-B wire frames leave 0.485 s apart in
        # steady state (the first gap is shorter: leftover burst tokens).
        sim, shaper, sent = make_shaper(rate_bps=8000, burst=600)
        for _ in range(4):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 430))
        sim.run()
        assert len(sent) == 4
        gaps = [b - a for (a, _), (b, _) in zip(sent, sent[1:])]
        for gap in gaps[1:]:
            assert gap == pytest.approx(0.485, rel=0.05)

    def test_burst_allows_immediate_first_frame(self):
        sim, shaper, sent = make_shaper(rate_bps=8000, burst=1600)
        shaper.send("dest", frame(MessageKind.EVENT, 100))
        assert sent and sent[0][0] == 0.0


class TestPriorityBands:
    def test_event_overtakes_queued_file_chunks(self):
        sim, shaper, sent = make_shaper(rate_bps=80_000, burst=600)
        # Saturate with bulk chunks, then send one event.
        for _ in range(10):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 458))  # 500 B + hdr
        shaper.send("dest", frame(MessageKind.EVENT, 16))
        sim.run()
        kinds = [f.kind for _, f in sent]
        event_pos = kinds.index(MessageKind.EVENT)
        # The event left before most of the queued bulk.
        assert event_pos <= 2
        assert len(sent) == 11

    def test_control_overtakes_event(self):
        sim, shaper, sent = make_shaper(rate_bps=80_000, burst=100)
        shaper.send("dest", frame(MessageKind.EVENT, 400))
        shaper.send("dest", frame(MessageKind.EVENT, 400))
        shaper.send("dest", frame(MessageKind.HEARTBEAT, 40))
        sim.run()
        kinds = [f.kind for _, f in sent]
        assert kinds.index(MessageKind.HEARTBEAT) < kinds.index(MessageKind.EVENT) + 2

    def test_all_kinds_have_bands(self):
        for kind in MessageKind:
            assert kind in DEFAULT_BANDS

    def test_queue_depth_telemetry(self):
        sim, shaper, sent = make_shaper(rate_bps=8000, burst=100)
        for _ in range(5):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 430))
        assert shaper.queued > 0
        assert shaper.max_queue_depth >= shaper.queued
        sim.run()
        assert shaper.queued == 0


class TestEndToEnd:
    def test_shaped_container_still_functions(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import ProbeService, settle, two_containers

        from repro.encoding.types import STRING

        runtime, a, b = two_containers(egress_rate_bps=10_000_000.0)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("shaped.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("shaped.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.raise_event("through the shaper")
        runtime.run_for(1.0)
        assert sub.events_of("shaped.evt") == ["through the shaper"]
