"""Unit tests for the priority egress shaper (§4.2/§7 extension)."""

import pytest

from repro.container.egress import DEFAULT_BANDS, EgressShaper
from repro.protocol.frames import Frame, MessageKind
from repro.sim import Simulator


def make_shaper(rate_bps=None, burst=1600):
    sim = Simulator()
    sent = []
    shaper = EgressShaper(
        clock=sim,
        timers=sim,
        send=lambda dest, frame: sent.append((sim.now(), frame)),
        rate_bps=rate_bps,
        burst_bytes=burst,
    )
    return sim, shaper, sent


def frame(kind, size=0):
    return Frame(kind=kind, source="c", payload=b"z" * size)


class TestPassthrough:
    def test_disabled_shaper_sends_inline(self):
        sim, shaper, sent = make_shaper(rate_bps=None)
        shaper.send("dest", frame(MessageKind.FILE_CHUNK, 1000))
        assert len(sent) == 1
        assert shaper.passthrough_frames == 1
        assert not shaper.enabled


class TestTokenBucket:
    def test_paces_to_rate(self):
        # 8000 bit/s = 1000 B/s; 485-B wire frames leave 0.485 s apart in
        # steady state (the first gap is shorter: leftover burst tokens).
        sim, shaper, sent = make_shaper(rate_bps=8000, burst=600)
        for _ in range(4):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 430))
        sim.run()
        assert len(sent) == 4
        gaps = [b - a for (a, _), (b, _) in zip(sent, sent[1:])]
        for gap in gaps[1:]:
            assert gap == pytest.approx(0.485, rel=0.05)

    def test_burst_allows_immediate_first_frame(self):
        sim, shaper, sent = make_shaper(rate_bps=8000, burst=1600)
        shaper.send("dest", frame(MessageKind.EVENT, 100))
        assert sent and sent[0][0] == 0.0


class TestPriorityBands:
    def test_event_overtakes_queued_file_chunks(self):
        sim, shaper, sent = make_shaper(rate_bps=80_000, burst=600)
        # Saturate with bulk chunks, then send one event.
        for _ in range(10):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 458))  # 500 B + hdr
        shaper.send("dest", frame(MessageKind.EVENT, 16))
        sim.run()
        kinds = [f.kind for _, f in sent]
        event_pos = kinds.index(MessageKind.EVENT)
        # The event left before most of the queued bulk.
        assert event_pos <= 2
        assert len(sent) == 11

    def test_control_overtakes_event(self):
        sim, shaper, sent = make_shaper(rate_bps=80_000, burst=100)
        shaper.send("dest", frame(MessageKind.EVENT, 400))
        shaper.send("dest", frame(MessageKind.EVENT, 400))
        shaper.send("dest", frame(MessageKind.HEARTBEAT, 40))
        sim.run()
        kinds = [f.kind for _, f in sent]
        assert kinds.index(MessageKind.HEARTBEAT) < kinds.index(MessageKind.EVENT) + 2

    def test_all_kinds_have_bands(self):
        for kind in MessageKind:
            assert kind in DEFAULT_BANDS

    def test_queue_depth_telemetry(self):
        sim, shaper, sent = make_shaper(rate_bps=8000, burst=100)
        for _ in range(5):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 430))
        assert shaper.queued > 0
        assert shaper.max_queue_depth >= shaper.queued
        sim.run()
        assert shaper.queued == 0


class TestEndToEnd:
    def test_shaped_container_still_functions(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from helpers import ProbeService, settle, two_containers

        from repro.encoding.types import STRING

        runtime, a, b = two_containers(egress_rate_bps=10_000_000.0)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("shaped.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("shaped.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.raise_event("through the shaper")
        runtime.run_for(1.0)
        assert sub.events_of("shaped.evt") == ["through the shaper"]


def make_bounded_shaper(policy="drop-oldest", limit=2, policies=None, **kwargs):
    from repro.observability.metrics import MetricsRegistry

    sim = Simulator()
    sent = []
    overflowed = []
    metrics = MetricsRegistry()
    shaper = EgressShaper(
        clock=sim,
        timers=sim,
        send=lambda dest, frame: sent.append((dest, frame)),
        rate_bps=8000,  # slow: queues form immediately after the burst
        burst_bytes=600,
        queue_limit=limit,
        overflow_policy=policy,
        overflow_policies=policies,
        on_overflow=lambda dest, band, pol, f: overflowed.append((dest, band, pol, f)),
        metrics=metrics,
        **kwargs,
    )
    return sim, shaper, sent, overflowed, metrics


class TestBoundedQueues:
    def payloads(self, sent):
        return [f.payload for _, f in sent]

    def test_drop_oldest_keeps_newest(self):
        sim, shaper, sent, overflowed, metrics = make_bounded_shaper("drop-oldest")
        # First frame leaves on burst tokens; queue admits 2; two oldest shed.
        for _ in range(5):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 430))
        sim.run()
        assert shaper.dropped_frames == 2
        assert [pol for _, _, pol, _ in overflowed] == ["drop-oldest"] * 2
        assert len(sent) == 3
        assert metrics.counter_value(
            "egress_overflow", band="4", policy="drop-oldest", kind="FILE_CHUNK"
        ) == 2

    def test_drop_oldest_delivers_the_newest_frames(self):
        sim, shaper, sent, overflowed, _ = make_bounded_shaper("drop-oldest")
        frames = [Frame(kind=MessageKind.FILE_CHUNK, source="c", payload=bytes([i]) * 430)
                  for i in range(5)]
        for f in frames:
            shaper.send("dest", f)
        sim.run()
        # Burst sends frame 0 inline; the bounded queue kept the 2 newest.
        assert [f.payload[0] for _, f in sent] == [0, 3, 4]

    def test_drop_newest_refuses_fresh_frames(self):
        sim, shaper, sent, overflowed, _ = make_bounded_shaper("drop-newest")
        frames = [Frame(kind=MessageKind.FILE_CHUNK, source="c", payload=bytes([i]) * 430)
                  for i in range(5)]
        for f in frames:
            shaper.send("dest", f)
        sim.run()
        assert shaper.dropped_frames == 2
        assert [f.payload[0] for _, f in sent] == [0, 1, 2]

    def test_block_policy_signals_backpressure(self):
        sim, shaper, sent, overflowed, metrics = make_bounded_shaper("block")
        for _ in range(5):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 430))
        sim.run()
        assert shaper.blocked_frames == 2
        assert shaper.dropped_frames == 0
        assert [pol for _, _, pol, _ in overflowed] == ["block"] * 2
        assert len(sent) == 3

    def test_per_band_policy_override(self):
        # Bulk band drops oldest, variable band blocks.
        sim, shaper, sent, overflowed, _ = make_bounded_shaper(
            "drop-oldest", policies={2: "block"}
        )
        for _ in range(5):
            shaper.send("dest", frame(MessageKind.VAR_SAMPLE, 430))
        sim.run()
        assert shaper.blocked_frames == 2

    def test_queues_are_bounded_per_destination(self):
        sim, shaper, sent, overflowed, _ = make_bounded_shaper("drop-oldest", limit=2)
        for _ in range(3):
            shaper.send("dest-a", frame(MessageKind.FILE_CHUNK, 430))
        for _ in range(2):
            shaper.send("dest-b", frame(MessageKind.FILE_CHUNK, 430))
        # dest-a: 1 inline + 2 queued; dest-b: 2 queued — no overflow yet.
        assert shaper.queued_to("dest-a", 4) == 2
        assert shaper.queued_to("dest-b", 4) == 2
        assert shaper.dropped_frames == 0
        shaper.send("dest-b", frame(MessageKind.FILE_CHUNK, 430))
        assert shaper.dropped_frames == 1
        sim.run()
        assert shaper.queued == 0

    def test_unlimited_by_default(self):
        sim, shaper, sent = make_shaper(rate_bps=8000, burst=600)
        for _ in range(50):
            shaper.send("dest", frame(MessageKind.FILE_CHUNK, 430))
        assert shaper.dropped_frames == 0
        assert shaper.queued == 49

    def test_bad_policy_rejected(self):
        from repro.util.errors import ConfigurationError

        sim = Simulator()
        with pytest.raises(ConfigurationError):
            EgressShaper(
                clock=sim, timers=sim, send=lambda d, f: None,
                overflow_policy="drop-random",
            )


class TestBatchingStage:
    def make_batching_shaper(self, **kwargs):
        sim = Simulator()
        sent = []
        shaper = EgressShaper(
            clock=sim,
            timers=sim,
            send=lambda dest, frame: sent.append((dest, frame)),
            batching=True,
            source="c",
            **kwargs,
        )
        return sim, shaper, sent

    def test_small_frames_share_one_datagram(self):
        sim, shaper, sent = self.make_batching_shaper()
        for i in range(5):
            shaper.send("dest", frame(MessageKind.VAR_SAMPLE, 20))
        assert sent == []  # held for the flush window
        sim.run(until=0.01)
        assert len(sent) == 1
        _, out = sent[0]
        assert out.kind == MessageKind.BATCH
        from repro.protocol.batching import decode_batch_payload

        assert len(decode_batch_payload(out.payload)) == 5

    def test_single_pending_frame_goes_raw(self):
        sim, shaper, sent = self.make_batching_shaper()
        f = frame(MessageKind.EVENT, 10)
        shaper.send("dest", f)
        sim.run(until=0.01)
        assert len(sent) == 1
        assert sent[0][1] is f

    def test_flush_drains_immediately(self):
        sim, shaper, sent = self.make_batching_shaper()
        for _ in range(3):
            shaper.send("dest", frame(MessageKind.VAR_SAMPLE, 20))
        shaper.flush()
        assert len(sent) == 1
        assert shaper.batcher.pending_frames == 0

    def test_batches_never_span_bands(self):
        sim, shaper, sent = self.make_batching_shaper()
        shaper.send("dest", frame(MessageKind.EVENT, 20))       # band 1
        shaper.send("dest", frame(MessageKind.VAR_SAMPLE, 20))  # band 2
        shaper.send("dest", frame(MessageKind.EVENT, 20))
        shaper.send("dest", frame(MessageKind.VAR_SAMPLE, 20))
        shaper.flush()
        assert len(sent) == 2  # one batch per band, none mixed
        from repro.protocol.batching import decode_batch_payload

        for _, out in sent:
            kinds = {f.kind for f in decode_batch_payload(out.payload)}
            assert len(kinds) == 1

    def test_batching_composes_with_shaping(self):
        sim, shaper, sent = self.make_batching_shaper(
            rate_bps=8000, burst_bytes=1600
        )
        for _ in range(4):
            shaper.send("dest", frame(MessageKind.VAR_SAMPLE, 20))
        sim.run(until=1.0)
        assert len(sent) == 1
        assert sent[0][1].kind == MessageKind.BATCH
