"""Fixture: the same lock pair, always acquired in one global order."""

import threading


class Pair:
    def __init__(self):
        lock = threading.Lock()
        self._a = lock
        self._b = threading.Lock()
        # Condition over an already-identified lock: aliases self._a.
        self._ready = threading.Condition(lock)

    def forward(self):
        with self._a:
            self._grab_b()

    def _grab_b(self):
        with self._b:
            pass

    def also_forward(self):
        # `with self._ready` is an acquisition of self._a (shared mutex):
        # still a -> b, no inversion.
        with self._ready:
            with self._b:
                pass
