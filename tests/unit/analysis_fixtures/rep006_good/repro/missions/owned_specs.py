"""Fixture: hygienic specs — owned, bounded, or justifiably waived."""

from repro.verify import Spec, at_most_once, event, response

#: Owner named, response bounded: the canonical shape.
BOUNDED = Spec(
    name="telemetry-ack",
    owner="mission-ops",
    formula=response(event("event.publish"), event("event.deliver"), within=2.0),
)

#: Positional owner counts (the dataclass's second field).
POSITIONAL = Spec("camera-once", "payload-team", at_most_once(event("ft.complete")))

#: within as the third positional argument is a bound too.
POSITIONAL_BOUND = response(event("rpc.call"), event("rpc.done"), 5.0)

#: A deliberately open-ended teardown liveness check, waived with a reason.
TEARDOWN = Spec(
    name="landed-eventually",
    owner="mission-ops",
    # repro: allow[REP006] -- teardown-only liveness, checked at finish()
    formula=response(event("mission.start"), event("mission.landed")),
)


class _Protocol:
    def response(self, prompt):
        return prompt


def unrelated(prompt):
    """Attribute calls named ``response`` on other objects are out of scope."""
    return _Protocol().response(prompt)
