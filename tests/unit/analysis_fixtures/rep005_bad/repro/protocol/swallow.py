"""Fixture: decode errors swallowed silently — REP005 must catch all."""

import struct

from repro.util.errors import EncodingError, ProtocolError


def on_datagram(codec, payload):
    try:
        return codec.decode_frame(payload)
    except ProtocolError:
        pass


def on_frame(codec, frame):
    try:
        return codec.decode_payload(frame)
    except (ProtocolError, EncodingError):
        return None


def unpack_header(payload):
    try:
        return struct.unpack("!HI", payload)
    except struct.error:
        ...
