"""Fixture: every spec-hygiene failure shape REP006 must catch."""

from repro.verify import Spec, event, never, response
from repro.verify.spec import response as must_reply

#: No owner= at all — violation has nowhere to route.
ANONYMOUS = Spec(name="anon-spec", formula=never(event("var.serve")))

#: Blank owner literal — present but unactionable.
BLANK_OWNER = Spec(
    name="blank-owner",
    owner="  ",
    formula=never(event("var.serve")),
)

#: Unbounded response: no within=, obligation never expires in-flight.
OPEN_ENDED = Spec(
    name="open-ended",
    owner="mission-ops",
    formula=response(event("rpc.call"), event("rpc.done")),
)

#: within=None is spelled out but still unbounded.
EXPLICIT_NONE = response(event("rpc.call"), event("rpc.done"), within=None)

#: The aliased import is tracked too.
ALIASED = must_reply(event("event.publish"), event("event.deliver"))
