"""Fixture: two locks acquired in opposite orders across a call chain."""

import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        # a -> b, with the second acquisition one call away.
        with self._a:
            self._grab_b()

    def _grab_b(self):
        with self._b:
            pass

    def backward(self):
        # b -> a, nested directly: closes the cycle.
        with self._b:
            with self._a:
                pass
