"""Fixture: handler-path blocking calls REP004 must catch."""

import threading
import time
from time import sleep

_lock = threading.Lock()


def on_variable(value, timestamp):
    time.sleep(0.1)
    sleep(0.05)
    with open("/tmp/log.txt", "a") as fh:
        fh.write(str(value))
    _lock.acquire()
