"""Fixture: a service that bypasses the container and talks to the network
directly — every form REP001 must catch."""

import socket  # noqa: F401

from repro.transport import udp  # noqa: F401
from repro.simnet.network import SimNetwork  # noqa: F401


def leak():
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.sendto(b"telemetry", ("127.0.0.1", 9000))
