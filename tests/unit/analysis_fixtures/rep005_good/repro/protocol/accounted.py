"""Fixture: decode rejections accounted for — REP005 must stay silent."""

import struct

from repro.util.errors import EncodingError, ProtocolError


class Ingress:
    def __init__(self, codec, admission, metrics):
        self.codec = codec
        self.admission = admission
        self.metrics = metrics
        self.malformed_datagrams = 0

    def on_datagram(self, payload, source):
        # Tally + quarantine feed: the canonical good shape.
        try:
            return self.codec.decode_frame(payload)
        except ProtocolError:
            self.malformed_datagrams += 1
            self.admission.note_malformed_address(source)
            return None

    def on_frame(self, frame):
        # Counter-based accounting.
        try:
            return self.codec.decode_payload(frame)
        except (ProtocolError, EncodingError) as exc:
            self.metrics.counter("malformed_frames", source=frame.source).inc()
            raise ProtocolError(f"rejected: {exc}") from exc

    def unpack_header(self, payload):
        # Re-raising hands accounting to the layer above.
        try:
            return struct.unpack("!HI", payload)
        except struct.error as exc:
            raise ProtocolError(f"truncated header: {exc}") from exc

    def on_timer(self):
        # Non-decode exceptions are out of scope for REP005.
        try:
            self.codec.flush()
        except OSError:
            pass
