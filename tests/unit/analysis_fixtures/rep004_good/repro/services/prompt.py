"""Fixture: non-blocking handler — timer-based waits, timeout-bounded
acquire. REP004 must stay silent."""

import threading

_lock = threading.Lock()


def on_variable(value, timestamp, host):
    if _lock.acquire(timeout=0.1):
        try:
            host.schedule(1.0, lambda: None)
        finally:
            _lock.release()
