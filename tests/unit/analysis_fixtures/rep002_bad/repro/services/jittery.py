"""Fixture: sim-path nondeterminism in every flavor REP002 must catch."""

import os
import random
import time
from datetime import datetime
from time import time as wallclock  # direct import form


def sample():
    stamp = time.time()
    mark = datetime.now()
    noise = random.random()
    nonce = os.urandom(8)
    direct = wallclock()
    return stamp, mark, noise, nonce, direct
