"""Fixture: time and randomness routed through the sanctioned
abstractions. REP002 must stay silent."""


class SteadyService:
    def __init__(self, clock, rng):
        self._clock = clock
        self._rng = rng

    def sample(self):
        return self._clock.now(), self._rng.random()
