"""Fixture property suite: round-trips the composite schema."""

SCHEMAS = ["HEARTBEAT_SCHEMA"]
