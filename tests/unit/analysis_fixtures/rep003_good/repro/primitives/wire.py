"""Fixture wire module: every schema either tested or composed.

CHUNK_SCHEMA has no direct property test but is a component of
HEARTBEAT_SCHEMA — covered by composition, like the real tree's
CHUNK_RANGE_SCHEMA inside FILE_NACK_SCHEMA.
"""

CHUNK_SCHEMA = (("offset", "u32"),)
HEARTBEAT_SCHEMA = (("seq", "u32"), ("chunk", CHUNK_SCHEMA))

__all__ = ["CHUNK_SCHEMA", "HEARTBEAT_SCHEMA"]
