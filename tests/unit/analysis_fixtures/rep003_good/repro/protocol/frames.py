"""Fixture frames module: unique values, every kind referenced."""

from enum import IntEnum


class MessageKind(IntEnum):
    ANNOUNCE = 1
    VAR_UPDATE = 2
