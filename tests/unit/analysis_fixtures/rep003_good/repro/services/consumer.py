"""Fixture consumer: references every registered kind."""

from repro.protocol.frames import MessageKind

HANDLED = (MessageKind.ANNOUNCE, MessageKind.VAR_UPDATE)
