"""Helpers outside the services tree: not entry points themselves."""

import random
import time


def settle():
    _retry()


def _retry():
    time.sleep(0.1)


def jitter():
    return random.random()


def flush_socket(sock):
    sock.sendall(b"x")


def waived_backoff():
    time.sleep(0.5)  # repro: allow[REP004] -- fixture: blocking is the point here


def local_only():
    # A blocking site no entry point can reach: local finding only.
    time.sleep(9)
