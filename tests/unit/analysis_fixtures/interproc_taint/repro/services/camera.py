"""Fixture: handlers that reach blocking/ambient sites through helpers."""

from repro.app.util import flush_socket, jitter, settle, waived_backoff


class CameraService:
    def __init__(self, sock):
        self._sock = sock

    def on_photo(self, msg):
        # Two project-local hops end in time.sleep: transitive REP004.
        settle()

    def on_sample(self):
        # One hop to random.random(): transitive REP002.
        return jitter()

    def on_flush(self):
        # One hop to sock.sendall(): transitive REP004 (socket source).
        flush_socket(self._sock)

    def on_waived(self):
        # The sleep inside is waived at its site, so this chain is clean.
        waived_backoff()

    def handle_clean(self):
        # Negative control: reaches nothing blocking or ambient.
        return 2 + 2
