"""Fixture schema module (statically evaluable)."""

from repro.encoding.types import STRING, UINT32, StructType

DATA_SCHEMA = StructType("Data", [("seq", UINT32), ("body", STRING)])
