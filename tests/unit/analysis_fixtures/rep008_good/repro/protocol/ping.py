"""Fixture hand-packed payload module."""

import struct

_SEQ = struct.Struct("<I")


def encode_ping(seq):
    return _SEQ.pack(seq)
