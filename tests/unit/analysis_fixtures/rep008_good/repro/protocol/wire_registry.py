"""Fixture registry: one schema-typed kind, one hand-packed kind."""

KIND_SCHEMA_REFS = {
    "PING": "manual:repro/protocol/ping.py",
    "DATA": "repro/wire.py::DATA_SCHEMA",
}
