"""Fixture frame module: a miniature MessageKind enum and header layout."""

import enum
import struct

MAGIC = b"UA"
VERSION = 1

_HEADER = struct.Struct("<2sBBBHI")
_SRC_LEN = struct.Struct("<B")


class MessageKind(enum.IntEnum):
    PING = 1
    DATA = 2
