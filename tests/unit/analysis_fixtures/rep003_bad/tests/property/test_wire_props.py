"""Fixture property suite: round-trips HEARTBEAT_SCHEMA only."""

SCHEMAS = ["HEARTBEAT_SCHEMA"]
