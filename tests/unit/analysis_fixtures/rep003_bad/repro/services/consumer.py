"""Fixture consumer: references every kind except ORPHAN."""

from repro.protocol.frames import MessageKind

HANDLED = (MessageKind.ANNOUNCE, MessageKind.VAR_UPDATE, MessageKind.EVENT)
