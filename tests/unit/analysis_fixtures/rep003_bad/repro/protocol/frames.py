"""Fixture frames module: one duplicate value, one dead kind."""

from enum import IntEnum


class MessageKind(IntEnum):
    ANNOUNCE = 1
    VAR_UPDATE = 2
    EVENT = 2  # duplicate of VAR_UPDATE — IntEnum silently aliases it
    ORPHAN = 3  # registered but never referenced anywhere else
