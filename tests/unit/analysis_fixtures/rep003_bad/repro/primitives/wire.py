"""Fixture wire module: one tested schema, one with no parity test."""

HEARTBEAT_SCHEMA = (("seq", "u32"),)
LONELY_SCHEMA = (("pad", "u8"),)

__all__ = ["HEARTBEAT_SCHEMA", "LONELY_SCHEMA"]
