"""Fixture: a well-behaved service — expresses intent through the host,
never touches transports. REP001 must stay silent."""


class CleanService:
    def __init__(self, host):
        self._host = host

    def start(self):
        self._host.provide_variable("altitude", None)
