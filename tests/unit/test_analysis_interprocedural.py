"""Tests for the interprocedural analysis layer: transitive REP002/REP004,
static lock-order (REP007), and baseline-gated reporting.

Fixture trees live under ``analysis_fixtures/`` and mirror the real
``repro/`` layout so path-scoped defaults (service entry points, sim-path
scope) apply unchanged.
"""

from pathlib import Path

from repro.analysis import Analyzer
from repro.analysis.baseline import (
    apply_baseline,
    build_baseline,
    finding_key,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.rules.rep002_nondeterminism import NondeterminismRule
from repro.analysis.rules.rep004_blocking import BlockingCallRule
from repro.analysis.rules.rep007_lockorder import LockOrderRule, static_lock_graph
from tests.unit.test_callgraph import FIXTURES, load_project


def run_rules(fixture: str, rules, interprocedural: bool = True, baseline=None):
    root = FIXTURES / fixture
    analyzer = Analyzer(
        root,
        rules=rules,
        tests_dir=root / "tests",
        interprocedural=interprocedural,
        baseline=baseline,
    )
    return analyzer.run(paths=[root / "repro"])


def transitive(report, rule):
    return [f for f in report.findings if f.rule == rule and f.path]


class TestTransitiveRep004:
    def test_two_hop_sleep_chain_is_flagged_with_full_path(self):
        report = run_rules("interproc_taint", [BlockingCallRule()])
        hits = transitive(report, "REP004")
        sleep_hits = [f for f in hits if "time.sleep" in f.message]
        assert sleep_hits, "handler -> settle -> _retry -> sleep must be flagged"
        finding = next(f for f in sleep_hits if "on_photo" in f.message)
        # Reported at the entry point, in the services file.
        assert finding.file == "repro/services/camera.py"
        assert "repro/app/util.py" in finding.message  # the site, cited
        # The rendered path walks every hop to the site.
        rendered = " -> ".join(finding.path)
        assert "CameraService.on_photo" in rendered
        assert "settle" in rendered
        assert "_retry" in rendered
        assert "time.sleep" in rendered

    def test_socket_send_is_a_transitive_source(self):
        report = run_rules("interproc_taint", [BlockingCallRule()])
        hits = transitive(report, "REP004")
        assert any(
            "socket.sendall" in f.message and "on_flush" in f.message for f in hits
        )

    def test_socket_send_is_not_flagged_locally(self):
        report = run_rules(
            "interproc_taint", [BlockingCallRule()], interprocedural=False
        )
        assert not any("socket" in f.message for f in report.findings)

    def test_waived_site_is_not_a_taint_source(self):
        report = run_rules("interproc_taint", [BlockingCallRule()])
        assert not any("on_waived" in f.message for f in report.findings)

    def test_clean_handler_stays_clean(self):
        report = run_rules("interproc_taint", [BlockingCallRule()])
        assert not any("handle_clean" in f.message for f in report.findings)

    def test_unreachable_site_gets_no_transitive_finding(self):
        report = run_rules("interproc_taint", [BlockingCallRule()])
        assert not any("local_only" in f.message for f in transitive(report, "REP004"))

    def test_interprocedural_findings_superset_of_local(self):
        def keys(report):
            return {
                (f.rule, f.file, f.line, f.message)
                for f in report.findings
                if not f.path
            }

        local = run_rules(
            "interproc_taint", [BlockingCallRule()], interprocedural=False
        )
        inter = run_rules("interproc_taint", [BlockingCallRule()])
        assert keys(local) <= keys(inter)
        assert transitive(inter, "REP004") and not transitive(local, "REP004")


class TestTransitiveRep002:
    def test_ambient_random_reached_through_helper(self):
        report = run_rules("interproc_taint", [NondeterminismRule()])
        hits = transitive(report, "REP002")
        finding = next(f for f in hits if "on_sample" in f.message)
        assert finding.file == "repro/services/camera.py"
        assert "random.random" in finding.message
        assert any("jitter" in hop for hop in finding.path)

    def test_no_interprocedural_flag_disables_the_pass(self):
        report = run_rules(
            "interproc_taint", [NondeterminismRule()], interprocedural=False
        )
        assert not transitive(report, "REP002")


class TestRep007LockOrder:
    def test_opposite_order_cycle_is_reported(self):
        report = run_rules("rep007_bad", [LockOrderRule()])
        findings = [f for f in report.findings if f.rule == "REP007"]
        assert findings, "a->b vs b->a must produce a cycle finding"
        message = findings[0].message
        assert "lock-order inversion" in message
        assert "Pair._a" in message and "Pair._b" in message
        # Edge sites ride along for debugging.
        assert "repro/app/locks.py" in message

    def test_consistent_order_is_clean(self):
        report = run_rules("rep007_good", [LockOrderRule()])
        assert not [f for f in report.findings if f.rule == "REP007"]

    def test_condition_aliases_its_lock(self):
        graph = static_lock_graph(load_project("rep007_good"))
        # also_forward acquires via the Condition: the edge lands on the
        # aliased lock identity, not a phantom _ready lock.
        a = "repro/app/locks.py:Pair._a"
        b = "repro/app/locks.py:Pair._b"
        assert b in graph.edges.get(a, set())
        assert not any("_ready" in lock for lock in graph.locks)

    def test_call_away_acquisition_creates_edge(self):
        graph = static_lock_graph(load_project("rep007_bad"))
        a = "repro/app/locks.py:Pair._a"
        b = "repro/app/locks.py:Pair._b"
        assert b in graph.edges.get(a, set())  # via forward -> _grab_b
        assert a in graph.edges.get(b, set())  # via backward, nested


class TestBaseline:
    def _finding(self, message="stale debt", line=10):
        return Finding(
            rule="REP004", message=message, file="repro/app/util.py", line=line
        )

    def test_round_trip_marks_known_findings(self, tmp_path):
        findings = [self._finding(), self._finding(line=20)]
        path = tmp_path / "analysis-baseline.json"
        write_baseline(path, build_baseline(findings))
        fresh = [self._finding(line=99), self._finding(line=120)]
        matched = apply_baseline(fresh, load_baseline(path))
        assert matched == 2
        assert all(f.baselined for f in fresh)

    def test_count_overflow_gates(self, tmp_path):
        path = tmp_path / "analysis-baseline.json"
        write_baseline(path, build_baseline([self._finding()]))
        fresh = [self._finding(line=1), self._finding(line=2)]
        apply_baseline(fresh, load_baseline(path))
        assert [f.baselined for f in fresh] == [True, False]

    def test_key_is_line_insensitive_in_messages(self):
        a = self._finding("handler reaches `time.sleep` (repro/app/util.py:12)")
        b = self._finding("handler reaches `time.sleep` (repro/app/util.py:99)")
        assert finding_key(a) == finding_key(b)

    def test_suppressed_findings_never_enter_the_baseline(self):
        waived = self._finding()
        waived.suppressed = True
        assert build_baseline([waived])["entries"] == []

    def test_report_gates_only_on_new_findings(self, tmp_path):
        # Baseline the fixture's current debt: the report turns ok.
        rules = [BlockingCallRule()]
        dirty = run_rules("interproc_taint", rules)
        assert not dirty.ok
        path = tmp_path / "analysis-baseline.json"
        write_baseline(path, build_baseline(dirty.findings))
        gated = run_rules("interproc_taint", rules, baseline=path)
        assert gated.ok
        assert gated.new_unsuppressed == []
        assert any(f.baselined for f in gated.findings)
