"""Unit tests for container support pieces: lifecycle, resources, config."""

import pytest

from repro.container.config import ContainerConfig
from repro.container.lifecycle import ServiceRecord, ServiceState
from repro.container.resources import ResourceLimits, ResourceManager
from repro.util.errors import ConfigurationError, ResourceError, ServiceError


class TestLifecycle:
    def make(self):
        return ServiceRecord(name="svc", service=object())

    def test_normal_path(self):
        record = self.make()
        record.transition(ServiceState.STARTING)
        record.transition(ServiceState.RUNNING)
        assert record.is_running
        record.transition(ServiceState.STOPPING)
        record.transition(ServiceState.STOPPED)
        assert not record.is_running

    def test_illegal_transition_rejected(self):
        record = self.make()
        with pytest.raises(ServiceError, match="illegal transition"):
            record.transition(ServiceState.RUNNING)

    def test_fail_from_any_state(self):
        record = self.make()
        record.transition(ServiceState.STARTING)
        record.fail("boom")
        assert record.state == ServiceState.FAILED
        assert record.failure_reason == "boom"

    def test_restart_counts_and_clears_failure(self):
        record = self.make()
        record.transition(ServiceState.STARTING)
        record.fail("boom")
        record.transition(ServiceState.STARTING)
        assert record.restarts == 1
        assert record.failure_reason is None

    def test_fail_respects_transition_table(self):
        # INSTALLED -> FAILED is not a legal hop; the old fail() assigned
        # the state directly and silently accepted it.
        record = self.make()
        with pytest.raises(ServiceError, match="illegal transition"):
            record.fail("boom")
        assert record.state == ServiceState.INSTALLED

    def test_fail_from_stopped_rejected(self):
        record = self.make()
        record.transition(ServiceState.STARTING)
        record.transition(ServiceState.RUNNING)
        record.transition(ServiceState.STOPPING)
        record.transition(ServiceState.STOPPED)
        assert not record.can_fail
        with pytest.raises(ServiceError, match="illegal transition"):
            record.fail("late callback")
        assert record.state == ServiceState.STOPPED

    def test_observer_sees_every_transition(self):
        seen = []
        record = self.make()
        record.observer = lambda rec, old, new: seen.append((old, new))
        record.transition(ServiceState.STARTING)
        record.fail("boom")
        assert seen == [
            (ServiceState.INSTALLED, ServiceState.STARTING),
            (ServiceState.STARTING, ServiceState.FAILED),
        ]


class TestResources:
    def test_storage_quota_enforced(self):
        mgr = ResourceManager(ResourceLimits(storage_bytes=1000))
        mgr.allocate_storage("svc", 600)
        with pytest.raises(ResourceError, match="exhausted"):
            mgr.allocate_storage("other", 600)
        assert mgr.storage_free == 400

    def test_release_partial_and_full(self):
        mgr = ResourceManager(ResourceLimits(storage_bytes=1000))
        mgr.allocate_storage("svc", 500)
        mgr.release_storage("svc", 200)
        assert mgr.storage_held_by("svc") == 300
        mgr.release_storage("svc")
        assert mgr.storage_held_by("svc") == 0

    def test_over_release_rejected(self):
        mgr = ResourceManager()
        mgr.allocate_storage("svc", 100)
        with pytest.raises(ResourceError):
            mgr.release_storage("svc", 200)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            ResourceManager().allocate_storage("svc", -1)

    def test_exclusive_device(self):
        mgr = ResourceManager()
        mgr.acquire_device("camera0", "cam-svc")
        assert mgr.device_owner("camera0") == "cam-svc"
        with pytest.raises(ResourceError, match="held by"):
            mgr.acquire_device("camera0", "other")
        mgr.acquire_device("camera0", "cam-svc")  # idempotent for owner

    def test_device_release_checks_owner(self):
        mgr = ResourceManager()
        mgr.acquire_device("camera0", "cam-svc")
        with pytest.raises(ResourceError):
            mgr.release_device("camera0", "intruder")
        mgr.release_device("camera0", "cam-svc")
        assert mgr.device_owner("camera0") is None
        mgr.release_device("camera0", "cam-svc")  # releasing free device is fine

    def test_device_limit(self):
        mgr = ResourceManager(ResourceLimits(max_open_devices=2))
        mgr.acquire_device("d1", "s")
        mgr.acquire_device("d2", "s")
        with pytest.raises(ResourceError, match="too many"):
            mgr.acquire_device("d3", "s")

    def test_release_all(self):
        mgr = ResourceManager()
        mgr.allocate_storage("svc", 100)
        mgr.acquire_device("d1", "svc")
        mgr.acquire_device("d2", "other")
        mgr.release_all("svc")
        assert mgr.storage_held_by("svc") == 0
        assert mgr.device_owner("d1") is None
        assert mgr.device_owner("d2") == "other"


class TestConfig:
    def base(self, **kw):
        return ContainerConfig(container_id="c", node="n", **kw)

    def test_defaults_valid(self):
        config = self.base()
        assert config.codec == "binary"
        assert config.event_mapping == "udp_ack"

    def test_bad_event_mapping(self):
        with pytest.raises(ConfigurationError):
            self.base(event_mapping="sctp")

    def test_bad_binding(self):
        with pytest.raises(ConfigurationError):
            self.base(call_binding="random")

    def test_heartbeat_must_beat_liveness(self):
        with pytest.raises(ConfigurationError):
            self.base(heartbeat_interval=2.0, liveness_timeout=1.0)

    def test_chunk_size_positive(self):
        with pytest.raises(ConfigurationError):
            self.base(file_chunk_size=0)
