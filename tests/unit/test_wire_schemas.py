"""Round-trip tests for every primitive wire schema."""

import pytest

from repro.primitives import wire


CASES = [
    (wire.VAR_SAMPLE_SCHEMA,
     {"name": "gps.position", "timestamp": 12.5, "value": b"\x01\x02"}),
    (wire.VAR_INITIAL_REQUEST_SCHEMA,
     {"name": "gps.position", "subscriber": "ground"}),
    (wire.VAR_INITIAL_RESPONSE_SCHEMA,
     {"name": "gps.position", "timestamp": 1.0, "has_value": True, "value": b"x"}),
    (wire.EVENT_MESSAGE_SCHEMA,
     {"name": "mission.photo_request", "timestamp": 3.25, "value": b""}),
    (wire.EVENT_SUBSCRIBE_SCHEMA,
     {"name": "mission.photo_request", "subscriber": "payload", "subscribe": False}),
    (wire.RPC_REQUEST_SCHEMA,
     {"call_id": "call-7", "function": "camera.configure", "args": b"\x00" * 16}),
    (wire.RPC_RESPONSE_SCHEMA,
     {"call_id": "call-7", "ok": False, "error": "lens busy", "result": b""}),
    (wire.FILE_ANNOUNCE_SCHEMA,
     {"name": "photo.1", "revision": 3, "size": 1 << 20, "chunk_size": 1024,
      "total_chunks": 1024}),
    (wire.FILE_SUBSCRIBE_SCHEMA,
     {"name": "photo.1", "subscriber": "storage-node", "revision": 3}),
    (wire.FILE_CHUNK_SCHEMA,
     {"name": "photo.1", "revision": 3, "index": 17, "total": 1024,
      "data": bytes(range(256))}),
    (wire.FILE_STATUS_REQUEST_SCHEMA, {"name": "photo.1", "revision": 3}),
    (wire.FILE_ACK_SCHEMA,
     {"name": "photo.1", "subscriber": "storage-node", "revision": 3}),
    (wire.FILE_NACK_SCHEMA,
     {"name": "photo.1", "subscriber": "storage-node", "revision": 3,
      "missing": [{"start": 0, "end": 4}, {"start": 9, "end": 9}]}),
    (wire.FILE_DONE_SCHEMA, {"name": "photo.1", "revision": 3}),
]


@pytest.mark.parametrize(
    "schema,doc", CASES, ids=[schema.name for schema, _ in CASES]
)
def test_round_trip(schema, doc):
    assert wire.decode(schema, wire.encode(schema, doc)) == doc


def test_schemas_reject_missing_fields():
    from repro.util.errors import EncodingError

    with pytest.raises(EncodingError):
        wire.encode(wire.VAR_SAMPLE_SCHEMA, {"name": "x"})


def test_bad_range_rejected():
    with pytest.raises(ValueError):
        wire.indices_from_ranges([{"start": 5, "end": 3}])
