"""Unit tests for repro.util: errors, ids, clocks, seeded RNG."""

import pytest

from repro.util import (
    ManualClock,
    MiddlewareError,
    MonotonicClock,
    NameResolutionError,
    SeededRng,
    ServiceName,
    TimeoutError_,
)
from repro.util.errors import InvocationError
from repro.util.ids import ContainerId, make_uid, reset_uid_counter


class TestErrors:
    def test_all_errors_derive_from_middleware_error(self):
        assert issubclass(NameResolutionError, MiddlewareError)
        assert issubclass(TimeoutError_, MiddlewareError)
        assert issubclass(InvocationError, MiddlewareError)

    def test_timeout_is_catchable_as_builtin(self):
        with pytest.raises(TimeoutError):
            raise TimeoutError_("deadline passed")

    def test_invocation_error_carries_context(self):
        err = InvocationError("camera.take_photo", "lens busy")
        assert err.function == "camera.take_photo"
        assert "lens busy" in str(err)


class TestServiceName:
    @pytest.mark.parametrize(
        "name", ["gps", "gps.position", "mission-control", "a.b.c", "Cam2"]
    )
    def test_accepts_valid_names(self, name):
        assert ServiceName(name) == name

    @pytest.mark.parametrize("name", ["", ".gps", "gps.", "a b", "1abc", "a..b"])
    def test_rejects_invalid_names(self, name):
        with pytest.raises(ValueError):
            ServiceName(name)

    def test_behaves_as_str(self):
        n = ServiceName("gps.position")
        assert n.startswith("gps")
        assert {n: 1}[ServiceName("gps.position")] == 1


class TestContainerId:
    def test_accepts_simple_ids(self):
        assert ContainerId("node-a") == "node-a"

    @pytest.mark.parametrize("bad", ["", "a/b", "a b"])
    def test_rejects_bad_ids(self, bad):
        with pytest.raises(ValueError):
            ContainerId(bad)


class TestUids:
    def test_uids_are_unique(self):
        uids = {make_uid() for _ in range(100)}
        assert len(uids) == 100

    def test_uid_prefix(self):
        assert make_uid("call").startswith("call-")

    def test_reset_restarts_sequence(self):
        reset_uid_counter()
        first = make_uid("x")
        reset_uid_counter()
        assert make_uid("x") == first


class TestClocks:
    def test_manual_clock_advances(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5
        clock.set(3.0)
        assert clock.now() == 3.0

    def test_manual_clock_rejects_backwards(self):
        clock = ManualClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set(1.0)

    def test_monotonic_clock_is_monotonic(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_fork_is_stable_and_independent(self):
        a = SeededRng(42).fork("link:x->y")
        b = SeededRng(42).fork("link:x->y")
        c = SeededRng(42).fork("link:x->z")
        seq_a = [a.random() for _ in range(5)]
        assert seq_a == [b.random() for _ in range(5)]
        assert seq_a != [c.random() for _ in range(5)]

    def test_chance_extremes(self):
        rng = SeededRng(1)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_chance_is_roughly_calibrated(self):
        rng = SeededRng(7)
        hits = sum(rng.chance(0.3) for _ in range(10_000))
        assert 2700 < hits < 3300

    def test_jittered_respects_floor(self):
        rng = SeededRng(3)
        for _ in range(100):
            assert rng.jittered(0.001, 0.01, floor=0.0) >= 0.0

    def test_bytes_length(self):
        assert len(SeededRng(9).bytes(17)) == 17
