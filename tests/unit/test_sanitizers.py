"""Unit tests for the runtime sanitizers (repro.analysis.sanitizers)."""

import threading

import pytest

from repro.analysis.sanitizers.lockorder import LockOrderRecorder
from repro.analysis.sanitizers.payload import (
    FrozenDict,
    FrozenList,
    PayloadMutationError,
    PayloadSanitizer,
    deep_freeze,
    digest,
)
from repro.observability.metrics import MetricsRegistry


class TestDigest:
    def test_stable_for_equal_graphs(self):
        assert digest({"a": [1, 2.5, "x"]}) == digest({"a": [1, 2.5, "x"]})

    def test_changes_on_nested_mutation(self):
        value = {"a": [1, 2], "b": {"c": 3}}
        before = digest(value)
        value["b"]["c"] = 4
        assert digest(value) != before

    def test_dict_order_is_observable(self):
        # Local subscribers see the dict as-is, so ordering is part of
        # the observable value.
        assert digest({"a": 1, "b": 2}) != digest({"b": 2, "a": 1})

    def test_bool_is_not_int(self):
        assert digest(True) != digest(1)


class TestFreezeMode:
    def test_deep_freeze_preserves_isinstance(self):
        frozen = deep_freeze({"a": [1, 2], "b": (3,)})
        assert isinstance(frozen, dict)
        assert isinstance(frozen["a"], list)
        assert frozen == {"a": [1, 2], "b": (3,)}

    def test_frozen_dict_mutators_raise(self):
        frozen = deep_freeze({"a": 1})
        assert isinstance(frozen, FrozenDict)
        with pytest.raises(PayloadMutationError):
            frozen["a"] = 2
        with pytest.raises(PayloadMutationError):
            frozen.update(b=3)
        with pytest.raises(PayloadMutationError):
            del frozen["a"]

    def test_frozen_list_mutators_raise(self):
        frozen = deep_freeze([1, 2])
        assert isinstance(frozen, FrozenList)
        with pytest.raises(PayloadMutationError):
            frozen.append(3)
        with pytest.raises(PayloadMutationError):
            frozen[0] = 9
        with pytest.raises(PayloadMutationError):
            frozen.sort()


class TestPayloadSanitizer:
    def test_off_mode_is_identity(self):
        sanitizer = PayloadSanitizer()
        assert not sanitizer.enabled
        value = {"a": 1}
        # Callers gate on `enabled`; even called directly, off mode must
        # not be configured — guard against accidental arming.
        assert sanitizer.mode == "off"
        assert value is deep_freeze(value) or True  # freeze only in freeze mode

    def test_checksum_detects_post_publish_mutation(self):
        metrics = MetricsRegistry()
        sanitizer = PayloadSanitizer(mode="checksum", metrics=metrics)
        value = {"x": 1.0, "flags": [1, 2]}
        out = sanitizer.on_publish("var", "gps.fix", value)
        assert out is value  # checksum mode never copies or wraps
        value["flags"].append(3)  # the aliasing leak
        found = sanitizer.verify_all()
        assert len(found) == 1
        assert found[0]["kind"] == "var"
        assert found[0]["name"] == "gps.fix"
        snapshot = metrics.snapshot()
        assert any("sanitizer_payload_mutations" in key for key in snapshot)

    def test_checksum_verifies_at_next_publish(self):
        sanitizer = PayloadSanitizer(mode="checksum")
        value = {"n": 1}
        sanitizer.on_publish("var", "v", value)
        value["n"] = 2
        sanitizer.on_publish("var", "v", {"n": 2})
        assert len(sanitizer.violations) == 1

    def test_each_mutation_reported_once(self):
        sanitizer = PayloadSanitizer(mode="checksum")
        value = {"n": 1}
        sanitizer.on_publish("var", "v", value)
        value["n"] = 2
        sanitizer.verify_all()
        sanitizer.verify_all()
        assert len(sanitizer.violations) == 1

    def test_clean_publishes_report_nothing(self):
        sanitizer = PayloadSanitizer(mode="checksum")
        for i in range(5):
            sanitizer.on_publish("var", "v", {"n": i})
        assert sanitizer.verify_all() == []
        assert sanitizer.violations == []

    def test_strict_mode_raises(self):
        sanitizer = PayloadSanitizer(mode="checksum", strict=True)
        value = {"n": 1}
        sanitizer.on_publish("var", "v", value)
        value["n"] = 2
        with pytest.raises(PayloadMutationError):
            sanitizer.verify_all()

    def test_freeze_mode_returns_frozen_value(self):
        sanitizer = PayloadSanitizer(mode="freeze")
        out = sanitizer.on_publish("var", "v", {"a": [1]})
        with pytest.raises(PayloadMutationError):
            out["a"].append(2)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PayloadSanitizer(mode="paranoid")


class TestLockOrderRecorder:
    def test_consistent_order_is_clean(self):
        recorder = LockOrderRecorder()
        a = recorder.wrap(threading.Lock(), "A")
        b = recorder.wrap(threading.Lock(), "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert recorder.inversions == []
        assert recorder.acquisitions == 6

    def test_inversion_detected_without_deadlock(self):
        # A->B then B->A from a single thread: a real runtime would only
        # deadlock under an unlucky interleave, but the graph sees the
        # cycle immediately.
        recorder = LockOrderRecorder()
        a = recorder.wrap(threading.Lock(), "A")
        b = recorder.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert len(recorder.inversions) == 1
        inversion = recorder.inversions[0]
        assert inversion["held"] == "B"
        assert inversion["acquiring"] == "A"
        assert inversion["cycle"][0] == "B"
        assert inversion["cycle"][-1] == "B" or "A" in inversion["cycle"]

    def test_transitive_cycle_detected(self):
        recorder = LockOrderRecorder()
        a = recorder.wrap(threading.Lock(), "A")
        b = recorder.wrap(threading.Lock(), "B")
        c = recorder.wrap(threading.Lock(), "C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass  # A->B->C->A
        assert len(recorder.inversions) == 1
        assert set(recorder.inversions[0]["cycle"]) == {"A", "B", "C"}

    def test_try_acquire_adds_no_ordering(self):
        recorder = LockOrderRecorder()
        a = recorder.wrap(threading.Lock(), "A")
        b = recorder.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            assert a.acquire(blocking=False)
            a.release()
        assert recorder.inversions == []

    def test_reentrant_same_lock_is_not_an_ordering(self):
        recorder = LockOrderRecorder()
        lock = recorder.wrap(threading.RLock(), "R")
        with lock:
            with lock:
                pass
        assert recorder.inversions == []

    def test_tracked_lock_backs_condition(self):
        recorder = LockOrderRecorder()
        lock = recorder.wrap(threading.Lock(), "C")
        condition = threading.Condition(lock)
        fired = []

        def waiter():
            with condition:
                condition.wait(timeout=2.0)
                fired.append(True)

        thread = threading.Thread(target=waiter)
        thread.start()
        # Let the waiter take the lock and enter wait().
        for _ in range(1000):
            if recorder.acquisitions >= 1:
                break
        with condition:
            condition.notify()
        thread.join(2.0)
        assert fired == [True]
        assert recorder.inversions == []

    def test_report_into_metrics(self):
        recorder = LockOrderRecorder()
        a = recorder.wrap(threading.Lock(), "A")
        b = recorder.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        metrics = MetricsRegistry()
        count = recorder.report_into(metrics=metrics)
        assert count == 1
        assert any("lock_order_inversions" in key for key in metrics.snapshot())
