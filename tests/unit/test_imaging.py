"""Unit tests for the imaging substrate (camera + FPGA stand-in)."""

import numpy as np
import pytest

from repro.imaging import decode_pgm, detect_features, encode_pgm, generate_image
from repro.util.errors import EncodingError


class TestSynthesis:
    def test_shape_and_dtype(self):
        image = generate_image(seed=1, width=64, height=48, features=2)
        assert image.shape == (48, 64)
        assert image.dtype == np.uint8

    def test_deterministic_per_seed(self):
        a = generate_image(seed=5)
        b = generate_image(seed=5)
        c = generate_image(seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_features_raise_brightness(self):
        empty = generate_image(seed=1, features=0)
        rich = generate_image(seed=1, features=5)
        assert rich.max() > empty.max()

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            generate_image(seed=1, width=0)


class TestPgm:
    def test_round_trip(self):
        image = generate_image(seed=3, width=80, height=60)
        assert np.array_equal(decode_pgm(encode_pgm(image)), image)

    def test_header_format(self):
        encoded = encode_pgm(np.zeros((2, 3), dtype=np.uint8))
        assert encoded.startswith(b"P5\n3 2\n255\n")
        assert len(encoded) == len(b"P5\n3 2\n255\n") + 6

    def test_comment_skipping(self):
        image = np.arange(6, dtype=np.uint8).reshape(2, 3)
        hacked = b"P5\n# a comment\n3 2\n255\n" + image.tobytes()
        assert np.array_equal(decode_pgm(hacked), image)

    def test_rejects_wrong_inputs(self):
        with pytest.raises(EncodingError):
            encode_pgm(np.zeros((2, 2, 3), dtype=np.uint8))
        with pytest.raises(EncodingError):
            encode_pgm(np.zeros((2, 2), dtype=np.float64))
        with pytest.raises(EncodingError):
            decode_pgm(b"JFIF....")
        with pytest.raises(EncodingError):
            decode_pgm(b"P5\n4 4\n255\n\x00\x00")  # truncated raster
        with pytest.raises(EncodingError):
            decode_pgm(b"P5\n2 2\n65535\n" + b"\x00" * 8)


class TestDetection:
    def test_finds_embedded_features(self):
        image = generate_image(seed=11, features=4)
        result = detect_features(image)
        assert result.feature_count >= 3  # blobs may overlap occasionally
        assert result.score > 0.2

    def test_empty_terrain_clean(self):
        image = generate_image(seed=11, features=0)
        result = detect_features(image)
        assert result.feature_count == 0
        assert result.score == 0.0

    def test_centroids_near_truth(self):
        # One bright blob dead centre.
        image = np.full((64, 64), 50, dtype=np.uint8)
        yy, xx = np.mgrid[0:64, 0:64]
        blob = 180 * np.exp(-((xx - 32) ** 2 + (yy - 32) ** 2) / 18.0)
        image = np.clip(image + blob, 0, 255).astype(np.uint8)
        result = detect_features(image)
        assert result.feature_count == 1
        cy, cx = result.centroids[0]
        assert abs(cy - 32) < 2 and abs(cx - 32) < 2

    def test_specks_rejected(self):
        image = np.full((64, 64), 50, dtype=np.uint8)
        image[10, 10] = 255  # single hot pixel
        result = detect_features(image, min_area=6)
        assert result.feature_count == 0

    def test_needs_2d(self):
        with pytest.raises(ValueError):
            detect_features(np.zeros((4, 4, 3), dtype=np.uint8))
