"""Unit tests for ingress admission control (protocol/admission.py)."""

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.protocol.admission import (
    DEFAULT_BAND_RATES,
    HARDENED_ADMISSION,
    AdmissionController,
    AdmissionPolicy,
    IngressScheduler,
    TokenBucket,
)
from repro.protocol.frames import Frame, MessageKind
from repro.util import ManualClock

BANDS = {
    MessageKind.HEARTBEAT: 0,
    MessageKind.ACK: 0,
    MessageKind.EVENT: 1,
    MessageKind.VAR_SAMPLE: 2,
    MessageKind.RPC_REQUEST: 3,
    MessageKind.FILE_CHUNK: 4,
}


def frame(kind=MessageKind.EVENT, source="peer", seq=0):
    return Frame(kind=kind, source=source, payload=b"x", channel=0, seq=seq)


def controller(policy=None, clock=None, metrics=None):
    return AdmissionController(
        clock=clock or ManualClock(),
        classify=lambda kind: BANDS.get(kind, 4),
        policy=policy,
        metrics=metrics,
    )


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_lazy_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        for _ in range(3):
            bucket.try_take(0.0)
        # 0.1 s -> one token back; 100 s -> only burst tokens back.
        assert bucket.try_take(0.1)
        assert not bucket.try_take(0.1)
        bucket.try_take(100.0)
        assert bucket.tokens <= bucket.burst


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(source_rate=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(source_burst=0.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(band_rates={7: 10.0})
        with pytest.raises(ValueError):
            AdmissionPolicy(quarantine_threshold=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(quarantine_backoff=0.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(quarantine_max_duration=1.0, quarantine_duration=2.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(ingress_weights={1: 0})
        with pytest.raises(ValueError):
            AdmissionPolicy(ingress_queue_limit=0)

    def test_hardened_default_is_fully_armed(self):
        assert HARDENED_ADMISSION.enabled
        assert HARDENED_ADMISSION.ingress_scheduling


class TestDisabledIsInert:
    def test_everything_admitted_no_state(self):
        ctl = controller()  # enabled=False default
        for _ in range(10_000):
            assert ctl.admit(frame())
        assert ctl.dropped == 0
        assert ctl.quarantined_sources() == []

    def test_malformed_counted_but_never_quarantines(self):
        metrics = MetricsRegistry()
        ctl = controller(metrics=metrics)
        for _ in range(100):
            ctl.note_malformed("peer")
        assert metrics.counter_value("malformed_frames", source="peer") == 100
        assert not ctl.is_quarantined("peer")


class TestRateLimiting:
    def test_source_burst_then_drop(self):
        metrics = MetricsRegistry()
        policy = AdmissionPolicy(
            enabled=True, source_rate=10.0, source_burst=4.0, band_rates={}
        )
        ctl = controller(policy, metrics=metrics)
        verdicts = [ctl.admit(frame()) for _ in range(6)]
        assert verdicts == [True] * 4 + [False] * 2
        assert ctl.admitted == 4 and ctl.dropped == 2
        assert (
            metrics.counter_value(
                "admission_drops", source="peer", band="1", reason="source-rate"
            )
            == 2
        )

    def test_sources_have_independent_budgets(self):
        policy = AdmissionPolicy(
            enabled=True, source_rate=10.0, source_burst=2.0, band_rates={}
        )
        ctl = controller(policy)
        assert [ctl.admit(frame(source="a")) for _ in range(3)] == [True, True, False]
        # b's bucket is untouched by a's exhaustion.
        assert ctl.admit(frame(source="b"))

    def test_budget_refills_with_time(self):
        clock = ManualClock()
        policy = AdmissionPolicy(
            enabled=True, source_rate=10.0, source_burst=2.0, band_rates={}
        )
        ctl = controller(policy, clock=clock)
        assert [ctl.admit(frame()) for _ in range(3)] == [True, True, False]
        clock.advance(0.5)  # 5 tokens earned, capped at burst=2
        assert ctl.admit(frame())
        assert ctl.admit(frame())
        assert not ctl.admit(frame())

    def test_band_bucket_isolated_per_band(self):
        metrics = MetricsRegistry()
        policy = AdmissionPolicy(
            enabled=True,
            source_rate=None,
            band_rates={1: 10.0, 2: 10.0},
            band_burst=2.0,
        )
        ctl = controller(policy, metrics=metrics)
        for _ in range(2):
            assert ctl.admit(frame(MessageKind.EVENT))
        assert not ctl.admit(frame(MessageKind.EVENT))
        # The variables band has its own bucket; still open.
        assert ctl.admit(frame(MessageKind.VAR_SAMPLE))
        assert (
            metrics.counter_value(
                "admission_drops", source="peer", band="1", reason="band-rate"
            )
            == 1
        )

    def test_control_band_has_no_band_bucket_by_default(self):
        # Band 0 is absent from DEFAULT_BAND_RATES: failure detection is
        # never starved by its own defenses.
        assert 0 not in DEFAULT_BAND_RATES
        policy = AdmissionPolicy(enabled=True, source_rate=None)
        ctl = controller(policy)
        assert all(ctl.admit(frame(MessageKind.HEARTBEAT)) for _ in range(5000))


class TestQuarantine:
    POLICY = AdmissionPolicy(
        enabled=True,
        source_rate=None,
        band_rates={},
        quarantine_threshold=3.0,
        quarantine_decay=1.0,
        quarantine_duration=2.0,
        quarantine_backoff=2.0,
        quarantine_max_duration=5.0,
    )

    def test_threshold_triggers_window_then_expires(self):
        clock = ManualClock()
        metrics = MetricsRegistry()
        ctl = controller(self.POLICY, clock=clock, metrics=metrics)
        for _ in range(3):
            ctl.note_malformed("peer")
        assert ctl.is_quarantined("peer")
        assert ctl.quarantined_sources() == ["peer"]
        assert not ctl.admit(frame())
        assert metrics.counter_value("quarantines", source="peer") == 1
        assert (
            metrics.counter_value(
                "admission_drops", source="peer", band="1", reason="quarantine"
            )
            == 1
        )
        clock.advance(2.1)
        assert not ctl.is_quarantined("peer")
        assert ctl.admit(frame())

    def test_score_decays_between_offenses(self):
        clock = ManualClock()
        ctl = controller(self.POLICY, clock=clock)
        # One malformed frame every 2 s decays fully between offenses.
        for _ in range(6):
            ctl.note_malformed("peer")
            clock.advance(2.0)
        assert not ctl.is_quarantined("peer")

    def test_repeat_offense_backoff_caps(self):
        clock = ManualClock()
        ctl = controller(self.POLICY, clock=clock)

        def trip():
            for _ in range(3):
                ctl.note_malformed("peer")
            state = ctl._sources["peer"]
            return state.quarantined_until - clock.now()

        assert trip() == pytest.approx(2.0)  # first offense
        clock.advance(3.0)
        assert trip() == pytest.approx(4.0)  # doubled
        clock.advance(5.0)
        assert trip() == pytest.approx(5.0)  # capped at max_duration

    def test_no_stacking_while_serving(self):
        clock = ManualClock()
        metrics = MetricsRegistry()
        ctl = controller(self.POLICY, clock=clock, metrics=metrics)
        for _ in range(3):
            ctl.note_malformed("peer")
        until = ctl._sources["peer"].quarantined_until
        # A garbage firehose during the window must not extend or re-count.
        for _ in range(50):
            ctl.note_malformed("peer")
        assert ctl._sources["peer"].quarantined_until == until
        assert metrics.counter_value("quarantines", source="peer") == 1

    def test_address_keyed_quarantine_blocks_frames_from_address(self):
        ctl = controller(self.POLICY)
        for _ in range(3):
            ctl.note_malformed_address("10.0.0.9:47666")
        assert ctl.is_quarantined("@10.0.0.9:47666")
        # A well-formed frame from the same address is dropped even though
        # its claimed source id is clean.
        assert not ctl.admit(frame(source="innocent"), address="10.0.0.9:47666")
        assert ctl.admit(frame(source="innocent"))

    def test_configure_keeps_offender_state(self):
        ctl = controller(self.POLICY)
        for _ in range(3):
            ctl.note_malformed("peer")
        ctl.configure(HARDENED_ADMISSION)
        assert ctl.is_quarantined("peer")


class FakeTimers:
    """Captures zero-delay drain timers; fire() runs one round."""

    def __init__(self):
        self.queue = []

    def schedule(self, delay, fn):
        self.queue.append(fn)
        return object()

    def fire(self):
        pending, self.queue = self.queue, []
        for fn in pending:
            fn()


class TestIngressScheduler:
    def test_weighted_priority_order(self):
        timers = FakeTimers()
        out = []
        sched = IngressScheduler(
            timers, out.append, weights={0: 2, 1: 2, 2: 1, 3: 1, 4: 1}
        )
        for seq in range(3):
            sched.offer(frame(MessageKind.FILE_CHUNK, seq=seq), band=4)
        for seq in range(3):
            sched.offer(frame(MessageKind.EVENT, seq=seq), band=1)
        timers.fire()
        # Round 1: two events, one chunk — events jump the earlier bulk.
        assert [(f.kind, f.seq) for f in out] == [
            (MessageKind.EVENT, 0),
            (MessageKind.EVENT, 1),
            (MessageKind.FILE_CHUNK, 0),
        ]
        timers.fire()  # round 2: last event + one chunk
        timers.fire()  # round 3: final chunk
        assert len(out) == 6
        assert sched.pending == 0
        assert sched.delivered == 6

    def test_fifo_within_band(self):
        timers = FakeTimers()
        out = []
        sched = IngressScheduler(timers, out.append, weights={1: 10})
        for seq in range(5):
            sched.offer(frame(seq=seq), band=1)
        timers.fire()
        assert [f.seq for f in out] == [0, 1, 2, 3, 4]

    def test_overflow_sheds_oldest_and_counts(self):
        timers = FakeTimers()
        metrics = MetricsRegistry()
        out = []
        sched = IngressScheduler(
            timers, out.append, weights={1: 10}, queue_limit=3, metrics=metrics
        )
        for seq in range(5):
            sched.offer(frame(seq=seq), band=1)
        assert sched.shed == 2
        assert metrics.counter_value("ingress_overflow", band="1") == 2
        timers.fire()
        # The two oldest were shed; the newest three survive in order.
        assert [f.seq for f in out] == [2, 3, 4]
