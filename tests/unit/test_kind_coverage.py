"""Meta-test: every ``MessageKind`` is covered by a property suite.

A message kind is wire surface: peers decode it forever. Registering one
without property coverage means its payload round-trip is only exercised
incidentally. A kind counts as covered when the property corpus
(``tests/property/*.py``) either

- names the kind directly (``MessageKind.<NAME>``),
- round-trips the schema the wire registry maps it to, or
- for hand-packed layouts, exercises the implementing module by name
  (e.g. ``fragmentation``, ``batching``).

The registry mapping itself is pinned by REP008; this test keeps the
*behavioral* side in lockstep, so adding a kind forces both a lockfile
entry and a property suite.
"""

import re
from pathlib import Path

from repro.protocol.frames import MessageKind
from repro.protocol.wire_registry import KIND_SCHEMA_REFS

PROPERTY_DIR = Path(__file__).resolve().parent.parent / "property"


def _corpus() -> str:
    return "\n".join(
        p.read_text(encoding="utf-8") for p in sorted(PROPERTY_DIR.glob("*.py"))
    )


def test_every_kind_has_a_registry_entry():
    missing = [k.name for k in MessageKind if k.name not in KIND_SCHEMA_REFS]
    assert not missing, f"kinds without a wire_registry mapping: {missing}"


def test_every_kind_is_covered_by_a_property_suite():
    corpus = _corpus()
    uncovered = []
    for kind in MessageKind:
        if re.search(rf"\bMessageKind\.{kind.name}\b", corpus):
            continue
        ref = KIND_SCHEMA_REFS.get(kind.name, "")
        if ref.startswith("manual:"):
            module_stem = Path(ref[len("manual:"):]).stem
            if re.search(rf"\b{module_stem}\b", corpus):
                continue
        elif ref:
            schema_name = ref.partition("::")[2]
            if re.search(rf"\b{schema_name}\b", corpus):
                continue
        uncovered.append(kind.name)
    assert not uncovered, (
        f"MessageKind members with no property-suite coverage: {uncovered} — "
        f"add a round-trip property for the payload (see tests/property/)"
    )
