"""Unit tests for the supervision layer: RestartPolicy math and the
supervisor's backoff/budget/escalation behaviour in virtual time."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import RestartPolicy, SimRuntime
from repro.container.lifecycle import ServiceState
from repro.util.errors import ConfigurationError
from repro.util.rng import SeededRng


class TestRestartPolicy:
    def test_defaults_valid(self):
        policy = RestartPolicy()
        assert policy.mode == "on-failure"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sometimes"},
            {"backoff_initial": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_max": 0.01, "backoff_initial": 0.1},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"max_restarts": 0},
            {"restart_window": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RestartPolicy(**kwargs)

    def test_delay_grows_exponentially_and_clamps(self):
        policy = RestartPolicy(
            backoff_initial=0.1, backoff_factor=2.0, backoff_max=0.5, jitter=0.0
        )
        delays = [policy.delay_for(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_fraction(self):
        policy = RestartPolicy(backoff_initial=1.0, backoff_max=1.0, jitter=0.25)
        rng = SeededRng(3)
        for _ in range(100):
            delay = policy.delay_for(0, rng)
            assert 0.75 <= delay <= 1.25

    def test_jitter_draws_are_seeded(self):
        policy = RestartPolicy(jitter=0.25)
        a = [policy.delay_for(i, SeededRng(9)) for i in range(5)]
        b = [policy.delay_for(i, SeededRng(9)) for i in range(5)]
        assert a == b


def crashy_runtime(policy, seed=11, **config_overrides):
    """One container, one probe service, supervision per ``policy``."""
    runtime = SimRuntime(seed=seed)
    container = runtime.add_container("c", restart_policy=policy, **config_overrides)
    probe = ProbeService("victim")
    container.install_service(probe)
    runtime.start()
    runtime.run_for(0.5)
    return runtime, container


class TestSupervisorBackoff:
    POLICY = RestartPolicy(
        mode="on-failure", backoff_initial=0.4, backoff_factor=2.0,
        backoff_max=5.0, jitter=0.0, max_restarts=10, restart_window=100.0,
    )

    def test_restart_fires_exactly_after_backoff(self):
        runtime, container = crashy_runtime(self.POLICY)
        container.service_failed("victim", "injected")
        assert container.service_state("victim") == ServiceState.FAILED
        runtime.run_for(0.3)  # t < backoff: still down
        assert container.service_state("victim") == ServiceState.FAILED
        runtime.run_for(0.2)  # t > backoff: healed
        assert container.service_state("victim") == ServiceState.RUNNING
        assert container.supervisor.restarts_attempted == 1
        assert container.supervisor.stats.count("restarts_succeeded") == 1

    def test_backoff_doubles_per_recent_attempt(self):
        runtime, container = crashy_runtime(self.POLICY)
        for expected_delay in (0.4, 0.8, 1.6):
            container.service_failed("victim", "injected")
            runtime.run_for(expected_delay - 0.05)
            assert container.service_state("victim") == ServiceState.FAILED
            runtime.run_for(0.1)
            assert container.service_state("victim") == ServiceState.RUNNING
        delays = container.supervisor.stats.series("backoff_delay")
        assert delays == [0.4, 0.8, 1.6]

    def test_window_prunes_old_attempts(self):
        policy = RestartPolicy(
            mode="on-failure", backoff_initial=0.4, backoff_factor=2.0,
            jitter=0.0, max_restarts=10, restart_window=2.0,
        )
        runtime, container = crashy_runtime(policy)
        container.service_failed("victim", "injected")
        runtime.run_for(1.0)  # restart at 0.4, now healthy
        runtime.run_for(5.0)  # window slides past the old attempt
        container.service_failed("victim", "injected")
        runtime.run_for(0.5)
        assert container.service_state("victim") == ServiceState.RUNNING
        # Second outage saw an empty window: initial backoff again.
        assert container.supervisor.stats.series("backoff_delay") == [0.4, 0.4]

    def test_never_mode_leaves_service_failed(self):
        runtime, container = crashy_runtime(RestartPolicy(mode="never"))
        container.service_failed("victim", "injected")
        runtime.run_for(20.0)
        assert container.service_state("victim") == ServiceState.FAILED
        assert container.supervisor.restarts_attempted == 0
        assert container.supervisor.stats.count("failures") == 1


class CrashOnStart(ProbeService):
    """Fails every on_start once poisoned — the crash-loop shape."""

    def __init__(self):
        super().__init__("victim")
        self.poisoned = False

    def on_start(self):
        if self.poisoned:
            raise RuntimeError("still broken")


class TestSupervisorEscalation:
    POLICY = RestartPolicy(
        mode="on-failure", backoff_initial=0.2, backoff_factor=1.0,
        jitter=0.0, max_restarts=3, restart_window=60.0,
    )

    def make(self):
        runtime = SimRuntime(seed=12)
        container = runtime.add_container("c", restart_policy=self.POLICY)
        service = CrashOnStart()
        container.install_service(service)
        runtime.start()
        runtime.run_for(0.5)
        return runtime, container, service

    def test_budget_exhaustion_escalates(self):
        runtime, container, service = self.make()
        service.poisoned = True
        container.service_failed("victim", "injected")
        runtime.run_for(10.0)
        record = container.service_record("victim")
        assert record.escalated
        assert record.state == ServiceState.FAILED
        assert container.supervisor.restarts_attempted == 3
        assert container.supervisor.escalations == 1
        assert any("escalated" in reason for reason in container.emergencies)
        # Escalated: no further restart ever gets scheduled.
        before = container.supervisor.restarts_attempted
        runtime.run_for(60.0)
        assert container.supervisor.restarts_attempted == before

    def test_operator_start_forgives_escalation(self):
        runtime, container, service = self.make()
        service.poisoned = True
        container.service_failed("victim", "injected")
        runtime.run_for(10.0)
        assert container.service_record("victim").escalated
        service.poisoned = False
        container.start_service("victim")
        runtime.run_for(0.1)
        record = container.service_record("victim")
        assert record.state == ServiceState.RUNNING
        assert not record.escalated

    def test_heartbeat_carries_restart_counter(self):
        runtime, container, service = self.make()
        peer = runtime.add_container("peer")
        runtime.run_for(3.0)
        service.poisoned = True
        container.service_failed("victim", "injected")
        runtime.run_for(10.0)
        record = peer.directory.record("c")
        assert record is not None
        assert record.restarts == container.supervisor.restarts_attempted


class TestAlwaysMode:
    def test_stopped_service_comes_back(self):
        policy = RestartPolicy(mode="always", backoff_initial=0.3, jitter=0.0)
        runtime, container = crashy_runtime(policy)
        container.stop_service("victim")
        assert container.service_state("victim") == ServiceState.STOPPED
        runtime.run_for(0.5)
        assert container.service_state("victim") == ServiceState.RUNNING

    def test_on_failure_mode_does_not_resurrect_stopped(self):
        runtime, container = crashy_runtime(
            RestartPolicy(mode="on-failure", backoff_initial=0.3, jitter=0.0)
        )
        container.stop_service("victim")
        runtime.run_for(5.0)
        assert container.service_state("victim") == ServiceState.STOPPED

    def test_uninstall_cancels_pending_restart(self):
        policy = RestartPolicy(mode="on-failure", backoff_initial=1.0, jitter=0.0)
        runtime, container = crashy_runtime(policy)
        container.service_failed("victim", "injected")
        container.uninstall_service("victim")
        runtime.run_for(5.0)  # pending restart must not fire on a gone service
        assert container.service_record("victim") is None


class TestPerServicePolicyOverride:
    def test_install_policy_overrides_container_default(self):
        runtime = SimRuntime(seed=13)
        container = runtime.add_container("c")  # default: never
        container.install_service(
            ProbeService("healed"),
            restart_policy=RestartPolicy(mode="on-failure", backoff_initial=0.2,
                                         jitter=0.0),
        )
        container.install_service(ProbeService("left-down"))
        runtime.start()
        runtime.run_for(0.5)
        container.service_failed("healed", "injected")
        container.service_failed("left-down", "injected")
        runtime.run_for(1.0)
        assert container.service_state("healed") == ServiceState.RUNNING
        assert container.service_state("left-down") == ServiceState.FAILED
