"""Direct unit coverage of the FaultInjector (log ordering, timed
restores, partition symmetry, overlapping-fault heal semantics)."""

import pytest

from repro import SimRuntime
from repro.faults import FaultInjector


def make_runtime(nodes=("a", "b", "c"), seed=5):
    runtime = SimRuntime(seed=seed)
    for node in nodes:
        runtime.add_container(node)
    return runtime


class TestLogOrdering:
    def test_events_logged_at_fire_time_in_order(self):
        runtime = make_runtime()
        injector = FaultInjector(runtime)
        injector.degrade_link(2.0, "a", "b", loss=0.5)
        injector.crash_container(1.0, "c")
        injector.restore_node(3.0, "c")
        runtime.start()
        runtime.run_for(5.0)
        kinds = [(e.kind, e.time) for e in injector.log]
        assert kinds == [
            ("crash_container", pytest.approx(1.0)),
            ("degrade_link", pytest.approx(2.0)),
            ("restore_node", pytest.approx(3.0)),
        ]

    def test_crash_service_logged_with_target(self):
        runtime = make_runtime()
        injector = FaultInjector(runtime)
        injector.crash_container(0.5, "a")
        runtime.start()
        runtime.run_for(1.0)
        assert injector.log[0].target == "a"


class TestTimedRestore:
    def test_degrade_then_restore_returns_baseline(self):
        runtime = make_runtime()
        baseline = runtime.network.link_for("a", "b")
        injector = FaultInjector(runtime)
        injector.degrade_link(1.0, "a", "b", loss=0.8, duration=2.0)
        runtime.start()
        runtime.run_for(2.0)
        assert runtime.network.link_for("a", "b").loss == 0.8
        runtime.run_for(2.0)
        assert runtime.network.link_for("a", "b") == baseline
        assert [e.kind for e in injector.log] == ["degrade_link", "restore_link"]

    def test_permanent_degrade_never_restores(self):
        runtime = make_runtime()
        injector = FaultInjector(runtime)
        injector.degrade_link(1.0, "a", "b", loss=0.8)
        runtime.start()
        runtime.run_for(10.0)
        assert runtime.network.link_for("a", "b").loss == 0.8


class TestOverlappingFaults:
    def test_overlapping_degrades_restore_baseline_not_intermediate(self):
        """Two overlapping windows on one link: the first heal must not
        clobber the second fault, and the final heal must restore the
        *original* model, not the first fault's degraded one."""
        runtime = make_runtime()
        baseline = runtime.network.link_for("a", "b")
        injector = FaultInjector(runtime)
        injector.degrade_link(1.0, "a", "b", loss=0.5, duration=3.0)  # heals t=4
        injector.degrade_link(2.0, "a", "b", loss=0.9, duration=4.0)  # heals t=6
        runtime.start()
        runtime.run_for(3.0)  # t=3: both active, last writer wins
        assert runtime.network.link_for("a", "b").loss == 0.9
        runtime.run_for(2.0)  # t=5: first heal fired, second fault still active
        assert runtime.network.link_for("a", "b").loss == 0.9
        runtime.run_for(2.0)  # t=7: all healed
        assert runtime.network.link_for("a", "b") == baseline
        kinds = [e.kind for e in injector.log]
        assert kinds == [
            "degrade_link", "degrade_link", "restore_deferred", "restore_link",
        ]

    def test_degrade_inside_partition_heals_to_baseline(self):
        runtime = make_runtime()
        baseline = runtime.network.link_for("a", "b")
        injector = FaultInjector(runtime)
        injector.partition(1.0, ["a"], ["b"], duration=4.0)      # heals t=5
        injector.degrade_link(2.0, "a", "b", loss=0.3, duration=1.0)  # heals t=3
        runtime.start()
        runtime.run_for(4.0)  # t=4: degrade healed, partition still on
        assert runtime.network.link_for("a", "b").loss == 0.3 or \
            runtime.network.link_for("a", "b").loss == 1.0
        runtime.run_for(2.0)  # t=6: everything healed
        assert runtime.network.link_for("a", "b") == baseline


class TestPartitionSymmetry:
    def test_partition_blocks_both_directions(self):
        runtime = make_runtime()
        injector = FaultInjector(runtime)
        injector.partition(1.0, ["a"], ["b", "c"], duration=2.0)
        runtime.start()
        runtime.run_for(2.0)
        # set_link(..., symmetric=True): both directions must be dead.
        for x in ("b", "c"):
            assert runtime.network.link_for("a", x).loss == 1.0
            assert runtime.network.link_for(x, "a").loss == 1.0
        # Links within one side are untouched.
        assert runtime.network.link_for("b", "c").loss != 1.0

    def test_partition_heals_both_directions(self):
        runtime = make_runtime()
        base_ab = runtime.network.link_for("a", "b")
        injector = FaultInjector(runtime)
        injector.partition(1.0, ["a"], ["b"], duration=2.0)
        runtime.start()
        runtime.run_for(5.0)
        assert runtime.network.link_for("a", "b") == base_ab
        assert runtime.network.link_for("b", "a") == base_ab


class TestFlapLink:
    def test_flap_alternates_and_ends_healed(self):
        runtime = make_runtime()
        baseline = runtime.network.link_for("a", "b")
        injector = FaultInjector(runtime)
        injector.flap_link(1.0, "a", "b", loss=1.0, down=0.5, up=0.5, cycles=3)
        runtime.start()
        runtime.run_for(1.3)  # inside first down window
        assert runtime.network.link_for("a", "b").loss == 1.0
        runtime.run_for(0.5)  # inside first up window
        assert runtime.network.link_for("a", "b") == baseline
        runtime.run_for(10.0)
        assert runtime.network.link_for("a", "b") == baseline
        degrades = [e for e in injector.log if e.kind == "degrade_link"]
        restores = [e for e in injector.log if e.kind == "restore_link"]
        assert len(degrades) == 3 and len(restores) == 3
