"""Scheduler tests: policies, CPU model queueing, error isolation."""

import time

import pytest

from repro.sched import (
    CpuModel,
    DeadlinePolicy,
    FifoPolicy,
    FixedPriorityPolicy,
    SimScheduler,
    ThreadPoolScheduler,
    make_policy,
)
from repro.sim import Simulator
from repro.util.errors import ConfigurationError


def make_sched(policy=None, cpu=None, record=True, on_error=None):
    sim = Simulator()
    sched = SimScheduler(
        timers=sim,
        clock=sim,
        policy=policy or FixedPriorityPolicy(),
        cpu=cpu,
        record=record,
        on_error=on_error,
    )
    return sim, sched


class TestPolicies:
    def test_make_policy(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("fixed_priority").name == "fixed_priority"
        assert make_policy("deadline").name == "deadline"
        with pytest.raises(ConfigurationError):
            make_policy("lottery")


class TestZeroCostExecution:
    def test_tasks_run(self):
        sim, sched = make_sched()
        done = []
        sched.submit("event", lambda: done.append(1))
        sim.run()
        assert done == [1]
        assert sched.executed == 1

    def test_zero_cost_runs_at_submit_time(self):
        sim, sched = make_sched()
        times = []
        sim.schedule(2.0, lambda: sched.submit("event", lambda: times.append(sim.now())))
        sim.run()
        assert times == [2.0]


class TestPriorityOrdering:
    def submit_mixed(self, sim, sched, order):
        # One running task holds the CPU; queue one of each label behind it.
        def hold():
            pass

        sched.submit("background", hold)  # occupies CPU first (cost applies)
        for label in ["file", "invocation", "variable", "event"]:
            sched.submit(label, lambda lbl=label: order.append(lbl))

    def test_fixed_priority_runs_events_first(self):
        sim, sched = make_sched(
            policy=FixedPriorityPolicy(), cpu=CpuModel(default_cost=0.01)
        )
        order = []
        self.submit_mixed(sim, sched, order)
        sim.run()
        assert order == ["event", "variable", "invocation", "file"]

    def test_fifo_runs_in_arrival_order(self):
        sim, sched = make_sched(policy=FifoPolicy(), cpu=CpuModel(default_cost=0.01))
        order = []
        self.submit_mixed(sim, sched, order)
        sim.run()
        assert order == ["file", "invocation", "variable", "event"]

    def test_deadline_policy_prefers_tight_budgets(self):
        sim, sched = make_sched(policy=DeadlinePolicy(), cpu=CpuModel(default_cost=0.01))
        order = []
        self.submit_mixed(sim, sched, order)
        sim.run()
        assert order[0] == "event"


class TestCpuModel:
    def test_cost_delays_completion(self):
        sim, sched = make_sched(cpu=CpuModel(costs={"invocation": 0.5}))
        times = []
        sched.submit("invocation", lambda: times.append(sim.now()))
        sim.run()
        assert times == [0.5]

    def test_queueing_delay_recorded(self):
        sim, sched = make_sched(cpu=CpuModel(default_cost=0.1))
        sched.submit("event", lambda: None)
        sched.submit("event", lambda: None)
        sim.run()
        delays = sched.queue_delays("event")
        assert delays[0] == pytest.approx(0.0)
        assert delays[1] == pytest.approx(0.1)

    def test_load_reflects_queue(self):
        sim, sched = make_sched(cpu=CpuModel(default_cost=1.0))
        for _ in range(3):
            sched.submit("file", lambda: None)
        assert sched.load == 3  # one running + two queued
        sim.run()
        assert sched.load == 0


class TestErrorIsolation:
    def test_error_routed_to_handler(self):
        errors = []
        sim, sched = make_sched(on_error=lambda label, exc: errors.append((label, str(exc))))
        done = []
        sched.submit("event", lambda: 1 / 0)
        sched.submit("event", lambda: done.append(1))
        sim.run()
        assert len(errors) == 1
        assert errors[0][0] == "event"
        assert done == [1]  # the scheduler survived
        assert sched.errors == 1

    def test_error_without_handler_propagates(self):
        sim, sched = make_sched(on_error=None)
        # Zero-cost tasks execute synchronously at submit time.
        with pytest.raises(ZeroDivisionError):
            sched.submit("event", lambda: 1 / 0)

    def test_error_without_handler_propagates_through_run(self):
        sim, sched = make_sched(on_error=None, cpu=CpuModel(default_cost=0.1))
        sched.submit("event", lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            sim.run()


class TestThreadPoolScheduler:
    def test_executes_tasks(self):
        sched = ThreadPoolScheduler(policy=FixedPriorityPolicy(), workers=2)
        done = []
        for i in range(20):
            sched.submit("event", lambda i=i: done.append(i))
        assert sched.drain(timeout=5.0)
        sched.shutdown()
        time.sleep(0.05)
        assert sorted(done) == list(range(20))

    def test_error_isolation(self):
        errors = []
        sched = ThreadPoolScheduler(
            policy=FifoPolicy(), workers=1, on_error=lambda l, e: errors.append(l)
        )
        sched.submit("event", lambda: 1 / 0)
        assert sched.drain(timeout=5.0)
        sched.shutdown()
        assert errors == ["event"]

    def test_submit_after_shutdown_rejected(self):
        sched = ThreadPoolScheduler(policy=FifoPolicy(), workers=1)
        sched.shutdown()
        with pytest.raises(RuntimeError):
            sched.submit("event", lambda: None)

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ThreadPoolScheduler(policy=FifoPolicy(), workers=0)
