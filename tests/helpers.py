"""Shared helpers for integration tests and benchmarks."""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro import Service, SimRuntime


class ProbeService(Service):
    """A scriptable service: declares whatever the test asks for and records
    everything it receives."""

    def __init__(self, name: str, setup: Optional[Callable[["ProbeService"], None]] = None):
        super().__init__(name)
        self._setup = setup
        self.samples: List[tuple] = []  # (variable, value, timestamp)
        self.events: List[tuple] = []  # (event, value, timestamp)
        self.files: List[tuple] = []  # (resource, data, revision)
        self.timeouts: List[str] = []
        self.results: List[Any] = []
        self.errors: List[Exception] = []

    def on_start(self) -> None:
        if self._setup is not None:
            self._setup(self)

    # -- recording helpers ------------------------------------------------------
    def watch_variable(self, name: str, initial: bool = False):
        return self.ctx.subscribe_variable(
            name,
            on_sample=lambda v, t: self.samples.append((name, v, t)),
            on_timeout=lambda n: self.timeouts.append(n),
            initial=initial,
        )

    def watch_event(self, name: str):
        return self.ctx.subscribe_event(
            name, lambda v, t: self.events.append((name, v, t))
        )

    def watch_file(self, name: str, **kwargs):
        return self.ctx.subscribe_file(
            name,
            on_complete=lambda data, rev: self.files.append((name, data, rev)),
            **kwargs,
        )

    def call_recorded(self, function: str, args: tuple = (), **kwargs):
        return self.ctx.call(
            function,
            args,
            on_result=self.results.append,
            on_error=self.errors.append,
            **kwargs,
        )

    def values_of(self, variable: str) -> List[Any]:
        return [v for n, v, _ in self.samples if n == variable]

    def events_of(self, event: str) -> List[Any]:
        return [v for n, v, _ in self.events if n == event]


def two_containers(seed: int = 1, link=None, **config_overrides):
    """A runtime with containers 'a' and 'b' on their own nodes."""
    runtime = SimRuntime(seed=seed, default_link=link)
    a = runtime.add_container("a", **config_overrides)
    b = runtime.add_container("b", **config_overrides)
    return runtime, a, b


def settle(runtime: SimRuntime, duration: float = 3.0) -> None:
    runtime.start()
    runtime.run_for(duration)
