"""Fleet-scale integration: a 200-container federated mission under chaos.

The fleet is organised UAV → relay → ground station: ten zones of UAVs,
each bridged onto the backbone by a relay, plus a ground-station container.
Raw announce/heartbeat traffic stays inside each zone; zone summaries
travel the backbone. The campaign flaps links (including a backbone link
between relays) and restarts one relay outright; afterwards every §3
contract must hold and the directories must reconverge within a bounded
window. A second test replays the same fleet twice and demands bit-identical
outcomes (the determinism contract at scale)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime
from repro.container.fleet import FleetConfig
from repro.encoding.types import FLOAT64, StructType
from repro.faults import ChaosCampaign, ChaosProfile, InvariantChecker
from repro.util.ids import reset_uid_counter

SCHEMA = StructType("Telemetry", [("x", FLOAT64)])

ZONES = 10
UAVS_PER_ZONE = 19  # + 1 relay per zone + 1 ground station = 201 containers

#: Fleet-paced control intervals: at 200 containers the default 0.25 s
#: heartbeat would dominate the event count without testing anything more.
FLEET_TIMING = dict(
    announce_interval=5.0,
    heartbeat_interval=1.0,
    liveness_timeout=4.0,
    housekeeping_interval=2.0,
)


def telemetry(tag):
    def setup(s):
        s.handle = s.ctx.provide_variable(
            "fleet.telemetry", SCHEMA, validity=5.0, period=1.0
        )
        s.ctx.every(1.0, lambda: s.handle.publish({"x": tag}))

    return setup


def zone_name(z):
    return f"z{z}"


def build_fleet(seed):
    runtime = SimRuntime(seed=seed, zone_isolation=True)
    for z in range(ZONES):
        zone = zone_name(z)
        runtime.add_container(
            f"relay-{zone}",
            fleet=FleetConfig(zone=zone, role="relay"),
            **FLEET_TIMING,
        )
        for i in range(UAVS_PER_ZONE):
            runtime.add_container(
                f"uav-{zone}-{i:02d}",
                fleet=FleetConfig(zone=zone),
                **FLEET_TIMING,
            )
    runtime.add_container(
        "ground",
        fleet=FleetConfig(zone="gs", role="ground"),
        **FLEET_TIMING,
    )
    # A telemetry provider per zone keeps a data plane alive through the
    # chaos (one per zone: the point is the control plane at scale).
    for z in range(ZONES):
        runtime.container(f"uav-{zone_name(z)}-00").install_service(
            ProbeService(f"telemetry-{z}", telemetry(float(z)))
        )
    return runtime


def zone_members(runtime):
    members = {}
    for cid, container in runtime.containers.items():
        members.setdefault(container.config.fleet.zone, []).append(cid)
    return members


def zones_converged(runtime):
    """Every running container sees every running zone peer alive."""
    for zone, ids in zone_members(runtime).items():
        running = [c for c in ids if runtime.containers[c].running]
        for a in running:
            directory = runtime.containers[a].directory
            for b in running:
                if a == b:
                    continue
                record = directory.record(b)
                if record is None or not record.alive:
                    return False
    return True


@pytest.mark.chaos
def test_federated_fleet_survives_flaps_and_relay_restart():
    runtime = build_fleet(seed=1234)
    checker = InvariantChecker(runtime)
    runtime.start()
    runtime.settle(8.0)
    assert zones_converged(runtime)

    profile = ChaosProfile(
        start=2.0,
        duration=6.0,
        crash_storms=0,
        container_crashes=0,
        link_flaps=3,
        flap_cycles=(2, 3),
        partitions=0,
    )
    campaign = ChaosCampaign(runtime, profile)
    campaign.schedule()
    # Guarantee the chaos touches the hierarchy where it hurts: a backbone
    # link between two relays flaps, and one relay restarts outright.
    campaign.injector.flap_link(
        2.5, "relay-z0", "relay-z1", loss=1.0, down=0.5, up=0.5, cycles=3
    )
    restarted = runtime.container("relay-z3")
    campaign.injector.stop_container(3.0, "relay-z3")
    runtime.sim.schedule(5.0, restarted.start)
    campaign.horizon = max(campaign.horizon, 5.0)

    campaign.run(settle=6.0)
    assert restarted.running

    # Bounded convergence after the flap: the whole fleet must reconverge
    # within one announce interval plus slack, not eventually-maybe.
    t0 = runtime.sim.now()
    assert runtime.run_until(lambda: zones_converged(runtime), timeout=12.0)
    assert runtime.sim.now() - t0 <= 12.0
    # Give cross-zone summaries one more period to refresh, then judge.
    runtime.run_for(3.0)

    violations = checker.check()
    assert violations == [], "\n".join(violations)

    # The restarted relay came back with a new incarnation and its zone
    # noticed (stream state was reset, record is fresh).
    peer = runtime.container("uav-z3-00")
    record = peer.directory.record("relay-z3")
    assert record is not None and record.alive
    assert record.incarnation == 2
    # Federation held: the ground station knows every zone.
    assert set(runtime.container("ground").directory.known_zones()) >= {
        zone_name(z) for z in range(ZONES)
    }


@pytest.mark.chaos
def test_fleet_replay_is_bit_identical_at_scale():
    def run_once():
        reset_uid_counter()
        runtime = build_fleet(seed=77)
        runtime.start()
        runtime.run_for(6.0)
        runtime.container("uav-z2-05").stop()
        runtime.run_for(4.0)
        views = {
            cid: sorted(
                (r.container, r.incarnation, r.alive, r.last_seen)
                for r in runtime.containers[cid].directory.all_records()
            )
            for cid in ("relay-z0", "uav-z2-00", "ground")
        }
        return views, runtime.metrics_snapshot(), runtime.sim.events_executed

    first = run_once()
    second = run_once()
    assert first[2] == second[2]
    assert first[0] == second[0]
    assert first[1] == second[1]
