"""Runtime verification end to end: mission specs over a federated fleet,
the InvariantChecker as differential oracle, and the wire-inertness of
the whole probe machinery.

Four layers:

- **Mission specs at scale** (chaos tier): the standard middleware
  contracts plus a mission-level photo-pipeline response spec, armed over
  a ~200-container zoned fleet while attacker personas (volumetric
  flooder, malicious NACKer) run against a defended victim. The defended
  run must end violation-free — the specs are the online restatement of
  what the adversarial suite asserts post-hoc.
- **Injected bug**: breaking the variable-serve freshness predicate
  (the validity-window bug the spec exists for) must produce a
  ``var-validity`` violation attributed to the *consumer's* container,
  and — when the read happens inside a traced span — carrying that
  span's ids.
- **Differential oracle**: the hand-written InvariantChecker and the
  compiled specs watch the same seeded chaos campaigns and must agree —
  green together on defended runs, red together on a leaked invocation.
- **Wire inertness**: with monitors armed (or just a span listener
  subscribed while tracing is disabled) the packet trace is identical,
  byte for byte and time for time, to a run without any of it.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime, ThreadedRuntime
from repro.container.fleet import FleetConfig
from repro.encoding.types import FLOAT64, STRING, StructType
from repro.faults import (
    ChaosCampaign,
    ChaosProfile,
    FaultInjector,
    Flooder,
    InvariantChecker,
    MaliciousNacker,
)
from repro.util.ids import reset_uid_counter
from repro.verify import FleetMonitor
from repro.verify.library import (
    invocation_termination,
    mission_response,
    standard_specs,
)

SCHEMA = StructType("Telemetry", [("x", FLOAT64)])

ZONES = 10
UAVS_PER_ZONE = 19  # + 1 relay per zone + 1 ground station = 201 containers

FLEET_TIMING = dict(
    announce_interval=5.0,
    heartbeat_interval=1.0,
    liveness_timeout=4.0,
    housekeeping_interval=2.0,
)

#: Publishers/callers hold off until zone discovery has converged: an
#: event raised before the subscriber's SUBSCRIBE lands is legitimately
#: unrouted, not a broken pipeline.
TRAFFIC_START = 9.0


def photo_spec():
    return mission_response(
        "photo-pipeline",
        "event.publish", "mission.photo",
        "event.deliver", "mission.photo",
        within=5.0,
        owner="mission-ops",
    )


def _zone_services(zone):
    """Telemetry + photo-event producer (uav 00), polling consumer (01)."""

    def producer(s):
        s.muted = False  # tests mute publishing while the provision stays up
        s.telemetry = s.ctx.provide_variable(
            "fleet.telemetry", SCHEMA, validity=2.0, period=1.0
        )
        s.photos = s.ctx.provide_event("mission.photo", STRING)

        def tick():
            if s.muted or s.ctx.now() < TRAFFIC_START:
                return
            s.telemetry.publish({"x": s.ctx.now()})
            s.photos.raise_event(f"{zone}-photo")

        s.ctx.every(1.0, tick)

    def consumer(s):
        s.sub = s.ctx.subscribe_variable(
            "fleet.telemetry", on_sample=lambda v, t: None
        )
        s.ctx.watch_photos = s.ctx.subscribe_event(
            "mission.photo", lambda v, t: None
        )
        # The polled .latest() read is the served-from-cache path the
        # var-validity spec guards.
        s.ctx.every(0.5, lambda: s.sub.latest())

    return ProbeService(f"producer-{zone}", producer), ProbeService(
        f"consumer-{zone}", consumer
    )


def build_fleet(seed, zones=ZONES):
    runtime = SimRuntime(seed=seed, zone_isolation=True)
    for z in range(zones):
        zone = f"z{z}"
        runtime.add_container(
            f"relay-{zone}",
            fleet=FleetConfig(zone=zone, role="relay"),
            **FLEET_TIMING,
        )
        for i in range(UAVS_PER_ZONE):
            runtime.add_container(
                f"uav-{zone}-{i:02d}",
                fleet=FleetConfig(zone=zone),
                **FLEET_TIMING,
            )
    runtime.add_container(
        "ground", fleet=FleetConfig(zone="gs", role="ground"), **FLEET_TIMING
    )
    services = {}
    for z in range(zones):
        zone = f"z{z}"
        producer, consumer = _zone_services(zone)
        runtime.container(f"uav-{zone}-00").install_service(producer)
        runtime.container(f"uav-{zone}-01").install_service(consumer)
        services[zone] = (producer, consumer)
    # One RPC pair inside z0 keeps the invocation-termination spec honest.
    runtime.container("relay-z0").install_service(
        ProbeService(
            "compute",
            lambda s: s.ctx.provide_function(
                "verify.compute", lambda: "ok", params=[], result=STRING
            ),
        )
    )

    def caller_setup(s):
        def call():
            if s.ctx.now() >= TRAFFIC_START:
                s.call_recorded("verify.compute", timeout=1.0)

        s.ctx.every(1.0, call)

    caller = ProbeService("caller", caller_setup)
    runtime.container("uav-z0-03").install_service(caller)
    services["caller"] = caller
    return runtime, services


def error_violations(monitor):
    return [v for v in monitor.violations if v.severity == "error"]


@pytest.mark.chaos
class TestMissionSpecsAtScale:
    """Six specs over 201 containers under attack: the defended fleet's
    contracts hold online, not just in the post-mortem."""

    def test_defended_fleet_is_violation_free(self):
        runtime, services = build_fleet(seed=20260)
        personas = [
            Flooder(runtime, target="uav-z0-00", rate=1500.0, duration=5.0),
            MaliciousNacker(
                runtime,
                target="uav-z0-00",
                spoof="uav-z0-01",
                rate=200.0,
                duration=5.0,
            ),
        ]
        campaign = ChaosCampaign(
            runtime,
            profile=ChaosProfile(
                start=10.0, duration=6.0,
                crash_storms=0, container_crashes=0,
                link_flaps=0, partitions=0,
            ),
            personas=personas,
        )
        campaign.schedule()
        checker = InvariantChecker(runtime)
        monitor = runtime.enable_verification(
            standard_specs() + [photo_spec()]
        )
        checker.attach_monitor(monitor)
        runtime.start()
        runtime.enable_admission()
        runtime.harden_reliability()
        campaign.run(settle=6.0)

        assert len(monitor.specs) >= 5
        report = runtime.verification_report()
        assert error_violations(monitor) == [], report["violations"]
        # The stream was actually observed at fleet scale, and the data
        # plane actually ran: telemetry served, photos delivered, calls
        # terminated.
        assert report["events_observed"] > 1000
        assert services["caller"].results
        # The differential oracle agrees: hand-written invariants green too.
        assert checker.check() == []

    def test_injected_validity_bug_caught_with_attribution(self, monkeypatch):
        from repro.primitives.variables import VariableManager

        runtime, services = build_fleet(seed=20261, zones=2)
        monitor = runtime.enable_verification(standard_specs())
        runtime.start()
        runtime.run_for(TRAFFIC_START + 3.0)
        assert error_violations(monitor) == []

        # Break the serve-freshness predicate fleet-wide, then mute the z1
        # producer (its provision — and thus the validity window — stays
        # announced) so the consumer's polled reads go stale.
        monkeypatch.setattr(
            VariableManager, "_fresh", lambda self, sub, validity, age: True
        )
        services["z1"][0].muted = True
        runtime.run_for(4.0)  # validity is 2.0 s; the cached sample ages out

        consumer_container = runtime.container("uav-z1-01")
        caught = [v for v in error_violations(monitor) if v.spec == "var-validity"]
        assert caught, "the broken freshness predicate must be caught online"
        assert {v.container for v in caught} == {"uav-z1-01"}
        assert all(v.key == "fleet.telemetry" for v in caught)

        # A traced read carries the causing span into the violation.
        tracer = consumer_container.tracer
        tracer.enabled = True
        span = tracer.start_span("stale-read", kind="test")
        with tracer.activate(span.context()):
            value = services["z1"][1].sub.latest()
        tracer.finish(span)
        assert value is not None  # the bug really served a stale sample
        traced = [v for v in monitor.violations if v.trace_id is not None]
        assert traced and traced[-1].span_id == span.span_id
        # The flight recorder on the victim container has the full story.
        entries = [
            e
            for e in consumer_container.recorder.dump()
            if e["category"] == "verify.violation"
        ]
        assert entries and entries[-1]["span_id"] == span.span_id


@pytest.mark.chaos
class TestInvariantOracleAgreement:
    """The compiled specs and the hand-written InvariantChecker watch the
    same seeded chaos campaigns and must return the same verdict."""

    @pytest.mark.parametrize("seed", [77, 171])
    def test_green_agreement_through_chaos(self, seed):
        from integration.test_chaos import (
            PROFILE,
            build_domain,
            install_consumer,
        )

        runtime = build_domain(seed)
        campaign = ChaosCampaign(runtime, profile=PROFILE, protected=("delta",))
        campaign.schedule()
        install_consumer(runtime, deadline=campaign.horizon + 2.0)
        checker = InvariantChecker(runtime)
        monitor = runtime.enable_verification(standard_specs())
        checker.attach_monitor(monitor)
        runtime.start()
        campaign.run(settle=8.0)
        # Specs green, checker green, and the checker's merged report
        # (which now folds in the monitor) green too: full agreement.
        assert error_violations(monitor) == []
        assert checker.check() == []
        assert monitor.engine.events_observed > 0

    def test_red_agreement_on_leaked_invocation(self):
        from integration.test_chaos import build_domain

        runtime = build_domain(seed=5)
        # A tight bound so the spec's deadline and the checker's pending-call
        # sweep go red at the same observation instant.
        monitor = runtime.enable_verification(
            [invocation_termination(within=0.25)]
        )
        checker = InvariantChecker(runtime)
        checker.attach_monitor(monitor)
        consumer = ProbeService("consumer")
        runtime.container("delta").install_service(consumer)
        runtime.start()
        runtime.run_for(3.0)
        # Cut the consumer off, then fire a long-timeout call into the
        # void: it outlives the spec's bound and the checker's patience.
        FaultInjector(runtime).partition(
            0.0, ["delta"], ["alpha", "beta", "gamma"]
        )
        runtime.run_for(0.5)
        consumer.call_recorded("chaos.compute", timeout=30.0)
        runtime.run_for(0.5)

        oracle = checker.check_invocations_terminated()
        assert any("never terminated" in v for v in oracle)
        monitor.finish(runtime.sim.now())
        spec_verdict = [
            v for v in monitor.violations
            if v.spec == "invocation-termination"
            and v.reason == "response-timeout"
        ]
        assert spec_verdict, "the spec must flag what the oracle flags"
        assert spec_verdict[0].container == "delta"
        # And the checker's merged report names the spec violation with
        # container attribution.
        merged = checker.check()
        assert any("spec invocation-termination" in v for v in merged)


class TestThreadedRuntimeSmoke:
    """The monitors are runtime-agnostic: same taps over real UDP threads."""

    def test_specs_armed_over_udp(self):
        fast = dict(
            announce_interval=0.2,
            heartbeat_interval=0.05,
            liveness_timeout=0.5,
            housekeeping_interval=0.1,
        )
        runtime = ThreadedRuntime()
        try:
            a = runtime.add_container("a", **fast)
            b = runtime.add_container("b", **fast)
            pub = ProbeService(
                "pub",
                lambda s: setattr(
                    s,
                    "handle",
                    s.ctx.provide_variable("test.var", SCHEMA, validity=5.0),
                ),
            )
            sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
            a.install_service(pub)
            b.install_service(sub)
            monitor = FleetMonitor(standard_specs())
            monitor.attach_runtime(runtime)
            runtime.start()
            assert runtime.run_until(
                lambda: bool(b.directory.providers_of_variable("test.var")),
                timeout=5.0,
            )
            runtime.on_reactor(lambda: pub.handle.publish({"x": 1.0}))
            assert runtime.run_until(lambda: len(sub.samples) >= 1, timeout=5.0)
            monitor.finish()
            assert [v for v in monitor.violations if v.severity == "error"] == []
            assert monitor.engine.events_observed > 0
        finally:
            runtime.stop()


def _packet_trace(configure):
    """Four containers exchanging telemetry; returns the full packet trace
    (source, destination, payload bytes, timings)."""
    reset_uid_counter()
    runtime = SimRuntime(seed=77)
    trace = runtime.network.enable_trace()
    for i in range(4):
        runtime.add_container(f"m{i}")
    pub = ProbeService(
        "pub",
        lambda s: setattr(
            s,
            "handle",
            s.ctx.provide_variable("p.var", SCHEMA, validity=2.0, period=0.5),
        ),
    )
    runtime.container("m0").install_service(pub)
    runtime.container("m1").install_service(
        ProbeService("sub", lambda s: s.watch_variable("p.var"))
    )
    runtime.sim.schedule(1.5, lambda: pub.handle.publish({"x": 4.2}))
    configure(runtime)
    runtime.start()
    runtime.run_for(3.0)
    runtime.containers["m3"].stop()
    runtime.run_for(1.0)
    return [
        (str(p.source), str(p.destination), p.payload, p.sent_at, p.delivered_at)
        for p in trace
    ]


class TestWireInertness:
    """Armed monitors (and dormant span listeners) never touch the wire."""

    def test_armed_verification_is_packet_trace_identical(self):
        baseline = _packet_trace(lambda runtime: None)
        assert any(p[2] for p in baseline)  # real traffic flowed

        armed = _packet_trace(
            lambda runtime: runtime.enable_verification(standard_specs())
        )
        assert armed == baseline

    def test_subscribed_but_disabled_tracer_is_byte_identical(self):
        baseline = _packet_trace(lambda runtime: None)

        def with_dormant_listener(runtime):
            for container in runtime.containers.values():
                container.tracer.subscribe(lambda span, phase: None)

        assert _packet_trace(with_dormant_listener) == baseline
