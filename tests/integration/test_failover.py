"""Experiment E7: failure detection, cache invalidation and failover (§3, §4.3)."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro import SimRuntime
from repro.encoding.types import STRING
from repro.faults import FaultInjector


class TestFailureDetection:
    def test_clean_shutdown_detected_immediately(self):
        runtime, a, b = two_containers()
        settle(runtime)
        assert b.directory.record("a").alive
        a.stop()
        runtime.run_for(0.2)
        assert not b.directory.record("a").alive

    def test_crash_detected_by_heartbeat_timeout(self):
        runtime, a, b = two_containers()
        settle(runtime)
        injector = FaultInjector(runtime)
        injector.crash_container(0.0, "a")
        runtime.run_for(0.5)
        assert b.directory.record("a").alive  # not yet past the timeout
        runtime.run_for(2.0)
        assert not b.directory.record("a").alive

    def test_detection_time_bounded_by_liveness_timeout(self):
        runtime = SimRuntime(seed=3)
        a = runtime.add_container("a", liveness_timeout=0.6)
        b = runtime.add_container("b", liveness_timeout=0.6)
        deaths = []
        b.directory.on_container_down(
            lambda record: deaths.append(runtime.sim.now())
        )
        runtime.start()
        runtime.run_for(2.0)
        crash_time = runtime.sim.now()
        FaultInjector(runtime).crash_container(0.0, "a")
        runtime.run_for(3.0)
        assert len(deaths) == 1
        detection_delay = deaths[0] - crash_time
        assert detection_delay <= 0.6 + 0.5 + 0.1  # timeout + housekeeping tick

    def test_recovered_container_rediscovered(self):
        runtime, a, b = two_containers()
        settle(runtime)
        injector = FaultInjector(runtime)
        injector.crash_container(0.0, "a")
        runtime.run_for(3.0)
        assert not b.directory.record("a").alive
        injector.restore_node(0.0, "a")
        runtime.run_for(2.0)
        assert b.directory.record("a").alive


class TestServiceFailureIsolation:
    def test_crashing_callback_fails_only_its_service(self):
        runtime, a, b = two_containers()

        def bad_setup(s):
            s.ctx.provide_event("bad.evt")
            s.ctx.every(0.1, lambda: 1 / 0)  # raises on first tick

        bad = ProbeService("bad", bad_setup)
        good = ProbeService("good", lambda s: s.ctx.provide_event("good.evt"))
        a.install_service(bad)
        a.install_service(good)
        settle(runtime)
        from repro.container import ServiceState

        assert a.service_state("bad") == ServiceState.FAILED
        assert a.service_state("good") == ServiceState.RUNNING

    def test_failed_service_offers_withdrawn_everywhere(self):
        runtime, a, b = two_containers()

        def setup(s):
            s.ctx.provide_function("frail.fn", lambda: "ok", params=[], result=STRING)

        frail = ProbeService("frail", setup)
        a.install_service(frail)
        settle(runtime)
        assert b.directory.providers_of_function("frail.fn")
        a.service_failed("frail", "injected")
        runtime.run_for(1.5)
        assert not b.directory.providers_of_function("frail.fn")

    def test_failed_service_can_restart(self):
        runtime, a, _ = two_containers()
        svc = ProbeService("flaky", lambda s: s.ctx.provide_event("flaky.evt"))
        a.install_service(svc)
        settle(runtime)
        a.service_failed("flaky", "injected")
        from repro.container import ServiceState

        assert a.service_state("flaky") == ServiceState.FAILED
        a.start_service("flaky")
        assert a.service_state("flaky") == ServiceState.RUNNING
        record = [r for r in a.services() if r.name == "flaky"][0]
        assert record.restarts == 1


class TestDegradedMode:
    def test_mission_continues_with_redundant_provider(self):
        """The §4.3 promise: 'This allows the system to continue its
        mission, although perhaps in a degraded mode.'"""
        runtime = SimRuntime(seed=9)
        primary = runtime.add_container("primary")
        backup = runtime.add_container("backup")
        client_c = runtime.add_container("client")

        def provider(tag):
            def setup(s):
                s.ctx.provide_function("nav.compute", lambda: tag, params=[], result=STRING)
            return setup

        primary.install_service(ProbeService("nav-primary", provider("primary")))
        backup.install_service(ProbeService("nav-backup", provider("backup")))
        client = ProbeService("client")
        client_c.install_service(client)
        settle(runtime)

        # Phase 1: both providers alive, calls succeed.
        client.call_recorded("nav.compute")
        runtime.run_for(1.0)
        assert len(client.results) == 1

        # Phase 2: primary dies hard; after detection, calls keep working.
        FaultInjector(runtime).crash_container(0.0, "primary")
        runtime.run_for(3.0)
        for _ in range(5):
            client.call_recorded("nav.compute")
        runtime.run_for(3.0)
        assert client.results.count("backup") >= 5 - 1  # at most one went astray
        assert client.errors == []

    def test_emergency_procedure_when_last_provider_dies(self):
        runtime, a, b = two_containers()
        a.install_service(ProbeService("only", lambda s: s.ctx.provide_function(
            "solo.fn", lambda: "ok", params=[], result=STRING
        )))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        FaultInjector(runtime).crash_container(0.0, "a")
        runtime.run_for(3.0)
        client.call_recorded("solo.fn")
        runtime.run_for(1.0)
        assert len(client.errors) == 1
        assert any("solo.fn" in e for e in b.emergencies)
