"""Backpressure integration: a deliberately slow subscriber must be evicted
per the bounded-backlog spec while every healthy subscriber keeps receiving
reliable events exactly once — and the §3 invariants stay green throughout.

The slow subscriber is made slow the honest way: its link to the publisher
drops everything (loss=1.0) for a window, so ACKs stop, the publisher's
bounded reliable backlog to it overflows, and the overflow hook evicts the
peer from the subscription instead of letting queues grow without bound
(guaranteed delivery never silently drops — the subscription is the thing
that gives way). After the link heals, the evicted subscriber rediscovers
the provider and re-subscribes, demonstrating the recovery path.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import ProbeService, settle

from repro import SimRuntime
from repro.encoding.types import STRING
from repro.faults import FaultInjector, InvariantChecker
from repro.protocol.reliability import RetransmitPolicy


def build_domain(seed=11, **overrides):
    config = dict(
        retransmit=RetransmitPolicy(
            initial_rto=0.05, window=2, max_backlog=2, max_retries=10
        ),
        batching_enabled=True,
        batch_flush_interval=0.002,
        ack_coalesce_delay=0.002,
    )
    config.update(overrides)
    runtime = SimRuntime(seed=seed)
    pub = runtime.add_container("pub", **config)
    fast = runtime.add_container("fast", **config)
    slow = runtime.add_container("slow", **config)
    return runtime, pub, fast, slow


@pytest.mark.chaos
class TestSlowSubscriberEviction:
    def test_eviction_spares_the_healthy_subscriber(self):
        runtime, pub, fast, slow = build_domain()
        checker = InvariantChecker(runtime)

        publisher = ProbeService(
            "publisher",
            lambda s: setattr(
                s, "handle", s.ctx.provide_event("backpressure.evt", STRING)
            ),
        )
        fast_sub = ProbeService("fast-sub", lambda s: s.watch_event("backpressure.evt"))
        slow_sub = ProbeService("slow-sub", lambda s: s.watch_event("backpressure.evt"))
        pub.install_service(publisher)
        fast.install_service(fast_sub)
        slow.install_service(slow_sub)
        settle(runtime)
        assert publisher.handle.subscribers == {"fast", "slow"}

        # Black-hole the pub<->slow link: ACKs stop, the bounded backlog
        # (window 2 + backlog 2) overflows on the 5th unacked event.
        FaultInjector(runtime).degrade_link(
            0.0, "pub", "slow", loss=1.0, duration=2.0
        )
        runtime.run_for(0.05)
        expected = [f"evt-{i}" for i in range(30)]
        for value in expected:
            publisher.handle.raise_event(value)
            runtime.run_for(0.02)

        # The slow peer was evicted from the subscription, with the shed
        # and eviction surfaced as labeled counters.
        assert "slow" not in publisher.handle.subscribers
        assert pub.metrics.counter_value("slow_subscriber_evictions") == 1
        assert pub.metrics.counter_value("slow_peer_sheds", kind="EVENT") >= 1
        assert any(
            e.get("category") == "backpressure" for e in pub.recorder.dump()
        )

        # The healthy subscriber saw every event exactly once, in order.
        assert fast_sub.events_of("backpressure.evt") == expected
        # The slow one got at most the pre-fault prefix, never duplicates.
        got_slow = slow_sub.events_of("backpressure.evt")
        assert got_slow == expected[: len(got_slow)]

        # Heal; the evicted subscriber rediscovers the provider (it marked
        # pub dead during the black-hole, so pub's announce re-triggers
        # on_provider_up) and re-subscribes.
        runtime.run_for(4.0)
        assert "slow" in publisher.handle.subscribers
        publisher.handle.raise_event("post-heal")
        runtime.run_for(1.0)
        assert fast_sub.events_of("backpressure.evt")[-1] == "post-heal"
        assert slow_sub.events_of("backpressure.evt")[-1] == "post-heal"

        # §3 contracts held through shed, eviction, and recovery.
        assert checker.check() == []

    def test_no_eviction_without_backlog_bound(self):
        # Seed behavior: unbounded backlog, the slow peer is never evicted
        # (it is eventually declared dead by retry exhaustion/liveness —
        # the old, slower failure path).
        runtime, pub, fast, slow = build_domain(
            retransmit=RetransmitPolicy(initial_rto=0.05, window=2, max_retries=10),
        )
        publisher = ProbeService(
            "publisher",
            lambda s: setattr(
                s, "handle", s.ctx.provide_event("backpressure.evt", STRING)
            ),
        )
        slow_sub = ProbeService("slow-sub", lambda s: s.watch_event("backpressure.evt"))
        pub.install_service(publisher)
        slow.install_service(slow_sub)
        settle(runtime)
        FaultInjector(runtime).degrade_link(
            0.0, "pub", "slow", loss=1.0, duration=1.0
        )
        runtime.run_for(0.05)
        for i in range(10):
            publisher.handle.raise_event(f"evt-{i}")
            runtime.run_for(0.02)
        assert pub.metrics.counter_value("slow_subscriber_evictions") == 0


class TestVariableShedding:
    def test_drop_oldest_keeps_variables_fresh_under_pressure(self):
        # Variables are fresh-or-worthless: under a rate-limited uplink with
        # a bounded queue, old samples are shed but the subscriber still
        # converges to the latest value.
        runtime = SimRuntime(seed=7)
        pub = runtime.add_container(
            "pub",
            egress_rate_bps=40_000.0,
            egress_queue_limit=4,
            egress_overflow_policy="drop-oldest",
        )
        sub = runtime.add_container("sub")
        from repro.encoding.types import FLOAT64

        publisher = ProbeService(
            "publisher",
            lambda s: setattr(
                s, "handle", s.ctx.provide_variable("pressure.var", FLOAT64, period=0.1)
            ),
        )
        watcher = ProbeService("watcher", lambda s: s.watch_variable("pressure.var"))
        pub.install_service(publisher)
        sub.install_service(watcher)
        settle(runtime)
        for i in range(200):
            publisher.handle.publish(float(i))
        runtime.run_for(3.0)
        values = watcher.values_of("pressure.var")
        assert pub.egress.dropped_frames > 0
        assert pub.metrics.counter_value(
            "egress_overflow", band="2", policy="drop-oldest", kind="VAR_SAMPLE"
        ) == pub.egress.dropped_frames
        # Shedding kept the stream fresh: drop-oldest preserved the newest
        # samples (the bounded queue drained 196..199 in order; the
        # pre-queue burst scrambles only under link jitter).
        assert values[-4:] == [196.0, 197.0, 198.0, 199.0]
