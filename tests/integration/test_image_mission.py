"""Experiment E1: the §5 image-processing scenario end to end.

Six services across three nodes exercise all four primitives: GPS publishes
the position variable; Mission Control initializes Camera/Storage/Video via
remote invocation, raises photo-request events at photo waypoints; photos
travel by multicast file transfer to Storage and Video Processing; detection
events flow back to MC and the Ground Station.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import SimRuntime
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.imaging import decode_pgm
from repro.services import (
    CameraService,
    GpsService,
    GroundStationService,
    MissionControlService,
    StorageService,
    VideoProcessingService,
)
from repro.services.names import photo_resource


@pytest.fixture
def mission_setup():
    runtime = SimRuntime(seed=7)
    plan = survey_plan(
        GeoPoint(41.275, 1.985), rows=1, row_length_m=600, photos_per_row=2
    )
    fcs = runtime.add_container("fcs")
    payload = runtime.add_container("payload")
    ground = runtime.add_container("ground")

    gps = GpsService(KinematicUav(plan))
    mc = MissionControlService(plan)
    camera = CameraService(features_at={1: 4, 2: 0})  # wp1 rich, wp2 empty
    storage = StorageService()
    video = VideoProcessingService()
    gs = GroundStationService()

    fcs.install_service(gps)
    fcs.install_service(mc)
    payload.install_service(camera)
    payload.install_service(storage)
    payload.install_service(video)
    ground.install_service(gs)
    runtime.start()
    return runtime, plan, mc, camera, storage, video, gs


class TestImageMission:
    def test_mission_completes(self, mission_setup):
        runtime, plan, mc, *_ = mission_setup
        assert runtime.run_until(lambda: mc.complete, timeout=180.0)

    def test_all_four_primitives_exercised(self, mission_setup):
        runtime, plan, mc, camera, storage, video, gs = mission_setup
        assert runtime.run_until(lambda: mc.complete, timeout=180.0)
        runtime.run_for(5.0)
        # Variable: GS has seen positions and status.
        assert gs.positions_received > 50
        assert gs.last_status is not None and gs.last_status["complete"]
        # Remote invocation: camera was configured, storage told to store.
        assert camera.prefix == "photo"
        # Events: photo requests arrived, photo-taken and complete came back.
        assert camera.photos_taken == 2
        assert gs.mission_completed
        # File transfer: both photos stored on the payload node.
        expected = [photo_resource("photo", i) for i in plan.photo_waypoints]
        assert storage.stored_names() == sorted(expected)

    def test_detection_only_for_feature_rich_photo(self, mission_setup):
        runtime, plan, mc, camera, storage, video, gs = mission_setup
        assert runtime.run_until(lambda: mc.complete, timeout=180.0)
        runtime.run_for(5.0)
        # Waypoint 1 had 4 embedded features; waypoint 2 had none.
        assert video.frames_processed == 2
        assert video.detections == 1
        assert len(mc.detections) == 1
        assert mc.detections[0]["resource"] == photo_resource("photo", 1)
        assert len(gs.detection_notifications) == 1

    def test_stored_photo_is_a_valid_image(self, mission_setup):
        runtime, plan, mc, camera, storage, video, gs = mission_setup
        assert runtime.run_until(lambda: mc.complete, timeout=180.0)
        runtime.run_for(5.0)
        image = decode_pgm(storage.object(photo_resource("photo", 1)))
        assert image.shape == (128, 128)

    def test_position_log_recorded(self, mission_setup):
        runtime, plan, mc, camera, storage, video, gs = mission_setup
        assert runtime.run_until(lambda: mc.complete, timeout=180.0)
        runtime.run_for(2.0)
        log = storage.variable_log("gps.position")
        assert len(log) > 50
        assert {"t", "value"} <= set(log[0])

    def test_no_emergencies_in_nominal_run(self, mission_setup):
        runtime, plan, mc, camera, storage, video, gs = mission_setup
        assert runtime.run_until(lambda: mc.complete, timeout=180.0)
        for container in runtime.containers.values():
            assert container.emergencies == []

    def test_deterministic_replay(self):
        def run():
            runtime = SimRuntime(seed=42)
            plan = survey_plan(
                GeoPoint(41.275, 1.985), rows=1, row_length_m=400, photos_per_row=1
            )
            fcs = runtime.add_container("fcs")
            payload = runtime.add_container("payload")
            mc = MissionControlService(plan)
            fcs.install_service(GpsService(KinematicUav(plan)))
            fcs.install_service(mc)
            payload.install_service(CameraService())
            storage = StorageService()
            payload.install_service(storage)
            payload.install_service(VideoProcessingService())
            runtime.start()
            runtime.run_until(lambda: mc.complete, timeout=120.0)
            runtime.run_for(3.0)
            return (
                runtime.sim.now(),
                runtime.network.stats.snapshot(),
                storage.stored_names(),
            )

        assert run() == run()
