"""End-to-end causal tracing across three containers.

The acceptance path of the PR: one RPC from container ``a`` executes on
``b``; the served function raises a guaranteed event subscribed on ``a``
and ``c``. With tracing enabled the middleware must reconstruct the whole
causal chain as a single cross-container span tree —

    rpc.call (a)
      └─ rpc.server (b)
           └─ event.publish (b)
                ├─ event.deliver (a)
                └─ event.deliver (c)

— with virtual-time latencies per hop, because the trace context rides the
wire in the payload tail and the container scheduler carries the ambient
context across submits.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime
from repro.encoding.types import FLOAT64, STRING


def provider(s):
    """Installed on b: an RPC whose execution raises a guaranteed event."""
    s.note = s.ctx.provide_event("trace.note", STRING)

    def double(x):
        s.note.raise_event("doubled")
        return x * 2.0

    s.ctx.provide_function("trace.double", double, params=[FLOAT64], result=FLOAT64)


def listener(s):
    s.watch_event("trace.note")


def client(s):
    listener(s)
    # One call after discovery settles; the timer callback runs with no
    # ambient context, so the rpc.call span is a trace root.
    s.ctx.schedule(2.0, lambda: s.call_recorded("trace.double", (21.0,), timeout=5.0))


def fly(seed=11, tracing=True):
    runtime = SimRuntime(seed=seed)
    for cid in ("a", "b", "c"):
        runtime.add_container(cid, tracing_enabled=tracing)
    caller = ProbeService("client", client)
    runtime.container("a").install_service(caller)
    runtime.container("b").install_service(ProbeService("provider", provider))
    watcher = ProbeService("listener", listener)
    runtime.container("c").install_service(watcher)
    runtime.start()
    runtime.run_for(6.0)
    return runtime, caller, watcher


class TestCrossContainerSpanTree:
    def test_rpc_and_event_fanout_yield_one_trace(self):
        runtime, caller, watcher = fly()
        # The traffic itself worked.
        assert caller.results == [42.0]
        assert caller.events_of("trace.note") == ["doubled"]
        assert watcher.events_of("trace.note") == ["doubled"]

        spans = runtime.trace_spans()
        by_kind = {}
        for span in spans:
            by_kind.setdefault(span.kind, []).append(span)
        (call,) = by_kind["rpc.call"]
        (server,) = by_kind["rpc.server"]
        (publish,) = by_kind["event.publish"]
        delivers = by_kind["event.deliver"]

        # Placement: each operation was recorded by the container it ran on.
        assert call.container == "a"
        assert server.container == "b"
        assert publish.container == "b"
        assert {d.container for d in delivers} == {"a", "c"}

        # One trace id spans all five operations, across three containers.
        assert {s.trace_id for s in [call, server, publish, *delivers]} == {
            call.trace_id
        }

        # Parentage: the full causal chain survived two wire crossings.
        assert call.parent_id == ""
        assert server.parent_id == call.span_id
        assert publish.parent_id == server.span_id
        for deliver in delivers:
            assert deliver.parent_id == publish.span_id

        # Per-hop latency in virtual time: causes precede effects, and
        # remote hops take strictly positive wire time.
        assert server.start > call.start
        assert publish.start >= server.start
        for deliver in delivers:
            assert deliver.start > publish.start
        assert all(s.finished for s in [call, server, publish, *delivers])
        # The client span closes only when the response arrives back.
        assert call.end > server.end
        assert call.duration > 0

    def test_span_tree_reconstruction(self):
        runtime, _, _ = fly()
        roots = runtime.trace_tree()
        assert len(roots) == 1
        root = roots[0]
        assert root["kind"] == "rpc.call"
        assert root["name"] == "rpc:trace.double"
        (server,) = root["children"]
        assert server["kind"] == "rpc.server"
        assert server["container"] == "b"
        (publish,) = server["children"]
        assert publish["kind"] == "event.publish"
        assert sorted(c["container"] for c in publish["children"]) == ["a", "c"]
        assert all(c["kind"] == "event.deliver" for c in publish["children"])

    def test_metrics_snapshot_reflects_the_flight(self):
        runtime, _, _ = fly()
        snap = runtime.metrics_snapshot()
        assert snap["rpc_calls{container=a}"] == 1
        assert snap["rpc_completed{container=a}"] == 1
        assert snap["rpc_served{container=b}"] == 1
        assert snap["event_publishes{container=b}"] == 1
        assert snap["event_deliveries{container=a}"] == 1
        assert snap["event_deliveries{container=c}"] == 1
        # Network gauges ride along in the same snapshot.
        assert snap["net.emissions_packets"] > 0

    def test_flight_recorder_saw_the_wire_traffic(self):
        runtime, _, _ = fly()
        dumps = runtime.flight_dumps()
        assert set(dumps) == {"a", "b", "c"}
        b_rx = [e for e in dumps["b"] if e["category"] == "rx"]
        assert any(e["kind"] == "RPC_REQUEST" for e in b_rx)
        for entries in dumps.values():
            assert all(e["t"] >= 0.0 for e in entries)

    def test_tracing_disabled_by_default_records_nothing(self):
        runtime, caller, watcher = fly(tracing=False)
        assert caller.results == [42.0]
        assert watcher.events_of("trace.note") == ["doubled"]
        assert runtime.trace_spans() == []
        for container in runtime.containers.values():
            assert container.tracer.enabled is False
