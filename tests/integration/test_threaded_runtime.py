"""The same middleware over real UDP sockets and wall-clock threads.

These tests use generous timeouts and tiny workloads: they prove the PEPt
Transport swap works, not performance (that's the benchmarks' job).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import ThreadedRuntime
from repro.encoding.types import INT32, STRING, StructType


@pytest.fixture
def runtime():
    rt = ThreadedRuntime()
    yield rt
    rt.stop()


FAST = dict(
    announce_interval=0.2,
    heartbeat_interval=0.05,
    liveness_timeout=0.5,
    housekeeping_interval=0.1,
)


class TestThreadedRuntime:
    def test_variable_over_udp(self, runtime):
        schema = StructType("S", [("n", INT32)])
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", schema)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        assert runtime.run_until(
            lambda: bool(b.directory.providers_of_variable("test.var")), timeout=5.0
        )
        runtime.on_reactor(lambda: pub.handle.publish({"n": 99}))
        assert runtime.run_until(lambda: len(sub.samples) >= 1, timeout=5.0)
        assert sub.values_of("test.var") == [{"n": 99}]

    def test_event_over_udp(self, runtime):
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        assert runtime.run_until(
            lambda: "b" in pub.handle.subscribers, timeout=5.0
        )
        runtime.on_reactor(lambda: pub.handle.raise_event("over the wire"))
        assert runtime.run_until(lambda: len(sub.events) >= 1, timeout=5.0)
        assert sub.events_of("test.evt") == ["over the wire"]

    def test_rpc_over_udp(self, runtime):
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        a.install_service(ProbeService("server", lambda s: s.ctx.provide_function(
            "math.add", lambda x, y: x + y, params=[INT32, INT32], result=INT32
        )))
        client = ProbeService("client")
        b.install_service(client)
        runtime.start()
        assert runtime.run_until(
            lambda: bool(b.directory.providers_of_function("math.add")), timeout=5.0
        )
        runtime.on_reactor(lambda: client.call_recorded("math.add", (20, 22)))
        assert runtime.run_until(lambda: len(client.results) >= 1, timeout=5.0)
        assert client.results == [42]
        assert client.errors == []

    def test_file_transfer_over_udp(self, runtime):
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.x"))
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        assert runtime.run_until(
            lambda: b.directory.record("a") is not None, timeout=5.0
        )
        data = bytes(range(256)) * 40  # ~10 KiB, several chunks
        runtime.on_reactor(lambda: pub.ctx.publish_file("res.x", data))
        assert runtime.run_until(lambda: len(sub.files) >= 1, timeout=10.0)
        assert sub.files[0][1] == data

    def test_reactor_isolates_errors(self, runtime):
        runtime.reactor.post(lambda: 1 / 0)
        runtime.run_until(lambda: True, timeout=0.2)
        assert any(isinstance(e, ZeroDivisionError) for e in runtime.reactor.errors)
