"""The middleware over the asyncio batch-I/O data plane.

Two things are proven here: (1) the same primitives work unchanged over
:class:`AsyncRuntime` — the PEPt transport swap holds for the third
substrate; (2) the async and threaded wall-clock runtimes are
*equivalent*: the same mission delivers byte-identical application frame
sequences on both (modulo timing artifacts like retransmissions), with no
lock-order inversions under the sanitizer.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import AsyncRuntime, ThreadedRuntime
from repro.encoding.types import INT32, STRING, StructType
from repro.primitives import wire
from repro.protocol.frames import FrameFlags, MessageKind


@pytest.fixture
def runtime():
    rt = AsyncRuntime()
    yield rt
    rt.stop()


FAST = dict(
    announce_interval=0.2,
    heartbeat_interval=0.05,
    liveness_timeout=0.5,
    housekeeping_interval=0.1,
)


class TestAsyncRuntime:
    def test_variable_over_async_udp(self, runtime):
        schema = StructType("S", [("n", INT32)])
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", schema)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        assert runtime.run_until(
            lambda: bool(b.directory.providers_of_variable("test.var")), timeout=5.0
        )
        runtime.on_reactor(lambda: pub.handle.publish({"n": 99}))
        assert runtime.run_until(lambda: len(sub.samples) >= 1, timeout=5.0)
        assert sub.values_of("test.var") == [{"n": 99}]

    def test_event_over_async_udp(self, runtime):
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        assert runtime.run_until(
            lambda: "b" in pub.handle.subscribers, timeout=5.0
        )
        runtime.on_reactor(lambda: pub.handle.raise_event("over the async wire"))
        assert runtime.run_until(lambda: len(sub.events) >= 1, timeout=5.0)
        assert sub.events_of("test.evt") == ["over the async wire"]

    def test_rpc_over_async_udp(self, runtime):
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        a.install_service(ProbeService("server", lambda s: s.ctx.provide_function(
            "math.add", lambda x, y: x + y, params=[INT32, INT32], result=INT32
        )))
        client = ProbeService("client")
        b.install_service(client)
        runtime.start()
        assert runtime.run_until(
            lambda: bool(b.directory.providers_of_function("math.add")), timeout=5.0
        )
        runtime.on_reactor(lambda: client.call_recorded("math.add", (20, 22)))
        assert runtime.run_until(lambda: len(client.results) >= 1, timeout=5.0)
        assert client.results == [42]
        assert client.errors == []

    def test_file_transfer_over_async_udp(self, runtime):
        a = runtime.add_container("a", **FAST)
        b = runtime.add_container("b", **FAST)
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.x"))
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        assert runtime.run_until(
            lambda: b.directory.record("a") is not None, timeout=5.0
        )
        data = bytes(range(256)) * 40  # ~10 KiB, several chunks
        runtime.on_reactor(lambda: pub.ctx.publish_file("res.x", data))
        assert runtime.run_until(lambda: len(sub.files) >= 1, timeout=10.0)
        assert sub.files[0][1] == data

    def test_batched_fanout_under_async(self):
        """The full async data plane: batching on, many events, several
        subscribers — delivery is complete and in order, and the transport
        actually coalesced wire datagrams below the event count."""
        runtime = AsyncRuntime()
        try:
            pub_c = runtime.add_container("pub", batching_enabled=True, **FAST)
            pub = ProbeService("pub", lambda s: setattr(
                s, "handle", s.ctx.provide_event("burst.evt", INT32)
            ))
            pub_c.install_service(pub)
            subs = []
            for i in range(3):
                c = runtime.add_container(f"sub{i}", batching_enabled=True, **FAST)
                probe = ProbeService("probe", lambda s: s.watch_event("burst.evt"))
                c.install_service(probe)
                subs.append(probe)
            runtime.start()
            assert runtime.run_until(
                lambda: len(pub.handle.subscribers) == 3, timeout=5.0
            )
            count = 200
            runtime.on_reactor(
                lambda: [pub.handle.raise_event(i) for i in range(count)]
            )
            assert runtime.run_until(
                lambda: all(len(s.events) >= count for s in subs), timeout=10.0
            )
            for probe in subs:
                assert probe.events_of("burst.evt") == list(range(count))
            sent = runtime.container("pub")._transport._raw.sent_datagrams
            assert sent < count * 3  # batching coalesced the fan-out
        finally:
            runtime.stop()

    def test_loop_isolates_errors(self, runtime):
        runtime.reactor.post(lambda: 1 / 0)
        runtime.run_until(lambda: True, timeout=0.2)
        runtime.on_reactor(lambda: None)  # fence
        assert any(isinstance(e, ZeroDivisionError) for e in runtime.reactor.errors)

    def test_late_container_starts_immediately(self, runtime):
        runtime.add_container("a", **FAST)
        runtime.start()
        late = runtime.add_container("late", **FAST)
        assert late.running


_TAP_SCHEMAS = {
    MessageKind.EVENT: wire.EVENT_MESSAGE_SCHEMA,
    MessageKind.VAR_SAMPLE: wire.VAR_SAMPLE_SCHEMA,
}


def _tap_frames(container, log):
    """Record every application frame a container's dispatch sees, first
    delivery only. The two timing artifacts the wire legitimately carries —
    retransmission flags and the publisher's wall-clock timestamp — are
    normalized out; every other bit must match across runtimes."""
    seen = set()
    orig = container._on_frame

    def wrapped(frame, source):
        schema = _TAP_SCHEMAS.get(frame.kind)
        if schema is not None:
            key = (frame.source, frame.channel, frame.seq, frame.kind)
            if key not in seen:
                seen.add(key)
                doc = wire.decode(schema, bytes(frame.payload))
                doc["timestamp"] = 0.0  # publisher wall clock = timing
                log.append((
                    frame.source,
                    frame.kind,
                    frame.channel,
                    frame.seq,
                    int(frame.flags) & ~int(FrameFlags.RETRANSMIT),
                    wire.encode(schema, doc),
                ))
        orig(frame, source)

    container._on_frame = wrapped


def _run_mission(runtime_cls, **extra_config):
    """One fixed mission: 30 reliable events + 10 variable samples from
    'a' to 'b'; returns the exact application frames 'b' dispatched."""
    runtime = runtime_cls(lock_sanitizer=True)
    frames = []
    try:
        schema = StructType("S", [("n", INT32)])
        a = runtime.add_container("a", **FAST, **extra_config)
        b = runtime.add_container("b", **FAST, **extra_config)
        _tap_frames(b, frames)
        pub = ProbeService("pub", lambda s: (
            setattr(s, "evt", s.ctx.provide_event("m.evt", INT32)),
            setattr(s, "var", s.ctx.provide_variable("m.var", schema)),
        ))
        sub = ProbeService("sub", lambda s: (
            s.watch_event("m.evt"), s.watch_variable("m.var"),
        ))
        a.install_service(pub)
        b.install_service(sub)
        runtime.start()
        assert runtime.run_until(
            lambda: "b" in pub.evt.subscribers
            and bool(b.directory.providers_of_variable("m.var")),
            timeout=5.0,
        )

        def emit():
            for i in range(30):
                pub.evt.raise_event(i)
            for i in range(10):
                pub.var.publish({"n": i})

        runtime.on_reactor(emit)
        assert runtime.run_until(
            lambda: len(sub.events) >= 30 and len(sub.samples) >= 10, timeout=10.0
        )
        assert [v for _, v, _ in sub.events] == list(range(30))
        inversions = runtime.lock_inversions()
        assert inversions == [], f"lock-order inversions: {inversions}"
        return list(frames)
    finally:
        runtime.stop()


class TestThreadedAsyncEquivalence:
    def test_differential_frame_delivery(self):
        """The same mission must deliver byte-identical application frame
        sequences on both wall-clock runtimes — the serialization-domain
        contract makes the substrates indistinguishable above Transport."""
        threaded = _run_mission(ThreadedRuntime)
        async_ = _run_mission(AsyncRuntime)
        assert threaded == async_

    def test_differential_with_batching(self):
        """Batching + the zero-copy scatter path on the async side must
        not change a single delivered byte."""
        plain = _run_mission(ThreadedRuntime)
        batched = _run_mission(AsyncRuntime, batching_enabled=True)
        assert plain == batched
