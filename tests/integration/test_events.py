"""Integration tests for the Event primitive (§4.2): guaranteed delivery."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro.encoding.types import STRING
from repro.simnet.models import LinkModel


class TestBasicEvents:
    def test_event_with_payload(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.raise_event("alarm: engine hot")
        runtime.run_for(0.5)
        assert sub.events_of("test.evt") == ["alarm: engine hot"]

    def test_pure_signal_event(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.signal")
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.signal"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.raise_event()
        runtime.run_for(0.5)
        assert sub.events_of("test.signal") == [None]

    def test_all_subscribers_receive(self):
        runtime, a, b = two_containers()
        c = runtime.add_container("c")
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub_b = ProbeService("sub-b", lambda s: s.watch_event("test.evt"))
        sub_c = ProbeService("sub-c", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub_b)
        c.install_service(sub_c)
        settle(runtime)
        pub.handle.raise_event("x")
        runtime.run_for(0.5)
        assert sub_b.events_of("test.evt") == ["x"]
        assert sub_c.events_of("test.evt") == ["x"]

    def test_local_subscriber(self):
        runtime, a, _ = two_containers()

        def setup(s):
            s.handle = s.ctx.provide_event("test.evt", STRING)
            s.watch_event("test.evt")

        svc = ProbeService("both", setup)
        a.install_service(svc)
        settle(runtime)
        svc.handle.raise_event("local")
        runtime.run_for(0.1)
        assert svc.events_of("test.evt") == ["local"]

    def test_subscriber_before_provider_announce(self):
        # Subscribe first, then the provider appears: the subscription must
        # be issued when the announce arrives.
        runtime, a, b = two_containers()
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        b.install_service(sub)
        settle(runtime)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        a.install_service(pub)
        runtime.run_for(1.5)
        pub.handle.raise_event("late provider")
        runtime.run_for(0.5)
        assert sub.events_of("test.evt") == ["late provider"]


class TestGuaranteedDelivery:
    @pytest.mark.parametrize("loss", [0.05, 0.15, 0.3])
    def test_every_event_delivered_under_loss(self, loss):
        from repro.protocol.reliability import RetransmitPolicy

        link = LinkModel(latency=0.002, jitter=0.0005, loss=loss, bandwidth_bps=0.0)
        # Tolerant failure detection: at 30% loss a tight liveness timeout
        # would flap peers dead and reset streams mid-test.
        runtime, a, b = two_containers(
            seed=13,
            link=link,
            liveness_timeout=5.0,
            retransmit=RetransmitPolicy(initial_rto=0.05, max_retries=25),
        )
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime, 8.0)
        sent = [f"evt-{i}" for i in range(50)]
        for message in sent:
            pub.handle.raise_event(message)
            runtime.run_for(0.02)
        runtime.run_for(20.0)  # allow retransmissions to finish
        # Guaranteed AND ordered delivery despite loss.
        assert sub.events_of("test.evt") == sent

    def test_events_ordered_per_publisher(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        for i in range(20):
            pub.handle.raise_event(f"e{i}")
        runtime.run_for(2.0)
        assert sub.events_of("test.evt") == [f"e{i}" for i in range(20)]


class TestTcpMapping:
    def test_events_over_tcp_like_stream(self):
        runtime, a, b = two_containers(event_mapping="tcp")
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        for i in range(5):
            pub.handle.raise_event(f"tcp-{i}")
        runtime.run_for(2.0)
        assert sub.events_of("test.evt") == [f"tcp-{i}" for i in range(5)]

    def test_tcp_mapping_survives_loss(self):
        link = LinkModel(latency=0.002, jitter=0.0, loss=0.3, bandwidth_bps=0.0)
        runtime, a, b = two_containers(seed=3, link=link, event_mapping="tcp")
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime, 8.0)
        sent = [f"t{i}" for i in range(20)]
        for message in sent:
            pub.handle.raise_event(message)
            runtime.run_for(0.05)
        runtime.run_for(20.0)
        assert sub.events_of("test.evt") == sent


class TestUnsubscribe:
    def test_unsubscribed_service_stops_receiving(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: setattr(
            s, "subscription", s.watch_event("test.evt")
        ))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.raise_event("one")
        runtime.run_for(0.5)
        sub.subscription.cancel()
        runtime.run_for(0.5)
        pub.handle.raise_event("two")
        runtime.run_for(0.5)
        assert sub.events_of("test.evt") == ["one"]

    def test_dead_subscriber_removed_from_publication(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("test.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("test.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        assert "b" in pub.handle.subscribers
        b.stop()  # clean shutdown sends BYE
        runtime.run_for(1.0)
        assert "b" not in pub.handle.subscribers
