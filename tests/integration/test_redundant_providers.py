"""Redundant providers of the *same* name across primitives (§3, §4.3)."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle

from repro import SimRuntime
from repro.encoding.types import FLOAT64, STRING, StructType
from repro.faults import FaultInjector

SCHEMA = StructType("Fix", [("x", FLOAT64), ("t", FLOAT64)])


def make_redundant_variable(seed=22):
    """Two sensors on two nodes publish the same variable name."""
    runtime = SimRuntime(seed=seed)
    s1 = runtime.add_container("s1")
    s2 = runtime.add_container("s2")
    consumer_node = runtime.add_container("consumer")

    def make_sensor(offset):
        def setup(s):
            s.handle = s.ctx.provide_variable("red.fix", SCHEMA, validity=1.0,
                                              period=0.2)
            s.ctx.every(0.2, lambda: s.handle.publish(
                {"x": offset, "t": s.ctx.now()}
            ))
        return setup

    sensor1 = ProbeService("sensor1", make_sensor(1.0))
    sensor2 = ProbeService("sensor2", make_sensor(2.0))
    s1.install_service(sensor1)
    s2.install_service(sensor2)
    consumer = ProbeService("consumer", lambda s: setattr(
        s, "subscription", s.watch_variable("red.fix")
    ))
    consumer_node.install_service(consumer)
    settle(runtime)
    return runtime, consumer


class TestRedundantVariables:
    def test_samples_merge_with_monotone_timestamps(self):
        runtime, consumer = make_redundant_variable()
        runtime.run_for(5.0)
        samples = consumer.values_of("red.fix")
        # Both sensors contribute...
        assert {v["x"] for v in samples} == {1.0, 2.0}
        # ...and the subscriber never goes backwards in publisher time.
        times = [t for _, v, t in consumer.samples]
        assert times == sorted(times)

    def test_one_sensor_dies_data_keeps_flowing(self):
        runtime, consumer = make_redundant_variable()
        runtime.run_for(3.0)
        FaultInjector(runtime).crash_container(0.0, "s1")
        runtime.run_for(3.0)
        before = len(consumer.samples)
        runtime.run_for(3.0)
        after = len(consumer.samples)
        # Still ~5 Hz from the survivor.
        assert after - before > 10
        assert {v["x"] for _, v, _ in consumer.samples[-5:]} == {2.0}
        # No timeout warning: freshness was maintained throughout.
        assert consumer.timeouts == []


class TestRedundantEvents:
    def test_subscriber_hears_every_provider(self):
        runtime = SimRuntime(seed=23)
        p1 = runtime.add_container("p1")
        p2 = runtime.add_container("p2")
        consumer_node = runtime.add_container("consumer")

        def provider(tag):
            def setup(s):
                s.handle = s.ctx.provide_event("red.alarm", STRING)
            return setup

        prov1 = ProbeService("prov1", provider("one"))
        prov2 = ProbeService("prov2", provider("two"))
        p1.install_service(prov1)
        p2.install_service(prov2)
        consumer = ProbeService("consumer", lambda s: s.watch_event("red.alarm"))
        consumer_node.install_service(consumer)
        settle(runtime)
        prov1.handle.raise_event("from p1")
        prov2.handle.raise_event("from p2")
        runtime.run_for(1.0)
        assert sorted(consumer.events_of("red.alarm")) == ["from p1", "from p2"]

    def test_late_second_provider_gets_subscribed(self):
        runtime = SimRuntime(seed=24)
        p1 = runtime.add_container("p1")
        consumer_node = runtime.add_container("consumer")
        prov1 = ProbeService("prov1", lambda s: setattr(
            s, "handle", s.ctx.provide_event("red.alarm", STRING)
        ))
        p1.install_service(prov1)
        consumer = ProbeService("consumer", lambda s: s.watch_event("red.alarm"))
        consumer_node.install_service(consumer)
        settle(runtime)
        # A second provider appears mid-mission.
        p2 = runtime.add_container("p2")
        prov2 = ProbeService("prov2", lambda s: setattr(
            s, "handle", s.ctx.provide_event("red.alarm", STRING)
        ))
        p2.install_service(prov2)
        runtime.run_for(2.0)
        prov2.handle.raise_event("late provider works")
        runtime.run_for(1.0)
        assert "late provider works" in consumer.events_of("red.alarm")
