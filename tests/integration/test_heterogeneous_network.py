"""The paper's physical topology: fast on-board LAN + slow lossy radio to
the ground segment. Checks the middleware behaves sensibly across both."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime
from repro.encoding.types import STRING
from repro.simnet.models import RADIO_LINK, LinkModel


def make_topology(seed=15, **extra_config):
    """fcs + payload on the airframe LAN; ground behind a radio link."""
    lan = LinkModel(latency=0.0005, jitter=0.0001, loss=0.0,
                    bandwidth_bps=100_000_000.0)
    runtime = SimRuntime(seed=seed, default_link=lan)
    kw = dict(liveness_timeout=3.0, heartbeat_interval=0.5, **extra_config)
    fcs = runtime.add_container("fcs", **kw)
    payload = runtime.add_container("payload", **kw)
    ground = runtime.add_container("ground", **kw)
    for airborne in ("fcs", "payload"):
        runtime.network.set_link(airborne, "ground", RADIO_LINK)
    return runtime, fcs, payload, ground


class TestHeterogeneousTopology:
    def test_onboard_events_fast_ground_events_slower(self):
        runtime, fcs, payload, ground = make_topology()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("het.evt", STRING)
        ))
        onboard = []
        remote = []
        sub_payload = ProbeService("sub-p", lambda s: s.ctx.subscribe_event(
            "het.evt", lambda v, t: onboard.append(s.ctx.now() - t)
        ))
        sub_ground = ProbeService("sub-g", lambda s: s.ctx.subscribe_event(
            "het.evt", lambda v, t: remote.append(s.ctx.now() - t)
        ))
        fcs.install_service(pub)
        payload.install_service(sub_payload)
        ground.install_service(sub_ground)
        runtime.start()
        runtime.run_for(4.0)
        for i in range(30):
            pub.handle.raise_event(f"e{i}")
            runtime.run_for(0.1)
        runtime.run_for(10.0)
        # Guaranteed delivery on both paths, lossy radio included.
        assert len(onboard) == 30
        assert len(remote) == 30
        # The radio hop dominates the ground latency.
        onboard_mean = sum(onboard) / len(onboard)
        remote_mean = sum(remote) / len(remote)
        assert onboard_mean < 0.005
        assert remote_mean > onboard_mean * 5

    def test_radio_bandwidth_limits_unicast_throughput(self):
        # Unicast transfer mode, so each copy serializes at its own link's
        # rate (multicast would share the on-board medium).
        runtime, fcs, payload, ground = make_topology(file_multicast=False)
        runtime.start()
        runtime.run_for(2.0)
        # 50 KiB over the 1 Mbit/s radio as a file transfer takes ~0.4 s+;
        # the same transfer to the on-board peer is far faster.
        data = bytes(1024) * 50
        times = {}
        for target_name, container in (("payload", payload), ("ground", ground)):
            done = {}
            container.files.subscribe(
                f"het.file.{target_name}",
                on_complete=lambda d, r, t=target_name: done.setdefault("t", runtime.sim.now()),
                service="probe",
            )
            start = runtime.sim.now()
            fcs.files.publish(f"het.file.{target_name}", data, service="probe")
            assert runtime.run_until(lambda: "t" in done, timeout=120.0)
            times[target_name] = done["t"] - start
        assert times["payload"] < times["ground"]
        # ~400 kbit payload over a 1 Mbit/s link: at least 0.3 s.
        assert times["ground"] > 0.3

    def test_mission_works_with_ground_behind_radio(self):
        from repro.flight import GeoPoint, KinematicUav, survey_plan
        from repro.services import (
            CameraService,
            GpsService,
            GroundStationService,
            MissionControlService,
            StorageService,
            VideoProcessingService,
        )

        runtime, fcs, payload, ground = make_topology()
        plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, row_length_m=500,
                           photos_per_row=1)
        mc = MissionControlService(plan)
        gs = GroundStationService()
        fcs.install_service(GpsService(KinematicUav(plan)))
        fcs.install_service(mc)
        payload.install_service(CameraService())
        payload.install_service(StorageService())
        payload.install_service(VideoProcessingService())
        ground.install_service(gs)
        runtime.start()
        assert runtime.run_until(lambda: mc.complete, timeout=300.0)
        runtime.run_for(5.0)
        # The GS still observed the mission despite the lossy radio:
        # variables best-effort (most arrive), events guaranteed.
        assert gs.positions_received > 30
        assert gs.mission_completed
