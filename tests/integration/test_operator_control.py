"""Operator control of the mission via remote invocation (§5)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.services import (
    CameraService,
    GpsService,
    MissionControlService,
    StorageService,
    VideoProcessingService,
)
from repro.services.mission import (
    FN_MISSION_ABORT,
    FN_MISSION_HOLD,
    FN_MISSION_RESUME,
)


@pytest.fixture
def setup():
    runtime = SimRuntime(seed=4)
    plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, row_length_m=600,
                       photos_per_row=1)
    fcs = runtime.add_container("fcs")
    payload = runtime.add_container("payload")
    ground = runtime.add_container("ground")
    mc = MissionControlService(plan)
    fcs.install_service(GpsService(KinematicUav(plan)))
    fcs.install_service(mc)
    payload.install_service(CameraService())
    payload.install_service(StorageService())
    payload.install_service(VideoProcessingService())
    operator = ProbeService("operator")
    ground.install_service(operator)
    runtime.start()
    runtime.run_for(3.0)
    return runtime, mc, operator


class TestOperatorControl:
    def test_hold_freezes_progress(self, setup):
        runtime, mc, operator = setup
        operator.call_recorded(FN_MISSION_HOLD)
        runtime.run_for(1.0)
        assert operator.results == [True]
        frozen_at = mc.next_waypoint
        runtime.run_for(30.0)  # the UAV keeps flying; MC ignores it
        assert mc.next_waypoint == frozen_at
        assert not mc.complete
        assert mc.holding

    def test_resume_after_hold(self, setup):
        runtime, mc, operator = setup
        operator.call_recorded(FN_MISSION_HOLD)
        runtime.run_for(5.0)
        operator.call_recorded(FN_MISSION_RESUME)
        runtime.run_for(1.0)
        assert not mc.holding
        # With the capture look-ahead the mission can still finish even
        # though some waypoints flew by during the hold.
        assert runtime.run_until(lambda: mc.complete or mc.next_waypoint > 0,
                                 timeout=120.0)

    def test_resume_without_hold_refused(self, setup):
        runtime, mc, operator = setup
        operator.call_recorded(FN_MISSION_RESUME)
        runtime.run_for(1.0)
        assert operator.results == [False]

    def test_abort_terminates_and_notifies(self, setup):
        runtime, mc, operator = setup
        listener = ProbeService("listener", lambda s: s.watch_event("mission.complete"))
        runtime.container("ground").install_service(listener)
        runtime.run_for(2.0)
        operator.call_recorded(FN_MISSION_ABORT)
        runtime.run_for(2.0)
        assert operator.results == [True]
        assert mc.aborted and mc.complete
        assert len(listener.events) == 1

    def test_abort_is_final(self, setup):
        runtime, mc, operator = setup
        operator.call_recorded(FN_MISSION_ABORT)
        runtime.run_for(1.0)
        operator.call_recorded(FN_MISSION_HOLD)
        operator.call_recorded(FN_MISSION_ABORT)
        runtime.run_for(1.0)
        assert operator.results == [True, False, False]

    def test_status_variable_reflects_hold(self, setup):
        runtime, mc, operator = setup
        watcher = ProbeService("watcher", lambda s: s.watch_variable("mission.status"))
        runtime.container("ground").install_service(watcher)
        runtime.run_for(2.0)
        operator.call_recorded(FN_MISSION_HOLD)
        runtime.run_for(3.0)
        assert watcher.values_of("mission.status")[-1]["holding"] is True
