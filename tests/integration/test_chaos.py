"""Chaos soak: a seeded randomized fault campaign against a supervised
domain, validated by the invariant checker.

The acceptance shape of the PR: crash storms, a hard container outage,
link flapping and a rolling partition are all drawn from the experiment
seed, played against four containers exchanging variables and RPC, and
afterwards no §3 contract may be broken — lifecycle transitions legal,
every invocation terminated, directory reconverged."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import RestartPolicy, SimRuntime
from repro.encoding.types import FLOAT64, STRING, StructType
from repro.faults import ChaosCampaign, ChaosProfile, InvariantChecker

SCHEMA = StructType("Sample", [("x", FLOAT64), ("t", FLOAT64)])

POLICY = RestartPolicy(
    mode="on-failure", backoff_initial=0.3, backoff_factor=2.0,
    backoff_max=3.0, jitter=0.2, max_restarts=8, restart_window=60.0,
)

PROFILE = ChaosProfile(
    start=2.0, duration=15.0,
    crash_storms=2, storm_size=(1, 3),
    container_crashes=1, outage=(1.5, 2.5),
    link_flaps=2, partitions=1,
)


def sensor(tag):
    def setup(s):
        s.handle = s.ctx.provide_variable(
            "chaos.telemetry", SCHEMA, validity=2.0, period=0.25
        )
        s.ctx.every(0.25, lambda: s.handle.publish({"x": tag, "t": s.ctx.now()}))
    return setup


def rpc(tag):
    def setup(s):
        s.ctx.provide_function(
            "chaos.compute", lambda: tag, params=[], result=STRING
        )
    return setup


def build_domain(seed):
    """Four containers: redundant telemetry, redundant RPC, one consumer."""
    runtime = SimRuntime(seed=seed)
    for cid in ("alpha", "beta", "gamma", "delta"):
        runtime.add_container(cid, restart_policy=POLICY)
    runtime.container("alpha").install_service(ProbeService("sensor-a", sensor(1.0)))
    runtime.container("beta").install_service(ProbeService("sensor-b", sensor(2.0)))
    runtime.container("beta").install_service(ProbeService("rpc-b", rpc("beta")))
    runtime.container("gamma").install_service(ProbeService("rpc-g", rpc("gamma")))
    return runtime


def install_consumer(runtime, deadline):
    """A consumer on delta issuing bounded-timeout calls until ``deadline``
    (so every call terminates before the invariant check runs)."""

    def setup(s):
        s.watch_variable("chaos.telemetry")

        def tick():
            if s.ctx.now() < deadline:
                s.call_recorded("chaos.compute", timeout=1.0)

        s.ctx.every(0.5, tick)

    consumer = ProbeService("consumer", setup)
    runtime.container("delta").install_service(consumer)
    return consumer


class TestChaosSoak:
    def run_campaign(self, seed=77):
        from repro.verify.library import standard_specs

        runtime = build_domain(seed)
        campaign = ChaosCampaign(
            runtime, profile=PROFILE, protected=("delta",)
        )
        campaign.schedule()
        consumer = install_consumer(runtime, deadline=campaign.horizon + 2.0)
        checker = InvariantChecker(runtime)
        # The compiled temporal specs watch the same campaign online; the
        # checker folds their verdicts into check() (differential oracle).
        checker.attach_monitor(runtime.enable_verification(standard_specs()))
        runtime.start()
        campaign.run(settle=8.0)
        return runtime, campaign, checker, consumer

    def test_invariants_hold_through_campaign(self):
        runtime, campaign, checker, consumer = self.run_campaign()
        # The five standard specs observed the whole campaign.
        assert len(runtime.monitor.specs) >= 5
        assert runtime.monitor.engine.events_observed > 0
        # The campaign actually did something in every fault class.
        fired = {event.kind for event in campaign.injector.log}
        assert "crash_service" in fired
        assert "crash_container" in fired
        assert "degrade_link" in fired
        assert "partition" in fired
        # The §3 contracts held: legal lifecycle only, every invocation
        # terminated, directory reconverged after heal.
        assert checker.check() == []
        assert len(checker.transitions) > 0
        # The mission made progress despite the faults.
        assert len(consumer.values_of("chaos.telemetry")) > 20
        assert len(consumer.results) > 5

    def test_supervision_recovered_injected_crashes(self):
        runtime, campaign, checker, _ = self.run_campaign()
        crashed = [e for e in campaign.injector.log if e.kind == "crash_service"]
        assert crashed
        attempts = sum(
            c.supervisor.restarts_attempted for c in runtime.containers.values()
        )
        assert attempts >= len(crashed)
        # Nothing escalated with this budget: every crash healed, so every
        # service the campaign touched is running again.
        for container in runtime.containers.values():
            for record in container.services():
                assert record.is_running, (container.id, record.name, record.state)

    def test_same_seed_same_schedule(self):
        plans = []
        for _ in range(2):
            runtime = build_domain(seed=77)
            campaign = ChaosCampaign(runtime, profile=PROFILE, protected=("delta",))
            plans.append(campaign.schedule())
        assert plans[0] == plans[1]
        assert plans[0] != ChaosCampaign(
            build_domain(seed=78), profile=PROFILE, protected=("delta",)
        ).schedule()


class TestCheckerCatchesViolations:
    """The invariant checker must not be vacuously green."""

    def test_flags_leaked_invocation(self):
        from repro.faults import FaultInjector

        runtime = build_domain(seed=5)
        checker = InvariantChecker(runtime)
        consumer = ProbeService("consumer")
        runtime.container("delta").install_service(consumer)
        runtime.start()
        runtime.run_for(3.0)
        # Cut the consumer off, then fire a long-timeout call into the
        # void: it is still pending when the checker runs.
        FaultInjector(runtime).partition(
            0.0, ["delta"], ["alpha", "beta", "gamma"]
        )
        runtime.run_for(0.5)
        consumer.call_recorded("chaos.compute", timeout=30.0)
        runtime.run_for(0.5)
        violations = checker.check_invocations_terminated()
        assert any("never terminated" in v for v in violations)

    def test_flags_escalated_non_failed_service(self):
        runtime = build_domain(seed=5)
        checker = InvariantChecker(runtime)
        runtime.start()
        runtime.run_for(1.0)
        record = runtime.container("alpha").service_record("sensor-a")
        record.escalated = True  # corrupt on purpose: escalated yet RUNNING
        violations = checker.check_escalations_final()
        assert any("escalated" in v for v in violations)
