"""Mission-control robustness: late payload start, missed fixes, partitions."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro import SimRuntime
from repro.encoding.types import STRING
from repro.faults import FaultInjector
from repro.flight import FlightPlan, GeoPoint, KinematicUav, Waypoint, WaypointAction
from repro.flight.geodesy import destination_point
from repro.services import (
    CameraService,
    GpsService,
    MissionControlService,
    StorageService,
    VideoProcessingService,
)


def plan_with_photo_at_start():
    """Waypoint 0 is both the launch point and a photo waypoint — the UAV
    leaves its capture radius before the payload finishes initializing."""
    origin = GeoPoint(41.0, 2.0, 300.0)
    return FlightPlan(
        waypoints=[
            Waypoint(origin, action=WaypointAction.TAKE_PHOTO, name="launch-photo"),
            Waypoint(destination_point(origin, 90, 500), name="east"),
        ],
        name="photo-at-launch",
    )


class TestLateInitialization:
    def test_photo_at_launch_is_queued_until_payload_ready(self):
        runtime = SimRuntime(seed=6)
        plan = plan_with_photo_at_start()
        fcs = runtime.add_container("fcs")
        payload = runtime.add_container("payload")
        mc = MissionControlService(plan)
        camera = CameraService()
        fcs.install_service(GpsService(KinematicUav(plan)))
        fcs.install_service(mc)
        payload.install_service(camera)
        payload.install_service(StorageService())
        payload.install_service(VideoProcessingService())
        runtime.start()
        assert runtime.run_until(lambda: mc.complete, timeout=120.0)
        runtime.run_for(3.0)
        # The launch photo was requested late but never lost.
        assert 0 in mc.photos_requested
        assert camera.photos_taken == 1

    def test_missed_waypoint_is_skipped_not_wedged(self):
        # Feed positions directly: the fix at the middle waypoint is lost
        # (the published track jumps straight from "start" to "end").
        from repro.encoding.schema import POSITION_SCHEMA

        origin = GeoPoint(41.0, 2.0, 300.0)
        plan = FlightPlan(
            waypoints=[
                Waypoint(origin, capture_radius_m=50, name="start"),
                Waypoint(destination_point(origin, 90, 400),
                         capture_radius_m=10.0, name="needle"),
                Waypoint(destination_point(origin, 90, 800),
                         capture_radius_m=50, name="end"),
            ],
        )
        runtime = SimRuntime(seed=6)
        fcs = runtime.add_container("fcs")
        mc = MissionControlService(plan)
        feeder = ProbeService("feeder", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("gps.position", POSITION_SCHEMA)
        ))
        fcs.install_service(feeder)
        fcs.install_service(mc)
        payload = runtime.add_container("payload")
        payload.install_service(CameraService())
        payload.install_service(StorageService())
        payload.install_service(VideoProcessingService())
        runtime.start()
        runtime.run_until(lambda: mc.initialized, timeout=30.0)

        def fix(point):
            feeder.handle.publish({
                "lat": point.lat, "lon": point.lon, "alt": point.alt,
                "ground_speed": 25.0, "heading": 90.0,
                "timestamp": runtime.sim.now(),
            })
            runtime.run_for(0.2)

        fix(origin)  # captures "start"
        fix(destination_point(origin, 90, 800))  # lands inside "end"
        runtime.run_for(1.0)
        assert mc.complete
        assert mc.missed_waypoints == [1]


class TestPartition:
    def test_partition_and_heal(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("p.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("p.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        injector = FaultInjector(runtime)
        injector.partition(0.0, ["a"], ["b"], duration=5.0)
        runtime.run_for(3.0)
        # Both sides declared the other dead.
        assert not a.directory.record("b").alive
        assert not b.directory.record("a").alive
        runtime.run_for(5.0)  # healed at t=5; announces resume
        assert a.directory.record("b").alive
        assert b.directory.record("a").alive
        # The subscription re-established itself after the heal.
        pub.handle.raise_event("after heal")
        runtime.run_for(2.0)
        assert "after heal" in sub.events_of("p.evt")

    def test_events_during_partition_fail_cleanly(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_event("p.evt", STRING)
        ))
        sub = ProbeService("sub", lambda s: s.watch_event("p.evt"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        FaultInjector(runtime).partition(0.0, ["a"], ["b"])  # permanent
        runtime.run_for(3.0)
        # Raising into the partition neither delivers nor crashes; the dead
        # subscriber was dropped from the publication (§3 cache clearing).
        pub.handle.raise_event("into the void")
        runtime.run_for(5.0)
        assert "into the void" not in sub.events_of("p.evt")
        assert "b" not in pub.handle.subscribers
