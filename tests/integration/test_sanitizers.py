"""Runtime sanitizers over the full stack.

The payload-aliasing sanitizer must catch a deliberately injected
post-publish mutation end to end (the local fast path hands subscribers
the very object the publisher passed in), and the lock-order sanitizer
must come up clean through a supervised crash/restart cycle on the
threaded runtime.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro import RestartPolicy, ThreadedRuntime
from repro.analysis.context import Project, SourceFile
from repro.analysis.rules.rep007_lockorder import static_lock_graph
from repro.analysis.sanitizers.payload import PayloadMutationError
from repro.container import ServiceState
from repro.encoding.types import FLOAT64, INT32, StructType

SCHEMA = StructType("Sample", [("x", FLOAT64), ("n", INT32)])


class TestPayloadSanitizerEndToEnd:
    def test_checksum_catches_injected_post_publish_mutation(self):
        runtime, a, b = two_containers()
        runtime.enable_payload_sanitizer("checksum")
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("gps.fix", SCHEMA)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("gps.fix"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)

        sample = {"x": 1.0, "n": 1}
        pub.handle.publish(sample)
        runtime.run_for(0.5)
        # The injected bug: the publisher recycles its sample dict. Local
        # observers (last_value, same-container subscribers) share this
        # object; the wire already carried the old bytes.
        sample["n"] = 999
        pub.handle.publish({"x": 2.0, "n": 2})
        runtime.run_for(0.5)

        violations = runtime.sanitizer_violations()
        assert "a" in violations
        assert violations["a"][0]["kind"] == "var"
        assert violations["a"][0]["name"] == "gps.fix"
        # Detection is also visible in the container's unified telemetry.
        assert any(
            "sanitizer_payload_mutations" in key
            for key in runtime.metrics_snapshot()
        )
        assert any(
            entry.get("check") == "payload-aliasing"
            for entry in runtime.flight_dumps()["a"]
        )

    def test_clean_run_reports_no_violations(self):
        runtime, a, b = two_containers()
        runtime.enable_payload_sanitizer("checksum")
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("gps.fix", SCHEMA)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("gps.fix"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        for i in range(10):
            pub.handle.publish({"x": float(i), "n": i})
            runtime.run_for(0.1)
        runtime.stop()  # stop-time verification checkpoint
        assert runtime.sanitizer_violations() == {}
        assert [v["n"] for v in sub.values_of("gps.fix")] == list(range(10))

    def test_stop_time_checkpoint_catches_late_mutation(self):
        runtime, a, _ = two_containers()
        runtime.enable_payload_sanitizer("checksum")
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("gps.fix", SCHEMA)
        ))
        a.install_service(pub)
        settle(runtime)
        sample = {"x": 1.0, "n": 1}
        pub.handle.publish(sample)
        runtime.run_for(0.2)
        sample["x"] = -1.0  # mutated, and never published again
        runtime.stop()
        assert "a" in runtime.sanitizer_violations()

    def test_freeze_mode_raises_at_the_mutation_site(self):
        runtime, a, _ = two_containers()
        runtime.enable_payload_sanitizer("freeze")

        def setup(s):
            s.handle = s.ctx.provide_variable("gps.fix", SCHEMA)
            s.watch_variable("gps.fix")

        svc = ProbeService("both", setup)
        a.install_service(svc)
        settle(runtime)
        svc.handle.publish({"x": 1.0, "n": 7})
        runtime.run_for(0.2)
        # The local subscriber received the frozen alias: the value reads
        # like a plain dict but mutators raise with a stack trace that
        # points at the offender — not at some later checkpoint.
        [(_, received, _)] = svc.samples
        assert received == {"x": 1.0, "n": 7}
        with pytest.raises(PayloadMutationError):
            received["n"] = 8

    def test_sanitizer_off_by_default(self):
        runtime, a, _ = two_containers()
        assert not a.payload_sanitizer.enabled


class TestLockOrderSanitizerEndToEnd:
    FAST = dict(
        announce_interval=0.2,
        heartbeat_interval=0.05,
        liveness_timeout=0.5,
        housekeeping_interval=0.1,
    )
    POLICY = RestartPolicy(
        mode="on-failure", backoff_initial=0.1, backoff_factor=1.0,
        jitter=0.0, max_restarts=3, restart_window=30.0,
    )

    @pytest.mark.chaos
    def test_zero_inversions_through_supervised_restart(self):
        runtime = ThreadedRuntime(lock_sanitizer=True)
        try:
            a = runtime.add_container("a", restart_policy=self.POLICY, **self.FAST)
            b = runtime.add_container("b", **self.FAST)
            pub = ProbeService("pub", lambda s: setattr(
                s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
            ))
            sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
            a.install_service(pub)
            b.install_service(sub)
            runtime.start()
            assert runtime.run_until(
                lambda: bool(b.directory.providers_of_variable("test.var")),
                timeout=5.0,
            )
            runtime.on_reactor(lambda: pub.handle.publish({"x": 1.0, "n": 1}))
            assert runtime.run_until(lambda: len(sub.samples) >= 1, timeout=5.0)

            # Crash the provider and ride the supervisor through a full
            # restart while the reactor lock keeps being taken by timers,
            # socket callbacks and the application thread.
            runtime.on_reactor(lambda: a.service_failed("pub", "injected"))
            assert runtime.run_until(
                lambda: a.service_state("pub") == ServiceState.RUNNING,
                timeout=5.0,
            )
            assert runtime.run_until(
                lambda: bool(b.directory.providers_of_variable("test.var")),
                timeout=5.0,
            )
            assert runtime.lock_recorder.acquisitions > 0
            assert runtime.lock_inversions() == []
        finally:
            runtime.stop()
        # Post-stop report: no inversions means no sanitizer entries in
        # the runtime flight recorder and no counter in metrics.
        assert runtime.lock_inversions() == []
        assert "lock_order_inversions" not in str(runtime.metrics.snapshot())


class TestStaticRuntimeCrossCheck:
    """Replay LockOrderRecorder edges into the static REP007 graph.

    Every acquisition-order edge a live threaded session records must
    already be present in the graph REP007 computed from source alone. A
    miss means the static analysis lost track of a lock — that is a bug
    in the rule's resolution, not grounds for a waiver.
    """

    FAST = TestLockOrderSanitizerEndToEnd.FAST

    @staticmethod
    def _static_graph():
        src = Path(__file__).resolve().parent.parent.parent / "src"
        files = [
            SourceFile.load(path, src)
            for path in sorted((src / "repro").rglob("*.py"))
            if "__pycache__" not in path.parts
        ]
        return static_lock_graph(Project(root=src, files=files))

    def test_every_runtime_edge_is_statically_known(self):
        runtime = ThreadedRuntime(lock_sanitizer=True)
        try:
            a = runtime.add_container("a", **self.FAST)
            b = runtime.add_container("b", **self.FAST)
            pub = ProbeService("pub", lambda s: setattr(
                s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
            ))
            sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
            a.install_service(pub)
            b.install_service(sub)
            runtime.start()
            assert runtime.run_until(
                lambda: bool(b.directory.providers_of_variable("test.var")),
                timeout=5.0,
            )
            runtime.on_reactor(lambda: pub.handle.publish({"x": 1.0, "n": 1}))
            assert runtime.run_until(lambda: len(sub.samples) >= 1, timeout=5.0)
        finally:
            runtime.stop()

        observed = runtime.lock_recorder.edges()
        assert runtime.lock_recorder.acquisitions > 0
        graph = self._static_graph()
        missing = [
            (held, acquired)
            for held, successors in sorted(observed.items())
            for acquired in sorted(successors)
            if not graph.covers(held, acquired)
        ]
        assert missing == [], (
            "runtime lock edges unknown to the static REP007 graph: "
            f"{missing} — fix the rule's lock resolution, do not waive"
        )
