"""Integration tests for code upload / dynamic deployment (§4.4)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro.container import ServiceState
from repro.services.deploy import DeploymentService, deployment_resource

BEACON_V1 = b'''
from repro.services import Service
from repro.encoding.types import STRING

class Beacon(Service):
    def __init__(self):
        super().__init__("beacon")
    def on_start(self):
        evt = self.ctx.provide_event("beacon.ping", STRING)
        self.ctx.every(0.5, lambda: evt.raise_event("v1"))

def create_service():
    return Beacon()
'''

BEACON_V2 = BEACON_V1.replace(b'"v1"', b'"v2"')

BROKEN = b"def create_service():\n    return 42\n"
SYNTAX_ERROR = b"def create_service( this is not python"
NO_FACTORY = b"x = 1\n"


class TestDeployment:
    def setup_pair(self):
        runtime, uav, ground = two_containers()
        uav.install_service(DeploymentService())
        uploader = ProbeService("uploader")
        ground.install_service(uploader)
        listener = ProbeService("listener", lambda s: s.watch_event("beacon.ping"))
        ground.install_service(listener)
        settle(runtime)
        return runtime, uav, ground, uploader, listener

    def test_uploaded_service_runs(self):
        runtime, uav, ground, uploader, listener = self.setup_pair()
        uploader.ctx.publish_file(deployment_resource("a"), BEACON_V1)
        runtime.run_for(5.0)
        assert uav.service_state("beacon") == ServiceState.RUNNING
        assert "v1" in listener.events_of("beacon.ping")

    def test_revision_hot_upgrades(self):
        runtime, uav, ground, uploader, listener = self.setup_pair()
        uploader.ctx.publish_file(deployment_resource("a"), BEACON_V1)
        runtime.run_for(4.0)
        assert "v1" in listener.events_of("beacon.ping")
        uploader.ctx.publish_file(deployment_resource("a"), BEACON_V2)
        runtime.run_for(4.0)
        assert "v2" in listener.events_of("beacon.ping")
        # Only one beacon exists; the v1 instance was retired.
        names = [r.name for r in uav.services()]
        assert names.count("beacon") == 1
        # v1 pings stopped after the upgrade.
        tail = listener.events_of("beacon.ping")[-3:]
        assert set(tail) == {"v2"}

    @pytest.mark.parametrize("payload", [BROKEN, SYNTAX_ERROR, NO_FACTORY])
    def test_bad_uploads_rejected_without_damage(self, payload):
        runtime, uav, ground, uploader, listener = self.setup_pair()
        uploader.ctx.publish_file(deployment_resource("a"), payload)
        runtime.run_for(3.0)
        deploy = [r for r in uav.services() if r.name == "deploy"][0]
        assert deploy.state == ServiceState.RUNNING  # survived the bad code
        assert deploy.service.failed_deployments
        assert [r.name for r in uav.services()] == ["deploy"]

    def test_bad_then_good_upload(self):
        runtime, uav, ground, uploader, listener = self.setup_pair()
        uploader.ctx.publish_file(deployment_resource("a"), BROKEN)
        runtime.run_for(3.0)
        uploader.ctx.publish_file(deployment_resource("a"), BEACON_V1)
        runtime.run_for(4.0)
        assert uav.service_state("beacon") == ServiceState.RUNNING


class TestUninstall:
    def test_uninstall_removes_and_withdraws(self):
        runtime, a, b = two_containers()
        svc = ProbeService("tmp", lambda s: s.ctx.provide_event("tmp.evt"))
        a.install_service(svc)
        settle(runtime)
        assert b.directory.providers_of_event("tmp.evt")
        a.uninstall_service("tmp")
        runtime.run_for(1.5)
        assert "tmp" not in [r.name for r in a.services()]
        assert not b.directory.providers_of_event("tmp.evt")
        # Reinstalling under the same name is now legal.
        a.install_service(ProbeService("tmp"))
