"""Integration tests for the Variable primitive over the full stack (§4.1)."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro.encoding.types import FLOAT64, INT32, StructType
from repro.simnet.models import LinkModel

SCHEMA = StructType("Sample", [("x", FLOAT64), ("n", INT32)])


def sample(x, n):
    return {"x": float(x), "n": n}


class TestBasicPubSub:
    def test_remote_subscriber_receives_samples(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA, period=0.1)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        for i in range(5):
            pub.handle.publish(sample(i, i))
            runtime.run_for(0.1)
        assert [v["n"] for v in sub.values_of("test.var")] == [0, 1, 2, 3, 4]

    def test_multiple_subscribers_same_variable(self):
        runtime, a, b = two_containers()
        c = runtime.add_container("c")
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
        ))
        sub_b = ProbeService("sub-b", lambda s: s.watch_variable("test.var"))
        sub_c = ProbeService("sub-c", lambda s: s.watch_variable("test.var"))
        a.install_service(pub)
        b.install_service(sub_b)
        c.install_service(sub_c)
        settle(runtime)
        pub.handle.publish(sample(1.5, 7))
        runtime.run_for(0.5)
        assert sub_b.values_of("test.var") == [sample(1.5, 7)]
        assert sub_c.values_of("test.var") == [sample(1.5, 7)]

    def test_local_subscriber_same_container(self):
        runtime, a, _ = two_containers()

        def setup(s):
            s.handle = s.ctx.provide_variable("test.var", SCHEMA)
            s.watch_variable("test.var")

        svc = ProbeService("both", setup)
        a.install_service(svc)
        settle(runtime)
        svc.handle.publish(sample(2.0, 1))
        runtime.run_for(0.1)
        assert svc.values_of("test.var") == [sample(2.0, 1)]

    def test_publication_counts(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
        ))
        a.install_service(pub)
        settle(runtime)
        pub.handle.publish(sample(0, 0))
        assert pub.handle.published_samples == 1
        assert pub.handle.last_value == sample(0, 0)


class TestLossTolerance:
    def test_samples_lost_on_lossy_link_without_breaking(self):
        link = LinkModel(latency=0.001, jitter=0.0, loss=0.4, bandwidth_bps=0.0)
        runtime, a, b = two_containers(seed=5, link=link)
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA, period=0.05)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime, 5.0)  # lossy control plane needs longer to converge
        for i in range(100):
            pub.handle.publish(sample(i, i))
            runtime.run_for(0.05)
        received = sub.values_of("test.var")
        # Best-effort: some lost, many delivered, order preserved.
        assert 20 < len(received) < 100
        ns = [v["n"] for v in received]
        assert ns == sorted(ns)


class TestValidityQos:
    def test_latest_respects_validity_window(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA, validity=0.5)
        ))
        sub = ProbeService("sub", lambda s: setattr(
            s, "subscription", s.watch_variable("test.var")
        ))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.publish(sample(1, 1))
        runtime.run_for(0.1)
        assert sub.subscription.latest() == sample(1, 1)
        runtime.run_for(1.0)  # sample now older than validity
        assert sub.subscription.latest() is None

    def test_zero_validity_means_forever(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA, validity=0.0)
        ))
        sub = ProbeService("sub", lambda s: setattr(
            s, "subscription", s.watch_variable("test.var")
        ))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.publish(sample(1, 1))
        runtime.run_for(10.0)
        assert sub.subscription.latest() == sample(1, 1)


class TestTimeoutWarning:
    def test_subscriber_warned_when_samples_stop(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA, period=0.1)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        for i in range(10):
            pub.handle.publish(sample(i, i))
            runtime.run_for(0.1)
        assert sub.timeouts == []
        runtime.run_for(2.0)  # publisher goes quiet
        assert "test.var" in sub.timeouts

    def test_no_warning_while_publishing(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA, period=0.1)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        for i in range(40):
            pub.handle.publish(sample(i, i))
            runtime.run_for(0.1)
        assert sub.timeouts == []


class TestInitialValue:
    def test_initial_value_fetched_for_late_subscriber(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
        ))
        a.install_service(pub)
        settle(runtime)
        pub.handle.publish(sample(9, 9))
        runtime.run_for(1.0)
        # Subscriber appears long after the only publication.
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var", initial=True))
        b.install_service(sub)
        runtime.run_for(2.0)
        assert sub.values_of("test.var") == [sample(9, 9)]

    def test_initial_value_waits_for_first_publication(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
        ))
        sub = ProbeService("sub", lambda s: s.watch_variable("test.var", initial=True))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        assert sub.values_of("test.var") == []
        pub.handle.publish(sample(3, 3))
        runtime.run_for(1.0)
        assert sub.values_of("test.var") == [sample(3, 3)]

    def test_local_initial_value_immediate(self):
        runtime, a, _ = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
        ))
        a.install_service(pub)
        settle(runtime)
        pub.handle.publish(sample(4, 4))

        sub = ProbeService("sub", lambda s: s.watch_variable("test.var", initial=True))
        a.install_service(sub)
        runtime.run_for(0.1)
        assert sub.values_of("test.var") == [sample(4, 4)]


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
        ))
        sub = ProbeService("sub", lambda s: setattr(
            s, "subscription", s.watch_variable("test.var")
        ))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.handle.publish(sample(1, 1))
        runtime.run_for(0.2)
        sub.subscription.cancel()
        pub.handle.publish(sample(2, 2))
        runtime.run_for(0.5)
        assert [v["n"] for v in sub.values_of("test.var")] == [1]

    def test_withdraw_removes_offer(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub", lambda s: setattr(
            s, "handle", s.ctx.provide_variable("test.var", SCHEMA)
        ))
        a.install_service(pub)
        settle(runtime)
        assert b.directory.providers_of_variable("test.var")
        pub.handle.withdraw()
        runtime.run_for(1.5)
        assert not b.directory.providers_of_variable("test.var")
