"""Supervised restart and escalation, end to end over the wire.

Covers the PR's acceptance criteria: a crashed service with an
``on-failure`` policy restarts within its backoff schedule (asserted in
virtual time), and once the restart budget is exhausted the service is
escalated, withdrawn from the directory, and a redundant provider keeps
serving calls."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro import RestartPolicy, SimRuntime
from repro.container import ServiceState
from repro.encoding.types import STRING


class FlakyProvider(ProbeService):
    """Provides a function; refuses to start while poisoned."""

    def __init__(self, name: str, function: str, tag: str):
        super().__init__(name)
        self.function = function
        self.tag = tag
        self.poisoned = False

    def on_start(self):
        if self.poisoned:
            raise RuntimeError("still broken")
        self.ctx.provide_function(
            self.function, lambda: self.tag, params=[], result=STRING
        )


class TestAutoRestart:
    POLICY = RestartPolicy(
        mode="on-failure", backoff_initial=0.5, backoff_factor=2.0,
        jitter=0.0, max_restarts=5, restart_window=30.0,
    )

    def test_crashed_provider_restarts_and_reoffers(self):
        runtime, a, b = two_containers(restart_policy=self.POLICY)
        frail = FlakyProvider("frail", "frail.fn", "ok")
        a.install_service(frail)
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        assert b.directory.providers_of_function("frail.fn")

        a.service_failed("frail", "injected")
        # Withdrawal reaches the peer before the restart fires.
        runtime.run_for(0.4)
        assert a.service_state("frail") == ServiceState.FAILED
        assert not b.directory.providers_of_function("frail.fn")
        # One backoff later (0.5s, jitter 0) the service is back ...
        runtime.run_for(0.2)
        assert a.service_state("frail") == ServiceState.RUNNING
        # ... and after the change-triggered announce the peer can call it.
        runtime.run_for(1.0)
        assert b.directory.providers_of_function("frail.fn")
        client.call_recorded("frail.fn")
        runtime.run_for(1.0)
        assert client.results == ["ok"]
        assert client.errors == []
        assert a.supervisor.stats.count("restarts_succeeded") == 1


class TestEscalationFailover:
    POLICY = RestartPolicy(
        mode="on-failure", backoff_initial=0.2, backoff_factor=1.0,
        jitter=0.0, max_restarts=3, restart_window=60.0,
    )

    def make(self):
        runtime = SimRuntime(seed=31)
        primary = runtime.add_container("primary", restart_policy=self.POLICY)
        backup = runtime.add_container("backup")
        client_c = runtime.add_container("client")
        flaky = FlakyProvider("nav-primary", "nav.compute", "primary")
        primary.install_service(flaky)
        backup.install_service(
            ProbeService("nav-backup", lambda s: s.ctx.provide_function(
                "nav.compute", lambda: "backup", params=[], result=STRING
            ))
        )
        client = ProbeService("client")
        client_c.install_service(client)
        settle(runtime)
        return runtime, primary, client_c, flaky, client

    def test_budget_exhaustion_withdraws_and_fails_over(self):
        runtime, primary, client_c, flaky, client = self.make()
        assert len(client_c.directory.providers_of_function("nav.compute")) == 2

        # Poisoned: every supervised restart attempt fails, and after
        # max_restarts the supervisor gives up for good.
        flaky.poisoned = True
        primary.service_failed("nav-primary", "injected")
        runtime.run_for(4.0)
        record = primary.service_record("nav-primary")
        assert record.escalated and record.state == ServiceState.FAILED
        assert primary.supervisor.escalations == 1

        # Withdrawn from the peer's directory, and the escalation is
        # visible in primary's announce.
        providers = client_c.directory.providers_of_function("nav.compute")
        assert [p.container for p in providers] == ["backup"]
        peer_view = client_c.directory.record("primary")
        assert "nav-primary" in peer_view.failed_services

        # The redundant provider serves every subsequent call.
        for _ in range(5):
            client.call_recorded("nav.compute")
        runtime.run_for(2.0)
        assert client.results == ["backup"] * 5
        assert client.errors == []

    def test_escalation_raises_emergency(self):
        runtime, primary, _, flaky, _ = self.make()
        flaky.poisoned = True
        primary.service_failed("nav-primary", "injected")
        runtime.run_for(4.0)
        assert any("nav-primary" in reason for reason in primary.emergencies)


class TestAlwaysOverTheWire:
    def test_resurrected_service_reannounces_offers(self):
        policy = RestartPolicy(mode="always", backoff_initial=0.3, jitter=0.0)
        runtime, a, b = two_containers(restart_policy=policy)
        a.install_service(ProbeService("pinned", lambda s: s.ctx.provide_function(
            "pinned.fn", lambda: "ok", params=[], result=STRING
        )))
        settle(runtime)
        a.stop_service("pinned")
        runtime.run_for(0.1)
        assert not b.directory.providers_of_function("pinned.fn")
        runtime.run_for(1.5)
        assert a.service_state("pinned") == ServiceState.RUNNING
        assert b.directory.providers_of_function("pinned.fn")
