"""Replay determinism of the observability layer.

A seeded chaos campaign played twice must produce *identical* observable
histories: the same span dicts (trace trees), the same metrics snapshot,
the same invariant verdicts. This is the contract that makes a recorded
failure diagnosable — re-running the seed reproduces the exact flight.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import RestartPolicy, SimRuntime
from repro.encoding.types import FLOAT64, STRING, StructType
from repro.faults import ChaosCampaign, ChaosProfile, InvariantChecker
from repro.util.ids import reset_uid_counter

SCHEMA = StructType("Sample", [("x", FLOAT64), ("t", FLOAT64)])

POLICY = RestartPolicy(
    mode="on-failure", backoff_initial=0.3, backoff_factor=2.0,
    backoff_max=3.0, jitter=0.2, max_restarts=8, restart_window=60.0,
)

# A shorter campaign than the chaos soak: two storms and a flap are plenty
# to exercise retransmits, restarts and redirects in the trace record.
PROFILE = ChaosProfile(
    start=2.0, duration=8.0,
    crash_storms=1, storm_size=(1, 2),
    container_crashes=0, link_flaps=1, partitions=0,
)


def sensor(s):
    s.handle = s.ctx.provide_variable(
        "replay.telemetry", SCHEMA, validity=2.0, period=0.25
    )
    s.ctx.every(0.25, lambda: s.handle.publish({"x": 1.0, "t": s.ctx.now()}))


def rpc(s):
    s.ctx.provide_function("replay.compute", lambda: "ok", params=[], result=STRING)


def flight(seed):
    """One complete chaos flight; returns every observable artifact."""
    # Call-ids come from a process-global counter: reset it so both flights
    # mint identical ids (and therefore identical span attributes).
    reset_uid_counter()
    runtime = SimRuntime(seed=seed)
    for cid in ("alpha", "beta", "delta"):
        runtime.add_container(cid, restart_policy=POLICY, tracing_enabled=True)
    runtime.container("alpha").install_service(ProbeService("sensor", sensor))
    runtime.container("beta").install_service(ProbeService("rpc", rpc))

    campaign = ChaosCampaign(runtime, profile=PROFILE, protected=("delta",))
    campaign.schedule()
    deadline = campaign.horizon + 2.0

    def consumer_setup(s):
        s.watch_variable("replay.telemetry")

        def tick():
            if s.ctx.now() < deadline:
                s.call_recorded("replay.compute", timeout=1.0)

        s.ctx.every(0.5, tick)

    consumer = ProbeService("consumer", consumer_setup)
    runtime.container("delta").install_service(consumer)
    checker = InvariantChecker(runtime)
    runtime.start()
    campaign.run(settle=8.0)
    return {
        "spans": [span.to_dict() for span in runtime.trace_spans()],
        "tree": runtime.trace_tree(),
        "metrics": runtime.metrics_snapshot(),
        "violations": checker.check(),
        "flight": runtime.flight_dumps(),
        "plan": [(e.time, e.kind, e.target) for e in campaign.injector.log],
        "results": list(consumer.results),
    }


class TestReplayDeterminism:
    def test_same_seed_identical_observability(self):
        first = flight(seed=42)
        second = flight(seed=42)
        # The flights did real work under real faults.
        assert first["plan"]
        assert first["spans"]
        assert first["results"]
        assert first["violations"] == []
        # And every observable artifact is bit-identical on replay.
        assert first["spans"] == second["spans"]
        assert first["tree"] == second["tree"]
        assert first["metrics"] == second["metrics"]
        assert first["violations"] == second["violations"]
        assert first["flight"] == second["flight"]
        assert first["plan"] == second["plan"]
        assert first["results"] == second["results"]

    def test_different_seed_different_flight(self):
        first = flight(seed=42)
        other = flight(seed=43)
        # Distinct seeds must not alias onto the same history (the traces
        # would be useless for debugging if they did).
        assert first["plan"] != other["plan"] or first["spans"] != other["spans"]
