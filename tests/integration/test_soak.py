"""Soak test: a busy 8-node domain with mixed traffic, churn and faults.

Not a micro-scenario — this drives every primitive concurrently for 60
virtual seconds with a mid-run container crash and recovery, then checks
global invariants: no unexplained emergencies, guaranteed primitives
delivered everything to live peers, counters consistent.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import Service, SimRuntime
from repro.encoding.types import INT32, STRING, StructType
from repro.faults import FaultInjector
from repro.simnet.models import LinkModel

SAMPLE = StructType("Soak", [("n", INT32)])
NODES = 8
DURATION = 60.0


class Worker(Service):
    """Every worker publishes a variable + an event, serves a function,
    and consumes all of its left neighbour's offers."""

    def __init__(self, index: int, peers: int, stop_at: float = 55.0):
        super().__init__(f"worker{index}")
        self.index = index
        self.left = (index - 1) % peers
        self.stop_at = stop_at  # quiesce before the end so traffic drains
        self.sent_events = 0
        self.got_events = 0
        self.got_samples = 0
        self.rpc_ok = 0
        self.rpc_err = 0
        self.files_got = 0

    def on_start(self):
        self.var = self.ctx.provide_variable(
            f"soak.var{self.index}", SAMPLE, validity=1.0, period=0.2
        )
        self.evt = self.ctx.provide_event(f"soak.evt{self.index}", STRING)
        self.ctx.provide_function(
            f"soak.fn{self.index}", lambda x: x * 2, params=[INT32], result=INT32
        )
        self.ctx.subscribe_variable(
            f"soak.var{self.left}", on_sample=lambda v, t: self._sample()
        )
        self.ctx.subscribe_event(
            f"soak.evt{self.left}", lambda v, t: self._event()
        )
        self.ctx.subscribe_file(
            f"soak.file{self.left}",
            on_complete=lambda d, r: self._file(),
        )
        self.counter = 0
        self.ctx.every(0.2, self._tick)

    def _tick(self):
        now = self.ctx.now()
        if now < 3.0:
            return  # warmup: let discovery and subscriptions converge
        if now >= self.stop_at:
            return  # drain phase: let in-flight traffic settle
        self.counter += 1
        self.var.publish({"n": self.counter})
        if self.counter % 5 == 0:
            self.evt.raise_event(f"evt-{self.counter}")
            self.sent_events += 1
        if self.counter % 7 == 0:
            self.ctx.call(
                f"soak.fn{self.left}",
                (self.counter,),
                on_result=lambda r: self._rpc_ok(),
                on_error=lambda e: self._rpc_err(),
                timeout=2.0,
            )
        if self.counter % 25 == 0:
            self.ctx.publish_file(
                f"soak.file{self.index}", bytes([self.counter % 256]) * 4096
            )

    def _sample(self):
        self.got_samples += 1

    def _event(self):
        self.got_events += 1

    def _rpc_ok(self):
        self.rpc_ok += 1

    def _rpc_err(self):
        self.rpc_err += 1

    def _file(self):
        self.files_got += 1


@pytest.fixture(scope="module")
def soak_result():
    link = LinkModel(latency=0.001, jitter=0.0003, loss=0.01, bandwidth_bps=0.0)
    runtime = SimRuntime(seed=77, default_link=link)
    workers = []
    for i in range(NODES):
        container = runtime.add_container(f"n{i}", liveness_timeout=2.0)
        worker = Worker(i, NODES)
        container.install_service(worker)
        workers.append(worker)
    injector = FaultInjector(runtime)
    # n3 dies hard at t=20 and returns at t=30.
    injector.crash_container(20.0, "n3")
    injector.restore_node(30.0, "n3")
    runtime.start()
    runtime.run_for(DURATION)
    runtime.stop()
    return runtime, workers


class TestSoak:
    def test_whole_domain_stayed_alive(self, soak_result):
        runtime, workers = soak_result
        for container in runtime.containers.values():
            for record in container.services():
                assert record.state.value in ("stopped",), (
                    f"{container.id}/{record.name}: {record.state} "
                    f"({record.failure_reason})"
                )

    def test_variables_flowed_everywhere(self, soak_result):
        runtime, workers = soak_result
        for worker in workers:
            # ~300 published by the left neighbour; tolerate loss + crash gap.
            assert worker.got_samples > 150, worker.name

    def test_events_guaranteed_among_live_peers(self, soak_result):
        runtime, workers = soak_result
        for worker in workers:
            if worker.index in (3, 4):
                continue  # crash window affects n3 and its right neighbour
            left = workers[worker.left]
            # Every event the (never-crashed) left neighbour sent arrived.
            assert worker.got_events == left.sent_events, worker.name

    def test_rpc_mostly_succeeded(self, soak_result):
        runtime, workers = soak_result
        total_ok = sum(w.rpc_ok for w in workers)
        total_err = sum(w.rpc_err for w in workers)
        assert total_ok > total_err * 5
        # Only the crash window produces errors at all.
        for worker in workers:
            if worker.left != 3 and worker.index != 3:
                assert worker.rpc_err <= 2, worker.name

    def test_files_delivered(self, soak_result):
        runtime, workers = soak_result
        for worker in workers:
            if worker.index in (3, 4):
                continue
            assert worker.files_got >= 1, worker.name

    def test_no_unexplained_emergencies(self, soak_result):
        runtime, workers = soak_result
        for container in runtime.containers.values():
            for reason in container.emergencies:
                # Only provider-loss during the crash window is acceptable.
                assert "no provider" in reason or "fn3" in reason or "n3" in reason, reason

    def test_network_stats_consistent(self, soak_result):
        runtime, workers = soak_result
        stats = runtime.network.stats
        assert stats.deliveries.packets > 0
        assert stats.emissions.packets > 0
        # Conservation: every delivery traces back to an emission.
        assert stats.deliveries.packets <= stats.emissions.packets * NODES
