"""Integration tests for Remote Invocation (§4.3): calls, bindings, failover."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro import SimRuntime
from repro.encoding.types import INT32, STRING
from repro.faults import FaultInjector
from repro.util.errors import InvocationError, NameResolutionError


def adder_setup(s):
    s.ctx.provide_function(
        "math.add", lambda a, b: a + b, params=[INT32, INT32], result=INT32
    )


class TestBasicCalls:
    def test_remote_call_with_result(self):
        runtime, a, b = two_containers()
        a.install_service(ProbeService("server", adder_setup))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        client.call_recorded("math.add", (2, 3))
        runtime.run_for(1.0)
        assert client.results == [5]
        assert client.errors == []

    def test_void_function(self):
        runtime, a, b = two_containers()
        calls = []
        a.install_service(ProbeService("server", lambda s: s.ctx.provide_function(
            "actuator.trigger", lambda: calls.append(1)
        )))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        client.call_recorded("actuator.trigger")
        runtime.run_for(1.0)
        assert calls == [1]
        assert client.results == [None]

    def test_string_arguments(self):
        runtime, a, b = two_containers()
        a.install_service(ProbeService("server", lambda s: s.ctx.provide_function(
            "echo.shout", lambda text: text.upper(), params=[STRING], result=STRING
        )))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        client.call_recorded("echo.shout", ("héllo",))
        runtime.run_for(1.0)
        assert client.results == ["HÉLLO"]

    def test_local_call_same_container(self):
        runtime, a, _ = two_containers()

        def setup(s):
            adder_setup(s)

        svc = ProbeService("both", setup)
        a.install_service(svc)
        settle(runtime)
        svc.call_recorded("math.add", (10, 20))
        runtime.run_for(0.1)
        assert svc.results == [30]

    def test_concurrent_calls_keep_identities(self):
        runtime, a, b = two_containers()
        a.install_service(ProbeService("server", adder_setup))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        for i in range(10):
            client.call_recorded("math.add", (i, 100))
        runtime.run_for(2.0)
        assert sorted(client.results) == [100 + i for i in range(10)]


class TestErrors:
    def test_server_exception_reported_to_caller(self):
        runtime, a, b = two_containers()

        def setup(s):
            s.ctx.provide_function(
                "bad.divide", lambda x: 1 // x, params=[INT32], result=INT32
            )

        a.install_service(ProbeService("server", setup))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        client.call_recorded("bad.divide", (0,))
        runtime.run_for(1.0)
        assert len(client.errors) == 1
        assert isinstance(client.errors[0], InvocationError)

    def test_no_provider_triggers_emergency(self):
        runtime, a, b = two_containers()
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        client.call_recorded("ghost.function")
        runtime.run_for(0.5)
        assert len(client.errors) == 1
        assert isinstance(client.errors[0], NameResolutionError)
        assert any("ghost.function" in e for e in b.emergencies)

    def test_wrong_arity_rejected(self):
        runtime, a, b = two_containers()
        a.install_service(ProbeService("server", adder_setup))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        client.call_recorded("math.add", (1,))
        runtime.run_for(1.0)
        assert len(client.errors) == 1

    def test_check_required_functions(self):
        runtime, a, b = two_containers()
        a.install_service(ProbeService("server", adder_setup))
        client = ProbeService("client")
        b.install_service(client)
        settle(runtime)
        missing = client.ctx.check_required_functions(["math.add", "nav.plan"])
        assert missing == ["nav.plan"]


class TestRedundancyAndFailover:
    def make_redundant(self, binding="round_robin"):
        runtime = SimRuntime(seed=2)
        s1 = runtime.add_container("s1", call_binding=binding)
        s2 = runtime.add_container("s2", call_binding=binding)
        c = runtime.add_container("c", call_binding=binding)

        def make_server(tag):
            def setup(s):
                s.ctx.provide_function(
                    "who.am_i", lambda: tag, params=[], result=STRING
                )
            return setup

        s1.install_service(ProbeService("srv1", make_server("one")))
        s2.install_service(ProbeService("srv2", make_server("two")))
        client = ProbeService("client")
        c.install_service(client)
        settle(runtime)
        return runtime, client, s1, s2, c

    def test_round_robin_spreads_calls(self):
        runtime, client, *_ = self.make_redundant("round_robin")
        for _ in range(10):
            client.call_recorded("who.am_i")
        runtime.run_for(2.0)
        assert set(client.results) == {"one", "two"}

    def test_failover_to_redundant_provider(self):
        runtime, client, s1, s2, c = self.make_redundant()
        injector = FaultInjector(runtime)
        injector.crash_container(0.0, "s1")
        runtime.run_for(3.0)  # liveness timeout expires
        for _ in range(6):
            client.call_recorded("who.am_i")
        runtime.run_for(3.0)
        # Every call lands on the survivor; none error.
        assert client.errors == []
        assert set(client.results) == {"two"}

    def test_pending_call_redirected_when_provider_dies_midflight(self):
        # A provider that never answers, then dies: the call times out and
        # is redirected to the redundant provider.
        runtime = SimRuntime(seed=4)
        s1 = runtime.add_container("s1", call_timeout=0.5)
        s2 = runtime.add_container("s2", call_timeout=0.5)
        c = runtime.add_container("c", call_timeout=0.5)

        def slow_setup(s):
            # Provided but wedged: burn virtual time by never completing —
            # modelled as a function that raises after the caller gave up.
            s.ctx.provide_function("svc.answer", lambda: "slow", params=[], result=STRING)

        def fast_setup(s):
            s.ctx.provide_function("svc.answer", lambda: "fast", params=[], result=STRING)

        s1.install_service(ProbeService("srv1", slow_setup))
        s2.install_service(ProbeService("srv2", fast_setup))
        client = ProbeService("client")
        c.install_service(client)
        settle(runtime)
        injector = FaultInjector(runtime)
        injector.crash_container(0.05, "s1")  # dies right after the call lands
        client.call_recorded("svc.answer", binding="static")  # force no rerouting
        client.call_recorded("svc.answer")  # this one may redirect
        runtime.run_for(10.0)
        # The non-static call eventually succeeded somewhere.
        assert "fast" in client.results or "slow" in client.results

    def test_static_binding_sticks(self):
        runtime, client, s1, s2, c = self.make_redundant("static")
        client.ctx.bind_static("who.am_i", "s1")
        for _ in range(5):
            client.call_recorded("who.am_i", binding="static")
        runtime.run_for(2.0)
        assert set(client.results) == {"one"}

    def test_static_binding_does_not_failover(self):
        runtime, client, s1, s2, c = self.make_redundant("static")
        client.ctx.bind_static("who.am_i", "s1")
        injector = FaultInjector(runtime)
        injector.crash_container(0.0, "s1")
        runtime.run_for(3.0)
        client.call_recorded("who.am_i", binding="static")
        runtime.run_for(2.0)
        assert client.results == []
        assert len(client.errors) == 1

    def test_least_loaded_prefers_idle_provider(self):
        runtime, client, s1, s2, c = self.make_redundant("least_loaded")
        # Pile synthetic load onto s1's scheduler.
        rec = runtime.container("s1")
        for _ in range(50):
            rec.scheduler._ready.append(
                type("T", (), {"label": "background", "priority": 9,
                               "enqueued_at": 0.0, "deadline": 1e9, "cost": 1.0,
                               "fn": staticmethod(lambda: None), "started_at": None})()
            )
        runtime.run_for(1.0)  # heartbeats advertise the load
        for _ in range(4):
            client.call_recorded("who.am_i", binding="least_loaded")
        runtime.run_for(2.0)
        assert set(client.results) == {"two"}
