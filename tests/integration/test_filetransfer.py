"""Integration tests for File-based Transmission (§4.4)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService, settle, two_containers

from repro import SimRuntime
from repro.simnet.models import LinkModel
from repro.util.rng import SeededRng


def payload(size, seed=1):
    return SeededRng(seed).bytes(size)


class TestBasicTransfer:
    def test_small_file_reaches_subscriber(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.photo"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        data = payload(5000)
        pub.ctx.publish_file("res.photo", data)
        runtime.run_for(2.0)
        assert sub.files == [("res.photo", data, 1)]

    def test_multi_chunk_file(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.big"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        data = payload(50_000)  # 49 chunks at 1 KiB
        pub.ctx.publish_file("res.big", data)
        runtime.run_for(3.0)
        assert len(sub.files) == 1
        assert sub.files[0][1] == data

    def test_empty_file(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.empty"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.ctx.publish_file("res.empty", b"")
        runtime.run_for(2.0)
        assert sub.files == [("res.empty", b"", 1)]

    def test_multiple_subscribers_one_multicast_stream(self):
        runtime, a, b = two_containers()
        c = runtime.add_container("c")
        pub = ProbeService("pub")
        sub_b = ProbeService("sub-b", lambda s: s.watch_file("res.x"))
        sub_c = ProbeService("sub-c", lambda s: s.watch_file("res.x"))
        a.install_service(pub)
        b.install_service(sub_b)
        c.install_service(sub_c)
        settle(runtime)
        data = payload(20_000)
        pub.ctx.publish_file("res.x", data)
        runtime.run_for(3.0)
        assert sub_b.files[0][1] == data
        assert sub_c.files[0][1] == data
        # Chunks were multicast: sent once, not once per subscriber.
        session = a.files._sessions["res.x"]
        assert session.chunks_sent <= 20_000 // 1024 + 2

    def test_subscriber_before_publication(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.future"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        runtime.run_for(1.0)
        data = payload(3000)
        pub.ctx.publish_file("res.future", data)
        runtime.run_for(3.0)
        assert sub.files == [("res.future", data, 1)]

    def test_progress_callbacks(self):
        runtime, a, b = two_containers()
        progress = []
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.ctx.subscribe_file(
            "res.p",
            on_complete=lambda d, r: None,
            on_progress=lambda done, total: progress.append((done, total)),
        ))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.ctx.publish_file("res.p", payload(10_000))
        runtime.run_for(2.0)
        assert progress
        done, total = progress[-1]
        assert done == total == 10


class TestLossRecovery:
    @pytest.mark.parametrize("loss", [0.02, 0.1, 0.25])
    def test_transfer_completes_under_loss(self, loss):
        link = LinkModel(latency=0.002, jitter=0.0005, loss=loss, bandwidth_bps=0.0)
        runtime, a, b = two_containers(seed=21, link=link, liveness_timeout=5.0)
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.lossy"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime, 6.0)
        data = payload(30_000, seed=int(loss * 100))
        pub.ctx.publish_file("res.lossy", data)
        assert runtime.run_until(lambda: len(sub.files) == 1, timeout=60.0)
        assert sub.files[0][1] == data

    def test_retransmission_rounds_only_resend_missing(self):
        link = LinkModel(latency=0.002, jitter=0.0, loss=0.2, bandwidth_bps=0.0)
        runtime, a, b = two_containers(seed=31, link=link, liveness_timeout=5.0)
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.r"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime, 6.0)
        data = payload(40_000)
        total_chunks = 40
        pub.ctx.publish_file("res.r", data)
        assert runtime.run_until(lambda: len(sub.files) == 1, timeout=60.0)
        session = a.files._sessions["res.r"]
        # Selective retransmission: far fewer emissions than a full resend
        # per round would need.
        assert session.chunks_sent < total_chunks * (session.round + 1)


class TestLateJoin:
    def test_late_subscriber_resumes_and_catches_up(self):
        # Slow the stream so the second subscriber arrives mid-transfer.
        runtime = SimRuntime(seed=5)
        a = runtime.add_container("a", file_chunk_interval=0.01)
        b = runtime.add_container("b", file_chunk_interval=0.01)
        c = runtime.add_container("c", file_chunk_interval=0.01)
        pub = ProbeService("pub")
        early = ProbeService("early", lambda s: s.watch_file("res.late"))
        a.install_service(pub)
        b.install_service(early)
        late = ProbeService("late")
        c.install_service(late)
        settle(runtime)
        data = payload(100_000)  # 98 chunks * 10 ms = ~1 s transfer
        pub.ctx.publish_file("res.late", data)
        runtime.run_for(0.5)  # mid-transfer
        session = a.files._sessions["res.late"]
        assert session.in_transfer  # still going
        late.watch_file("res.late")
        assert runtime.run_until(
            lambda: len(early.files) == 1 and len(late.files) == 1, timeout=30.0
        )
        assert early.files[0][1] == data
        assert late.files[0][1] == data


class TestRevisions:
    def test_new_revision_delivered(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.v"))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.ctx.publish_file("res.v", b"first version")
        runtime.run_for(2.0)
        pub.ctx.publish_file("res.v", b"second version, longer")
        runtime.run_for(2.0)
        assert sub.files == [
            ("res.v", b"first version", 1),
            ("res.v", b"second version, longer", 2),
        ]

    def test_revision_must_increase(self):
        runtime, a, _ = two_containers()
        pub = ProbeService("pub")
        a.install_service(pub)
        settle(runtime)
        pub.ctx.publish_file("res.v", b"one", revision=5)
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            a.files.publish("res.v", b"two", revision=5)

    def test_on_revision_ignore_policy(self):
        runtime, a, b = two_containers()
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.ctx.subscribe_file(
            "res.v",
            on_complete=lambda d, r: s.files.append(("res.v", d, r)),
            on_revision=lambda rev: "ignore",
        ))
        a.install_service(pub)
        b.install_service(sub)
        settle(runtime)
        pub.ctx.publish_file("res.v", b"keep this")
        runtime.run_for(2.0)
        pub.ctx.publish_file("res.v", b"ignored update")
        runtime.run_for(2.0)
        assert sub.files == [("res.v", b"keep this", 1)]


class TestBypass:
    def test_same_container_bypasses_network(self):
        runtime, a, _ = two_containers()
        pub = ProbeService("pub")
        sub = ProbeService("sub", lambda s: s.watch_file("res.local"))
        a.install_service(pub)
        a.install_service(sub)
        settle(runtime)
        data = payload(80_000)
        pub.ctx.publish_file("res.local", data)
        runtime.run_for(1.0)
        assert sub.files == [("res.local", data, 1)]
        assert a.files.bypassed_transfers == 1
        # No transfer session was ever created: not a single chunk was sent.
        assert "res.local" not in a.files._sessions

    def test_bypass_for_subscription_after_publish(self):
        runtime, a, _ = two_containers()
        pub = ProbeService("pub")
        a.install_service(pub)
        settle(runtime)
        data = payload(5000)
        pub.ctx.publish_file("res.local2", data)
        sub = ProbeService("sub", lambda s: s.watch_file("res.local2"))
        a.install_service(sub)
        runtime.run_for(0.5)
        assert sub.files == [("res.local2", data, 1)]
        assert a.files.bypassed_transfers == 1


class TestNackCompression:
    def test_ranges_round_trip(self):
        from repro.primitives.wire import indices_from_ranges, ranges_from_indices

        indices = [0, 1, 2, 7, 9, 10, 11, 40]
        ranges = ranges_from_indices(indices)
        assert ranges == [
            {"start": 0, "end": 2},
            {"start": 7, "end": 7},
            {"start": 9, "end": 11},
            {"start": 40, "end": 40},
        ]
        assert indices_from_ranges(ranges) == indices

    def test_empty_and_single(self):
        from repro.primitives.wire import indices_from_ranges, ranges_from_indices

        assert ranges_from_indices([]) == []
        assert indices_from_ranges([]) == []
        assert ranges_from_indices([5]) == [{"start": 5, "end": 5}]
