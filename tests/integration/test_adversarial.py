"""Adversarial chaos: attacker personas against a defended fleet.

The acceptance shape of the robustness PR: a seeded campaign looses a
volumetric :class:`Flooder` and a :class:`MaliciousNacker` on a mission
whose victim container sits behind a shaped (bandwidth-limited) uplink —
the topology where an undefended flood demonstrably starves the victim's
own traffic, because every attack frame buys a band-0 ACK that competes
with everything the victim needs to say. With admission control and
reliability hardening armed:

- the invariant checker stays green, including the control-plane
  liveness watch (no healthy container ever looks dead to a peer);
- control-band work keeps flowing: RPC calls issued *by the victim*
  complete >= 99% with bounded p99 tail;
- data keeps flowing: event goodput stays near-perfect while the
  undefended twin of the same scenario measurably collapses;
- every violation record carries the attacking source id and band, so a
  red check points at the culprit, not just the symptom.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import ProbeService

from repro import SimRuntime
from repro.encoding.types import STRING
from repro.faults import ChaosCampaign, ChaosProfile, Flooder, InvariantChecker, MaliciousNacker

#: Attack-only campaign: no crash/link faults, so any red invariant is
#: attributable to the personas (and any green one to the defenses).
ATTACK_PROFILE = ChaosProfile(
    start=2.0,
    duration=8.0,
    crash_storms=0,
    container_crashes=0,
    link_flaps=0,
    partitions=0,
)

EVENT_PERIOD = 0.02  # victim publishes at 50 Hz
CALL_PERIOD = 0.5


def build_domain(seed):
    """Victim publisher behind a shaped uplink, plus subscriber and RPC peer.

    The shaped egress (150 kbit/s, short band queues) is what makes the
    flood dangerous: undefended, the victim's forced band-0 ACK responses
    crowd its own events and calls off the uplink.
    """
    runtime = SimRuntime(seed=seed)
    victim = runtime.add_container(
        "victim", egress_rate_bps=150_000.0, egress_queue_limit=64
    )
    runtime.add_container("observer")
    runtime.add_container("ground")
    # ``deadline`` is set once the campaign horizon is known: the victim
    # stops issuing calls/events before the settle window ends, so every
    # invocation terminates before the invariant check runs.
    state = {"sent": 0, "deadline": float("inf")}

    def victim_setup(s):
        s.handle = s.ctx.provide_event("adv.telemetry", STRING)

        def publish():
            # Publishing (like calling, below) starts once discovery has
            # converged: the observer's SUBSCRIBE lands ~t=1.0, and events
            # raised before it are legitimately unrouted, not attack loss.
            # The attack window opens at t=2.0 too, so every attacked
            # second is still measured.
            if not (2.0 <= s.ctx.now() < state["deadline"]):
                return
            state["sent"] += 1
            s.handle.raise_event(f"evt-{state['sent']}")

        def call():
            # Calls start once discovery has converged (the attack window
            # opens at t=2.0 too, so every attacked second is covered).
            if 2.0 <= s.ctx.now() < state["deadline"]:
                s.call_recorded("adv.compute", timeout=1.0)

        s.ctx.every(EVENT_PERIOD, publish)
        s.ctx.every(CALL_PERIOD, call)

    publisher = ProbeService("telemetry", victim_setup)
    subscriber = ProbeService("consumer", lambda s: s.watch_event("adv.telemetry"))
    provider = ProbeService(
        "compute",
        lambda s: s.ctx.provide_function(
            "adv.compute", lambda: "ok", params=[], result=STRING
        ),
    )
    victim.install_service(publisher)
    runtime.container("observer").install_service(subscriber)
    runtime.container("ground").install_service(provider)
    return runtime, publisher, subscriber, state


def make_personas(runtime):
    flooder = Flooder(
        runtime, target="victim", rate=2500.0, duration=5.0
    )
    nacker = MaliciousNacker(
        runtime, target="victim", spoof="observer", rate=300.0, duration=5.0
    )
    return [flooder, nacker]


@pytest.mark.chaos
class TestDefendedFleetUnderAttack:
    def run_campaign(self, seed=101, defended=True):
        runtime, publisher, subscriber, state = build_domain(seed)
        personas = make_personas(runtime)
        campaign = ChaosCampaign(
            runtime, profile=ATTACK_PROFILE, personas=personas
        )
        campaign.schedule()
        state["deadline"] = campaign.horizon + 2.0
        # Snapshot goodput at the instant the flood ends: reliable events
        # all arrive *eventually*, so collapse is visible only as backlog
        # at the height of the attack.
        flooder = personas[0]
        snapshot = {}

        def snap():
            snapshot["published"] = state["sent"]
            snapshot["delivered"] = len(subscriber.events)

        runtime.sim.schedule(flooder.start + flooder.duration, snap)
        state["flood_snapshot"] = snapshot
        checker = InvariantChecker(runtime)
        checker.watch_control_liveness()
        if defended:
            # The defended fleet also flies with the standard temporal
            # specs armed: exactly-once under replay attack, bounded
            # invocation termination, lifecycle legality — checked online
            # and folded into checker.check() as the differential oracle.
            from repro.verify.library import standard_specs

            checker.attach_monitor(
                runtime.enable_verification(standard_specs())
            )
        runtime.start()
        if defended:
            runtime.enable_admission()
            runtime.harden_reliability()
        campaign.run(settle=6.0)
        runtime.stop()
        return runtime, campaign, checker, publisher, subscriber, state, personas

    def test_invariants_green_and_attack_absorbed(self):
        (
            runtime,
            campaign,
            checker,
            publisher,
            subscriber,
            state,
            personas,
        ) = self.run_campaign()
        flooder, nacker = personas

        # The attacks actually fired at scale.
        assert any("attack flooder" in line for line in campaign.plan)
        assert any("attack nacker" in line for line in campaign.plan)
        assert flooder.frames_sent > 5000
        assert nacker.frames_sent > 500

        # Every section-3 contract held, the liveness watch included: no
        # healthy container ever looked dead to a peer during the attack.
        assert checker.check() == []

        # Control-band work from the victim kept flowing: >= 99% of its
        # RPC calls completed, with a bounded tail.
        calls = len(publisher.results) + len(publisher.errors)
        assert calls > 10
        assert len(publisher.results) / calls >= 0.99
        # The tail is bounded by the residual ACK burst the replay horizon
        # allows (~replay_window frames on the shaped uplink, ~1s here);
        # undefended, these calls do not complete at all.
        assert checker.check_rpc_p99(1.5) == []

        # Data-band goodput survived: the subscriber saw >= 99% of what
        # the victim published — and was already nearly caught up at the
        # very height of the flood, not just after recovery.
        delivered = len(subscriber.events_of("adv.telemetry"))
        assert state["sent"] > 300
        assert delivered / state["sent"] >= 0.99
        snapshot = state["flood_snapshot"]
        assert snapshot["delivered"] / snapshot["published"] >= 0.90

        # The defenses, not luck: admission shed flood volume at the door,
        # and the NACK-storm suppressor throttled the forged NACKs.
        victim = runtime.container("victim")
        assert victim.admission.dropped > 1000
        drops = victim.metrics.counter_value(
            "admission_drops", source=flooder.identity, band="1", reason="band-rate"
        )
        assert drops > 0
        abuse = sum(
            metric.value
            for (kind, name, labels), metric in victim.metrics.items()
            if kind == "counter" and name == "reliability_abuse"
        )
        assert abuse > 0

    def test_violations_carry_attacker_attribution(self):
        runtime, campaign, checker, publisher, *_, personas = self.run_campaign()
        flooder, _ = personas
        # The victim's counters identify the dominant attacker and band.
        attacker, band = checker._attacker_of("victim")
        assert attacker == flooder.identity
        assert band == "1"
        # Force a violation against the victim (an impossible p99 bound):
        # the structured record names the attacking source and band.
        checker.check_rpc_p99(0.0)
        records = [
            r
            for r in checker.records
            if r["container"] == "victim" and "rpc p99" in r["message"]
        ]
        assert records
        assert records[0]["attacker"] == flooder.identity
        assert records[0]["band"] == "1"

    def test_same_seed_same_attack_schedule(self):
        plans = []
        for _ in range(2):
            runtime, *_ = build_domain(seed=101)
            campaign = ChaosCampaign(
                runtime, profile=ATTACK_PROFILE, personas=make_personas(runtime)
            )
            plans.append(campaign.schedule())
        assert plans[0] == plans[1]

    def test_undefended_twin_measurably_collapses(self):
        # The control experiment: same seed, same attack, defenses off.
        # Without it the defended assertions could pass vacuously against
        # a toothless attack. Goodput is judged inside the flood window —
        # outside it the victim trivially recovers.
        *_, subscriber, state, personas = self.run_campaign(defended=False)
        snapshot = state["flood_snapshot"]
        assert snapshot["published"] > 100
        assert snapshot["delivered"] / snapshot["published"] < 0.60
