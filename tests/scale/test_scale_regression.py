"""Scale-regression tier (``pytest -m scale``).

Tier-1 proves the fleet mechanisms correct; this tier pins their *shape*:

- kernel work grows near-linearly with container count in a federated
  fleet (doubling the fleet must not super-linearly inflate the event
  count);
- per-container control traffic is bounded by zone size and gossip fanout,
  not fleet size — the O(N²) flat control plane must not creep back in.

Deselected by default (pyproject addopts ``-m "not scale"``); the CI
``scale-smoke`` job runs it with ``REPRO_SCALE_ZONES`` reduced.
"""

import os

import pytest

from repro import SimRuntime
from repro.container.fleet import FleetConfig

pytestmark = pytest.mark.scale

#: Zone count of the *large* fleet; the small fleet halves it. CI smoke
#: sets REPRO_SCALE_ZONES=6 to bound job time; the default exercises a
#: 240-container fleet.
ZONES = int(os.environ.get("REPRO_SCALE_ZONES", "12"))
ZONE_SIZE = 20  # 1 relay + 19 UAVs

TIMING = dict(
    announce_interval=5.0,
    heartbeat_interval=1.0,
    liveness_timeout=4.0,
    housekeeping_interval=2.0,
)

#: Bootstrap transient excluded from scaling-shape measurements; must
#: cover the one-time first-sight forwarding of zone summaries (a few
#: summary intervals), not just the initial announce spread.
SETTLE = 3.0
MISSION = 10.0


def build_federated(zones, seed=9):
    runtime = SimRuntime(seed=seed, zone_isolation=True)
    for z in range(zones):
        zone = f"z{z}"
        runtime.add_container(
            f"relay-{zone}", fleet=FleetConfig(zone=zone, role="relay"), **TIMING
        )
        for i in range(ZONE_SIZE - 1):
            runtime.add_container(
                f"uav-{zone}-{i:02d}", fleet=FleetConfig(zone=zone), **TIMING
            )
    return runtime


def build_gossip_flat(containers, seed=9):
    runtime = SimRuntime(seed=seed)
    fleet = FleetConfig(gossip_enabled=True, gossip_fanout=3)
    for i in range(containers):
        runtime.add_container(f"c{i:03d}", fleet=fleet, **TIMING)
    return runtime


def run_mission(runtime):
    """Returns (runtime, steady-state events executed during the mission)."""
    runtime.start()
    runtime.run_for(SETTLE)
    settled = runtime.sim.events_executed
    runtime.run_for(MISSION)
    return runtime, runtime.sim.events_executed - settled


def per_container_counts(runtime, metric, kind):
    """metric value per container id for one frame kind."""
    return {
        cid: container.metrics.counter_value(metric, kind=kind)
        for cid, container in runtime.containers.items()
    }


class TestNearLinearEventScaling:
    def test_federated_event_count_scales_linearly_with_containers(self):
        small, events_small = run_mission(build_federated(max(2, ZONES // 2)))
        large, events_large = run_mission(build_federated(ZONES))
        n_small = len(small.containers)
        n_large = len(large.containers)
        ratio = events_large / events_small
        population_ratio = n_large / n_small
        # Near-linear: doubling containers may at most double the kernel's
        # steady-state work plus 35% slack (backbone summary refreshes).
        assert ratio <= population_ratio * 1.35, (
            f"{n_small}->{n_large} containers inflated steady events "
            f"{events_small}->{events_large} (x{ratio:.2f}, "
            f"population x{population_ratio:.2f})"
        )
        # And the per-container event cost must be flat-ish, not shrinking
        # the fleet into starvation either.
        assert events_large / n_large >= 0.5 * (events_small / n_small)


class TestBoundedControlTraffic:
    def test_per_container_heartbeat_traffic_is_zone_bounded(self):
        small, _ = run_mission(build_federated(max(2, ZONES // 2)))
        large, _ = run_mission(build_federated(ZONES))
        # Emissions: one per interval per container, independent of N.
        # (Counters span the whole run, settle window included.)
        expected = (SETTLE + MISSION) / TIMING["heartbeat_interval"]
        for runtime in (small, large):
            sent = per_container_counts(runtime, "frames_sent", "HEARTBEAT")
            assert any(sent.values()), "no heartbeat traffic recorded"
            assert max(sent.values()) <= expected + 2
        # Receptions: bounded by zone size, so doubling the fleet must not
        # move the per-container ingest rate.
        rx_small = per_container_counts(small, "frames_received", "HEARTBEAT")
        rx_large = per_container_counts(large, "frames_received", "HEARTBEAT")
        avg_small = sum(rx_small.values()) / len(rx_small)
        avg_large = sum(rx_large.values()) / len(rx_large)
        assert avg_large <= avg_small * 1.25, (
            f"per-container heartbeat ingest grew with fleet size: "
            f"{avg_small:.1f} -> {avg_large:.1f}"
        )
        # Zone bound in absolute terms: a container hears at most its zone.
        assert max(rx_large.values()) <= expected * ZONE_SIZE

    def test_per_container_gossip_traffic_is_fanout_bounded(self):
        n_small = max(10, (ZONES // 2) * 5)
        n_large = n_small * 2
        small, _ = run_mission(build_gossip_flat(n_small))
        large, _ = run_mission(build_gossip_flat(n_large))
        tx_small = per_container_counts(small, "frames_sent", "GOSSIP")
        tx_large = per_container_counts(large, "frames_sent", "GOSSIP")
        assert any(tx_small.values()) and any(tx_large.values())
        # Each round sends at most `fanout` frames, regardless of N.
        rounds = (SETTLE + MISSION) / FleetConfig(
            gossip_enabled=True
        ).gossip_interval
        bound = 3 * rounds + 3
        assert max(tx_small.values()) <= bound
        assert max(tx_large.values()) <= bound
        avg_small = sum(tx_small.values()) / len(tx_small)
        avg_large = sum(tx_large.values()) / len(tx_large)
        assert avg_large <= avg_small * 1.25, (
            f"per-container gossip egress grew with fleet size: "
            f"{avg_small:.1f} -> {avg_large:.1f}"
        )
