"""Shared pytest configuration for the whole test tree.

Hypothesis profiles: the default ``dev`` profile keeps the library's
randomized exploration; the ``ci`` profile (selected with
``HYPOTHESIS_PROFILE=ci``) derandomizes so every CI run executes the same
example sequence — a flaky property failure on CI is then always
reproducible locally by exporting the same profile.
"""

import os

from hypothesis import settings

settings.register_profile("dev", settings())
settings.register_profile(
    "ci",
    derandomize=True,
    print_blob=True,
    deadline=None,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

# The static-analysis fixture trees contain deliberately broken modules
# (and files named test_*.py that belong to the *fixture's* fake test
# suite); they are inputs for tests/unit/test_analysis.py, not tests.
collect_ignore_glob = ["unit/analysis_fixtures/*"]
